//! Property-based tests for the workload generators: structural invariants
//! must hold for arbitrary (small) configurations, not just the calibrated
//! defaults.

use ca_ram_workloads::bgp::{generate as gen_bgp, BgpConfig};
use ca_ram_workloads::chunks::{generate as gen_chunks, Chunk, ChunkConfig, Cue};
use ca_ram_workloads::ipv6::{generate as gen_v6, Ipv6Config};
use ca_ram_workloads::prefix::Ipv4Prefix;
use ca_ram_workloads::trace::{frequencies, AccessPattern};
use ca_ram_workloads::trigram::{generate as gen_tri, pack_text_key, TrigramConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bgp_generator_invariants(
        prefixes in 100usize..3_000,
        seed in any::<u64>(),
        cv in 0.5f64..3.0,
    ) {
        let mut config = BgpConfig::scaled(prefixes);
        config.seed = seed;
        config.block_size_cv = cv;
        let table = gen_bgp(&config);
        prop_assert_eq!(table.len(), prefixes);
        // Unique, valid (host bits clear is enforced by the type), sorted
        // longest-first, lengths within [8, 32].
        let mut keys: Vec<(u32, u8)> = table.iter().map(|p| (p.addr(), p.len())).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), prefixes);
        prop_assert!(table.windows(2).all(|w| w[0].len() >= w[1].len()));
        prop_assert!(table.iter().all(|p| (8..=32).contains(&p.len())));
    }

    #[test]
    fn trigram_generator_invariants(
        entries in 50usize..2_000,
        seed in any::<u64>(),
    ) {
        let config = TrigramConfig {
            entries,
            vocabulary: 1_500,
            seed,
            ..TrigramConfig::sphinx_like()
        };
        let data = gen_tri(&config);
        prop_assert_eq!(data.len(), entries);
        let mut keys: Vec<u128> = data.iter().map(|s| pack_text_key(s)).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), entries);
        prop_assert!(data.iter().all(|s| (13..=16).contains(&s.len())));
    }

    #[test]
    fn ipv6_generator_invariants(
        prefixes in 50usize..2_000,
        seed in any::<u64>(),
    ) {
        let table = gen_v6(&Ipv6Config {
            prefixes,
            allocations: 300,
            seed,
        });
        prop_assert_eq!(table.len(), prefixes);
        prop_assert!(table.iter().all(|p| p.addr() >> 125 == 0b001));
        prop_assert!(table.windows(2).all(|w| w[0].len() >= w[1].len()));
    }

    #[test]
    fn zipf_frequencies_are_a_distribution(
        n in 1usize..5_000,
        s in 0.3f64..2.5,
        seed in any::<u64>(),
    ) {
        let f = frequencies(n, AccessPattern::Zipf { s }, seed);
        prop_assert_eq!(f.len(), n);
        prop_assert!(f.iter().all(|&x| x > 0.0));
        let total: f64 = f.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn chunk_cues_agree_with_key_matching(
        seed in any::<u64>(),
        bind_mask in 0u8..16,
    ) {
        let chunks = gen_chunks(&ChunkConfig {
            chunks: 300,
            types: 5,
            symbols: 40,
            seed,
        });
        let target = chunks[0];
        let mut cue = Cue::of_type(target.ctype);
        for i in 0..4 {
            if bind_mask >> i & 1 == 1 {
                cue = cue.bind(i, target.slots[i]);
            }
        }
        let key = cue.to_search_key();
        for c in &chunks {
            let stored = ca_ram_core::key::TernaryKey::binary(c.to_key(), 128);
            prop_assert_eq!(stored.matches(&key), cue.matches(c));
        }
        // Round trip.
        prop_assert_eq!(Chunk::from_key(target.to_key()), target);
    }

    #[test]
    fn prefix_type_round_trips_text(
        addr in any::<u32>(),
        len in 0u8..=32,
    ) {
        let p = Ipv4Prefix::truncating(addr, len);
        let text = p.to_string();
        let back: Ipv4Prefix = text.parse().expect("own Display output parses");
        prop_assert_eq!(back, p);
    }
}
