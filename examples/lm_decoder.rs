//! A speech-decoder language-model server on CA-RAM (Sec. 4.2's actual
//! motivation: "speech recognition applications spend over 24% of their CPU
//! cycles dedicated to searching").
//!
//! Stores a unigram/bigram/trigram back-off model in three CA-RAM databases
//! of one subsystem, then runs a beam-style decode over a word lattice,
//! scoring every hypothesis through CA-RAM lookups with the back-off chain
//! (trigram miss → bigram → unigram). Every score is verified against the
//! reference software model, and the measured memory accesses per scored
//! word are reported — the number the paper's N-gram memory is designed to
//! minimize.
//!
//! Run with: `cargo run --release --example lm_decoder`

use ca_ram::core::index::DjbHash;
use ca_ram::core::key::{SearchKey, TernaryKey};
use ca_ram::core::layout::{Record, RecordLayout};
use ca_ram::core::probe::ProbePolicy;
use ca_ram::core::subsystem::{CaRamSubsystem, DatabaseId};
use ca_ram::core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};
use ca_ram::workloads::ngram::{pack_ngram, BackoffLm, NgramConfig, Score};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn ngram_table(rows_log2: u32, keys_per_row: u32) -> CaRamTable {
    // Keys carry the packed word ids; data = (backoff << 16) | score.
    let layout = RecordLayout::new(60, false, 32);
    let config = TableConfig {
        rows_log2,
        row_bits: keys_per_row * layout.slot_bits(),
        layout,
        arrangement: Arrangement::Horizontal(1),
        probe: ProbePolicy::Linear,
        overflow: OverflowPolicy::Probe {
            max_steps: 1 << rows_log2,
        },
    };
    // 60-bit keys = 7.5 bytes; hash the low 8 bytes.
    CaRamTable::new(config, Box::new(DjbHash::new(32, 8))).expect("valid config")
}

fn pack_data(score: Score, backoff: Score) -> u64 {
    (u64::from(backoff) << 16) | u64::from(score)
}

fn unpack(data: u64) -> (Score, Score) {
    #[allow(clippy::cast_possible_truncation)]
    ((data & 0xFFFF) as u32, (data >> 16) as u32)
}

/// One CA-RAM lookup of an N-gram; returns (score, backoff) and the access
/// count.
fn lookup(
    sub: &mut CaRamSubsystem,
    db: DatabaseId,
    words: &[u32],
) -> (Option<(Score, Score)>, u32) {
    let key = SearchKey::new(pack_ngram(words), 60);
    let got = sub.search(db, &key);
    (got.hit.map(|h| unpack(h.record.data)), got.memory_accesses)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- build the model and load it into three CA-RAM databases ----------
    let config = NgramConfig::default();
    let lm = BackoffLm::generate(&config);
    let (u, b, t) = lm.counts();
    println!("back-off LM: {u} unigrams, {b} bigrams, {t} trigrams");

    let mut sub = CaRamSubsystem::new();
    let uni = sub.add_database("unigrams", ngram_table(7, 48));
    let bi = sub.add_database("bigrams", ngram_table(10, 48));
    let tri = sub.add_database("trigrams", ngram_table(12, 48));

    for (key, s, back) in lm.unigram_entries() {
        sub.table_mut(uni)
            .insert(Record::new(TernaryKey::binary(key, 60), pack_data(s, back)))?;
    }
    for (key, s, back) in lm.bigram_entries() {
        sub.table_mut(bi)
            .insert(Record::new(TernaryKey::binary(key, 60), pack_data(s, back)))?;
    }
    for (key, s) in lm.trigram_entries() {
        sub.table_mut(tri)
            .insert(Record::new(TernaryKey::binary(key, 60), pack_data(s, 0)))?;
    }
    for (name, id) in [("unigrams", uni), ("bigrams", bi), ("trigrams", tri)] {
        let r = sub.table(id).load_report();
        println!(
            "  {name:<9} alpha {:.2}, AMALu {:.3}",
            r.load_factor(),
            r.amal_uniform
        );
    }

    // --- decode a lattice ---------------------------------------------------
    // Each step offers `beam` candidate words; we keep the best hypothesis
    // (greedy beam of 1 for clarity) and score every candidate via CA-RAM.
    let mut rng = SmallRng::seed_from_u64(0xDEC0DE);
    let steps = 200;
    let beam = 8usize;
    let mut history = (0u32, 1u32); // (w1, w2)
    let mut total_score: u64 = 0;
    let mut accesses: u64 = 0;
    let mut scored = 0u64;
    let mut chain_counts = [0u64; 3]; // trigram / bigram / unigram endings
    for _ in 0..steps {
        // A decoder's lexicon pruning proposes likely continuations first;
        // fill the rest of the beam with acoustic wildcards.
        let mut candidates = lm.continuations(history.0, history.1);
        candidates.truncate(beam / 2);
        let coarser = lm.bigram_continuations(history.1);
        for &w in coarser.iter().take(beam / 4) {
            candidates.push(w);
        }
        while candidates.len() < beam {
            candidates.push(rng.gen_range(0..lm.vocabulary()));
        }
        let mut best: Option<(Score, u32)> = None;
        for &w3 in &candidates {
            let (w1, w2) = history;
            // Back-off chain over the CA-RAM databases.
            let (hit, a) = lookup(&mut sub, tri, &[w1, w2, w3]);
            accesses += u64::from(a);
            let score = if let Some((s, _)) = hit {
                chain_counts[0] += 1;
                s
            } else {
                let (ctx, a) = lookup(&mut sub, bi, &[w1, w2]);
                accesses += u64::from(a);
                let backoff12 = ctx.map_or(0, |(_, back)| back);
                let (hit, a) = lookup(&mut sub, bi, &[w2, w3]);
                accesses += u64::from(a);
                if let Some((s, _)) = hit {
                    chain_counts[1] += 1;
                    backoff12 + s
                } else {
                    let (w2e, a) = lookup(&mut sub, uni, &[w2]);
                    accesses += u64::from(a);
                    let (w3e, a2) = lookup(&mut sub, uni, &[w3]);
                    accesses += u64::from(a2);
                    let backoff2 = w2e.map_or(0, |(_, back)| back);
                    chain_counts[2] += 1;
                    backoff12 + backoff2 + w3e.expect("every word has a unigram").0
                }
            };
            // Verify against the reference model.
            let (expect, _) = lm.score(history.0, history.1, w3);
            assert_eq!(score, expect, "divergence on {history:?} + {w3}");
            scored += 1;
            if best.is_none_or(|(s, _)| score < s) {
                best = Some((score, w3)); // lower = more probable
            }
        }
        let (s, w) = best.expect("beam is non-empty");
        total_score += u64::from(s);
        history = (history.1, w);
    }

    #[allow(clippy::cast_precision_loss)]
    let per_word = accesses as f64 / scored as f64;
    println!(
        "\ndecoded {steps} steps x {beam} candidates: {scored} LM scores, total cost {total_score}"
    );
    println!(
        "back-off endings: {} trigram, {} bigram, {} unigram",
        chain_counts[0], chain_counts[1], chain_counts[2]
    );
    println!("CA-RAM traffic: {accesses} memory accesses, {per_word:.2} per scored word");
    println!("every score matched the reference software model.");
    println!("\nper-database activity (the power-policy hook of Sec. 3.2):");
    for (name, id) in [("unigrams", uni), ("bigrams", bi), ("trigrams", tri)] {
        let c = sub.counters(id);
        println!(
            "  {name:<9} {:>6} searches, hit rate {:>5.1}%, live AMAL {:.3}",
            c.searches,
            100.0 * c.hit_rate(),
            c.measured_amal()
        );
    }
    Ok(())
}
