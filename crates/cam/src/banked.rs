//! Banked (bit-selected) TCAM — the `CoolCAMs` scheme of Zane et al. \[32\]
//! (Sec. 5.2).
//!
//! A two-phase lookup: selected key bits pick one of `K` banks, and only
//! that bank's searchlines and matchlines are activated, cutting search
//! power roughly by `K×`. Prefixes with don't-care bits in the selector
//! positions must be duplicated into every matching bank — the same
//! trade-off CA-RAM's hashing makes, which is why the paper calls its hash
//! function "a replacement for the more expensive first-phase lookup table".

use ca_ram_core::index::{buckets_for_masked_search, IndexGenerator};
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_hwmodel::{CamGeometry, CellKind};

use crate::tcam::{Tcam, TcamEntry, TcamMatch};

/// Result of a banked search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankedMatch {
    /// The winning match, if any.
    pub hit: Option<TcamMatch>,
    /// Bank the winner came from.
    pub bank: Option<u32>,
    /// Banks activated by this search (1 unless the search key has
    /// don't-care bits in the selector positions).
    pub banks_searched: u32,
}

/// A TCAM partitioned into selector-indexed banks.
pub struct BankedTcam {
    selector: Box<dyn IndexGenerator>,
    banks: Vec<Tcam>,
    key_bits: u32,
}

impl core::fmt::Debug for BankedTcam {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BankedTcam")
            .field("banks", &self.banks.len())
            .field("key_bits", &self.key_bits)
            .finish_non_exhaustive()
    }
}

impl BankedTcam {
    /// Creates a banked TCAM: `2^selector.index_bits()` banks of
    /// `bank_capacity` entries each.
    ///
    /// # Panics
    ///
    /// Panics if the selector produces more than 16 bank-index bits (65 536
    /// banks) or under the [`Tcam::new`] conditions.
    #[must_use]
    pub fn new(selector: Box<dyn IndexGenerator>, bank_capacity: usize, key_bits: u32) -> Self {
        let bits = selector.index_bits();
        assert!(bits <= 16, "{bits} selector bits is too many banks");
        let banks = (0..(1usize << bits))
            .map(|_| Tcam::new(bank_capacity, key_bits))
            .collect();
        Self {
            selector,
            banks,
            key_bits,
        }
    }

    /// Key width in bits.
    #[must_use]
    pub fn key_bits(&self) -> u32 {
        self.key_bits
    }

    /// Number of banks (`K`).
    #[must_use]
    #[allow(clippy::missing_panics_doc)] // internal expect: bank ids < 2^16
    pub fn bank_count(&self) -> u32 {
        u32::try_from(self.banks.len()).expect("bounded by 2^16")
    }

    /// Total entries stored across banks (including duplicates).
    #[must_use]
    #[allow(clippy::missing_panics_doc)] // internal expect: bank ids < 2^16
    pub fn len(&self) -> usize {
        self.banks.iter().map(Tcam::len).sum()
    }

    /// Whether no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.banks.iter().all(Tcam::is_empty)
    }

    /// Inserts a prefix into every bank its selector image touches,
    /// appending at the bank's first free slot (callers insert in
    /// descending prefix-length order for LPM, as with the flat TCAM).
    ///
    /// Returns the number of banks written, or `None` if any target bank is
    /// full (in which case nothing is written).
    #[allow(clippy::missing_panics_doc)] // internal expect: bank ids < 2^16
    pub fn insert(&mut self, key: TernaryKey, data: u64) -> Option<u32> {
        let targets = buckets_for_masked_search(&key.to_search_key(), self.selector.as_ref());
        // Pre-flight: all target banks need space.
        let mut slots = Vec::with_capacity(targets.len());
        for &b in &targets {
            let bank = &self.banks[usize::try_from(b).expect("bounded by 2^16")];
            let free = (0..bank.capacity()).find(|&i| bank.entry(i).is_none())?;
            slots.push((b, free));
        }
        for (b, slot) in &slots {
            self.banks[usize::try_from(*b).expect("bounded by 2^16")]
                .write(*slot, TcamEntry { key, data });
        }
        Some(u32::try_from(slots.len()).expect("bounded by bank count"))
    }

    /// Entry slots per bank.
    #[must_use]
    pub fn bank_capacity(&self) -> usize {
        self.banks[0].capacity()
    }

    /// Removes every stored copy of `key` (exact key equality: value, mask,
    /// and width) across all banks, returning the number of copies removed.
    pub fn delete(&mut self, key: &TernaryKey) -> u32 {
        self.banks.iter_mut().map(|b| b.remove_key(key)).sum()
    }

    /// Two-phase search: the selector picks the bank(s); only those banks
    /// are activated.
    #[must_use]
    #[allow(clippy::missing_panics_doc)] // internal expect: bank ids < 2^16
    pub fn search(&self, key: &SearchKey) -> BankedMatch {
        let targets = buckets_for_masked_search(key, self.selector.as_ref());
        let mut best: Option<(u32, TcamMatch)> = None;
        for &b in &targets {
            let bank = &self.banks[usize::try_from(b).expect("bounded by 2^16")];
            if let Some(m) = bank.search(key) {
                let better = match &best {
                    None => true,
                    Some((_, cur)) => m.entry.key.care_count() > cur.entry.key.care_count(),
                };
                if better {
                    best = Some((u32::try_from(b).expect("bounded by 2^16"), m));
                }
            }
        }
        BankedMatch {
            banks_searched: u32::try_from(targets.len()).expect("bounded by bank count"),
            bank: best.as_ref().map(|(b, _)| *b),
            hit: best.map(|(_, m)| m),
        }
    }

    /// Fraction of the array activated per single-bank search: the `CoolCAMs`
    /// power-saving factor (`1/K`).
    #[must_use]
    pub fn activated_fraction(&self) -> f64 {
        1.0 / f64::from(self.bank_count())
    }

    /// Geometry of one bank, for pricing the per-search power of the
    /// activated partition.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not a CAM cell.
    #[must_use]
    pub fn bank_geometry(&self, cell: CellKind) -> CamGeometry {
        self.banks[0].geometry(cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_ram_core::index::RangeSelect;

    fn prefix(value: u128, len: u32) -> TernaryKey {
        let dc = if len == 32 {
            0
        } else {
            (1u128 << (32 - len)) - 1
        };
        TernaryKey::ternary(value, dc, 32)
    }

    fn banked() -> BankedTcam {
        // 4 banks selected by address bits 30..32 (top two bits).
        BankedTcam::new(Box::new(RangeSelect::new(30, 2)), 8, 32)
    }

    #[test]
    fn single_bank_activated_for_plain_search() {
        let mut t = banked();
        assert!(t.is_empty());
        t.insert(prefix(0xC0A8_0000, 16), 7).unwrap();
        let m = t.search(&SearchKey::new(0xC0A8_1234, 32));
        assert_eq!(m.banks_searched, 1);
        assert_eq!(m.bank, Some(0b11));
        assert_eq!(m.hit.unwrap().entry.data, 7);
        assert!((t.activated_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn prefix_crossing_selector_bits_is_duplicated() {
        let mut t = banked();
        // A /1 prefix leaves one selector bit don't-care -> 2 banks.
        let written = t.insert(prefix(0x8000_0000, 1), 1).unwrap();
        assert_eq!(written, 2);
        assert_eq!(t.len(), 2);
        for addr in [0x8000_0001u128, 0xC000_0001] {
            let m = t.search(&SearchKey::new(addr, 32));
            assert_eq!(m.hit.unwrap().entry.data, 1);
            assert_eq!(m.banks_searched, 1);
        }
        // An address in the other half misses.
        assert!(t.search(&SearchKey::new(0x4000_0000, 32)).hit.is_none());
    }

    #[test]
    fn lpm_across_duplicated_and_local_prefixes() {
        let mut t = banked();
        // Insert longest-first, as with a flat TCAM.
        t.insert(prefix(0xC0A8_0100, 24), 24).unwrap();
        t.insert(prefix(0xC0A8_0000, 16), 16).unwrap();
        t.insert(prefix(0x8000_0000, 1), 1).unwrap();
        let m = t.search(&SearchKey::new(0xC0A8_0101, 32));
        assert_eq!(m.hit.unwrap().entry.data, 24);
        let m = t.search(&SearchKey::new(0xC0A8_FF00, 32));
        assert_eq!(m.hit.unwrap().entry.data, 16);
        let m = t.search(&SearchKey::new(0x9000_0000, 32));
        assert_eq!(m.hit.unwrap().entry.data, 1);
    }

    #[test]
    fn full_bank_rejects_insert_atomically() {
        let mut t = BankedTcam::new(Box::new(RangeSelect::new(30, 2)), 1, 32);
        t.insert(prefix(0x0000_0000, 2), 0).unwrap(); // bank 0 full
        assert!(t.insert(prefix(0x1000_0000, 4), 0).is_none()); // bank 0 again
                                                                // A /1 covering banks 0 and 1 must fail without writing bank 1.
        assert!(t.insert(prefix(0x0000_0000, 1), 0).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn masked_search_key_activates_multiple_banks() {
        let mut t = banked();
        t.insert(prefix(0x0000_0000, 8), 8).unwrap();
        // Search with the top two bits don't-care probes all 4 banks.
        let key = SearchKey::with_mask(0x0000_0001, 0xC000_0000, 32);
        let m = t.search(&key);
        assert_eq!(m.banks_searched, 4);
        assert_eq!(m.hit.unwrap().entry.data, 8);
    }
}
