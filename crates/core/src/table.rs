//! A logical CA-RAM search table spanning one or more arranged slices
//! (Sec. 3.2).
//!
//! "A database can be implemented with multiple CA-RAM slices, arranged
//! vertically (i.e., more rows), horizontally (i.e., wider buckets), or in a
//! mixed way." [`CaRamTable`] composes physical [`CaRamSlice`]s into one
//! logical hash table and implements the three CAM-mode operations —
//! *search*, *insert*, and *delete* — plus the placement bookkeeping the
//! paper's evaluation metrics (α, overflow, AMAL) are computed from.
//!
//! ## Priority discipline
//!
//! Match priority is *placement order*: lower logical slot numbers win, and
//! buckets closer to the home bucket win. Inserting records in descending
//! priority order (e.g. prefixes sorted by prefix length, Sec. 4.1) makes
//! "first match in probe order" exactly longest-prefix match, so a search
//! can stop at its first hit.

use crate::error::{CaRamError, Result};
use crate::index::{buckets_for_masked_search_into, BucketList, IndexGenerator};
use crate::key::SearchKey;
use crate::layout::{Record, RecordLayout};
use crate::matchproc::wins_tie_break;
use crate::probe::ProbePolicy;
use crate::slice::CaRamSlice;
use crate::stats::{
    AtomicSearchStats, LoadReport, OccupancyHistogram, PlacementStats, SearchStats,
};
use crate::storage::StorageBackend;
use crate::telemetry::trace::{ProbeSummary, Stage, TelemetrySink};
use std::path::Path;
use std::sync::Arc;

/// How slices are composed into one logical table (Sec. 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arrangement {
    /// `k` slices side by side: same row count, `k×` wider buckets.
    Horizontal(u32),
    /// `k` slices stacked: `k×` more buckets, same bucket width.
    Vertical(u32),
    /// `horizontal × vertical` grid: both wider and more buckets.
    Grid {
        /// Slices concatenated per bucket.
        horizontal: u32,
        /// Groups of rows stacked.
        vertical: u32,
    },
}

impl Arrangement {
    /// `(horizontal, vertical)` factor pair.
    ///
    /// # Panics
    ///
    /// Panics if either factor is zero.
    #[must_use]
    pub fn factors(self) -> (u32, u32) {
        let (h, v) = match self {
            Arrangement::Horizontal(k) => (k, 1),
            Arrangement::Vertical(k) => (1, k),
            Arrangement::Grid {
                horizontal,
                vertical,
            } => (horizontal, vertical),
        };
        assert!(h > 0 && v > 0, "arrangement factors must be positive");
        (h, v)
    }

    /// Total physical slices.
    #[must_use]
    pub fn slice_count(self) -> u32 {
        let (h, v) = self.factors();
        h * v
    }
}

/// What to do with records that overflow their home bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverflowPolicy {
    /// Probe up to `max_steps` further buckets (Sec. 2.1). `max_steps = 0`
    /// means no probing: any collision beyond the bucket capacity fails.
    Probe {
        /// Maximum probe steps past the home bucket.
        max_steps: u32,
    },
    /// Keep spilled records in a dedicated associative overflow area of the
    /// given capacity, searched in parallel with the main array so lookups
    /// stay at one memory access (Sec. 4.3's small TCAM, the victim-cache
    /// analogy).
    ParallelArea {
        /// Maximum entries the overflow area holds.
        capacity: usize,
    },
    /// Keep spilled records in a dedicated CA-RAM *victim slice* accessed
    /// together with the main slices (Sec. 3.2: "Certain CA-RAM slices can
    /// be used to implement an overflow area ... accessed together with
    /// other slices that keep regular records in order to achieve lower
    /// average latency, similar to the popular victim cache technique").
    /// The victim slice is hash-addressed by the record's home bucket and
    /// linearly probed internally; its accesses overlap the main array's.
    VictimSlice {
        /// log2 of the victim slice's rows.
        rows_log2: u32,
        /// Bits per victim row.
        row_bits: u32,
    },
}

/// Configuration of a [`CaRamTable`].
#[derive(Debug, Clone)]
pub struct TableConfig {
    /// log2 of rows per slice (`R`).
    pub rows_log2: u32,
    /// Bits per physical row (`C`).
    pub row_bits: u32,
    /// Record format.
    pub layout: RecordLayout,
    /// Slice arrangement.
    pub arrangement: Arrangement,
    /// Probing policy for overflow placement and search.
    pub probe: ProbePolicy,
    /// Overflow handling.
    pub overflow: OverflowPolicy,
}

impl TableConfig {
    /// A single-slice table with linear probing across the whole table.
    #[must_use]
    pub fn single_slice(rows_log2: u32, row_bits: u32, layout: RecordLayout) -> Self {
        Self {
            rows_log2,
            row_bits,
            layout,
            arrangement: Arrangement::Horizontal(1),
            probe: ProbePolicy::Linear,
            overflow: OverflowPolicy::Probe {
                max_steps: u32::MAX,
            },
        }
    }
}

/// A successful lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// Logical bucket the record was found in.
    pub bucket: u64,
    /// Logical slot within the bucket.
    pub slot: u32,
    /// The record.
    pub record: Record,
    /// Whether the hit came from the parallel overflow area.
    pub from_overflow: bool,
}

/// Result of one search, with its memory-access cost (the AMAL unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchOutcome {
    /// The winning record, if any.
    pub hit: Option<Hit>,
    /// Bucket fetches performed. Horizontally arranged slices are accessed
    /// in parallel and count as one; the parallel overflow area is free.
    pub memory_accesses: u32,
}

/// Where one placed copy of an inserted record went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Logical bucket.
    pub bucket: u64,
    /// Logical slot.
    pub slot: u32,
    /// Probe steps from the home bucket (0 = home).
    pub displacement: u32,
}

/// Result of one insert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertOutcome {
    /// One entry per home bucket (usually one; more when don't-care bits
    /// overlap the hash positions, Sec. 4.1).
    pub placements: Vec<Placement>,
    /// Copies diverted to the parallel overflow area.
    pub to_overflow: u32,
}

#[derive(Debug, Clone)]
enum OverflowStore {
    /// A small fully associative memory (the Sec. 4.3 TCAM).
    Associative {
        records: Vec<Record>,
        capacity: usize,
    },
    /// A CA-RAM slice serving as the victim area (Sec. 3.2).
    Victim { slice: CaRamSlice },
}

impl OverflowStore {
    fn len(&self) -> usize {
        match self {
            OverflowStore::Associative { records, .. } => records.len(),
            OverflowStore::Victim { slice } => usize::try_from(slice.record_count()).expect("fits"),
        }
    }
}

/// A logical CA-RAM search table.
pub struct CaRamTable {
    config: TableConfig,
    index: Box<dyn IndexGenerator>,
    /// `index.consumed_bits()`, cached at construction: the per-search
    /// home computation branches on it, and caching spares a virtual call
    /// per key on the hot path.
    index_consumed: Option<u128>,
    slices: Vec<CaRamSlice>,
    horizontal: u32,
    rows_per_slice: u64,
    logical_buckets: u64,
    slots_per_slice_row: u32,
    slots_per_bucket: u32,
    stats: PlacementStats,
    home_counts: Vec<u32>,
    bucket_had_spill: Vec<bool>,
    overflow: Option<OverflowStore>,
    /// Set once a delete has occurred: a later insert may then place a
    /// shorter prefix upstream of a previously evicted longer one, so LPM
    /// searches must scan the full reach instead of stopping at the first
    /// match (see `search`).
    full_scan: bool,
    /// Optional telemetry receiver. `None` (the default) keeps the search
    /// hot path on the untraced PR-1 code: the only cost is one branch.
    sink: Option<Arc<dyn TelemetrySink>>,
    /// `wants_match_vectors()` of the installed sink, cached at install so
    /// the traced path skips that virtual call on every search.
    sink_deep: bool,
}

impl core::fmt::Debug for CaRamTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CaRamTable")
            .field("logical_buckets", &self.logical_buckets)
            .field("slots_per_bucket", &self.slots_per_bucket)
            .field("slices", &self.slices.len())
            .field("records", &self.record_count())
            .finish_non_exhaustive()
    }
}

impl CaRamTable {
    /// Builds an empty table.
    ///
    /// # Errors
    ///
    /// Returns [`CaRamError::BadConfig`] if the index generator cannot cover
    /// the logical bucket space, or if the layout key width disagrees with
    /// the generator's expectations implied by the configuration.
    pub fn new(config: TableConfig, index: Box<dyn IndexGenerator>) -> Result<Self> {
        Self::build(config, index, None)
    }

    /// Builds an empty table whose slice arrays are file-backed under
    /// `dir` (`slice-<i>.arr`, plus `victim.arr` for a victim-slice
    /// overflow area), so the packed words page to disk instead of the
    /// heap. Occupancy metadata stays in memory: reopening an existing
    /// directory reattaches the words but the table must be repopulated
    /// (or recovered through [`crate::storage::DurableTable`], whose WAL
    /// is the durable source of truth).
    ///
    /// # Errors
    ///
    /// [`CaRamError::BadConfig`] as for [`CaRamTable::new`], or any
    /// [`CaRamError::Durability`] error from opening the backing files
    /// (including `Unsupported` without the `storage` feature).
    pub fn with_storage_dir(
        config: TableConfig,
        index: Box<dyn IndexGenerator>,
        dir: &Path,
    ) -> Result<Self> {
        Self::build(config, index, Some(dir))
    }

    /// Flushes every file-backed slice array durably to disk; a no-op for
    /// heap-backed tables.
    ///
    /// # Errors
    ///
    /// Any [`CaRamError::Durability`] error from the syncs.
    pub fn flush_storage(&mut self) -> Result<()> {
        for slice in &mut self.slices {
            slice.flush()?;
        }
        if let Some(OverflowStore::Victim { slice }) = &mut self.overflow {
            slice.flush()?;
        }
        Ok(())
    }

    fn build(
        config: TableConfig,
        index: Box<dyn IndexGenerator>,
        storage_dir: Option<&Path>,
    ) -> Result<Self> {
        let slice_backend = |name: String| match storage_dir {
            None => StorageBackend::Heap,
            Some(dir) => StorageBackend::file(dir.join(name)),
        };
        let (horizontal, vertical) = config.arrangement.factors();
        let rows_per_slice = 1u64 << config.rows_log2;
        let logical_buckets = rows_per_slice * u64::from(vertical);
        if (1u128 << index.index_bits()) < u128::from(logical_buckets) {
            return Err(CaRamError::BadConfig(format!(
                "index generator produces {} bits but the table has {} buckets",
                index.index_bits(),
                logical_buckets
            )));
        }
        let slots_per_slice_row = config.layout.slots_per_row(config.row_bits);
        let slice_count = config.arrangement.slice_count();
        let slices = (0..slice_count)
            .map(|i| {
                CaRamSlice::with_backend(
                    config.rows_log2,
                    config.row_bits,
                    config.layout,
                    &slice_backend(format!("slice-{i}.arr")),
                )
            })
            .collect::<Result<Vec<_>>>()?;
        let overflow = match config.overflow {
            OverflowPolicy::ParallelArea { capacity } => Some(OverflowStore::Associative {
                records: Vec::new(),
                capacity,
            }),
            OverflowPolicy::VictimSlice {
                rows_log2,
                row_bits,
            } => Some(OverflowStore::Victim {
                slice: CaRamSlice::with_backend(
                    rows_log2,
                    row_bits,
                    config.layout,
                    &slice_backend("victim.arr".to_string()),
                )?,
            }),
            OverflowPolicy::Probe { .. } => None,
        };
        let buckets = usize::try_from(logical_buckets)
            .map_err(|_| CaRamError::BadConfig("bucket count exceeds address space".into()))?;
        Ok(Self {
            slots_per_bucket: slots_per_slice_row * horizontal,
            config,
            index_consumed: index.consumed_bits(),
            index,
            slices,
            horizontal,
            rows_per_slice,
            logical_buckets,
            slots_per_slice_row,
            stats: PlacementStats::new(),
            home_counts: vec![0; buckets],
            bucket_had_spill: vec![false; buckets],
            overflow,
            full_scan: false,
            sink: None,
            sink_deep: false,
        })
    }

    /// Installs a telemetry sink: subsequent searches run the traced path
    /// (reporting [`ProbeSummary`] per lookup and, if the sink asks for
    /// match vectors, per-stage events), and inserts report bucket
    /// occupancy. Outcomes are bit-identical to the untraced path.
    pub fn set_telemetry_sink(&mut self, sink: Arc<dyn TelemetrySink>) {
        self.sink_deep = sink.wants_match_vectors();
        self.sink = Some(sink);
    }

    /// Removes the telemetry sink, returning the search path to the
    /// untraced hot path.
    pub fn clear_telemetry_sink(&mut self) {
        self.sink = None;
        self.sink_deep = false;
    }

    /// The installed telemetry sink, if any.
    #[must_use]
    pub fn telemetry_sink(&self) -> Option<Arc<dyn TelemetrySink>> {
        self.sink.clone()
    }

    /// The configuration the table was built with.
    #[must_use]
    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    /// Whether searches scan the full reach instead of stopping at the
    /// first match (set permanently by the first delete; see the field
    /// docs).
    #[must_use]
    pub fn full_scan(&self) -> bool {
        self.full_scan
    }

    /// Forces full-reach scanning, as if a delete had occurred. Recovery
    /// uses this: a restored table whose physical placement may differ
    /// from the original (sorted inserts, pre-crash deletes) must pick the
    /// maximum-care match rather than trust first-match order.
    pub fn force_full_scan(&mut self) {
        self.full_scan = true;
    }

    /// Number of logical buckets (`M`).
    #[must_use]
    pub fn logical_buckets(&self) -> u64 {
        self.logical_buckets
    }

    /// Record slots per logical bucket (`S`).
    #[must_use]
    pub fn slots_per_bucket(&self) -> u32 {
        self.slots_per_bucket
    }

    /// Total record capacity (`M × S`).
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.logical_buckets * u64::from(self.slots_per_bucket)
    }

    /// The record layout.
    #[must_use]
    pub fn layout(&self) -> &RecordLayout {
        &self.config.layout
    }

    /// The physical slices (RAM-mode access, Sec. 3.2).
    #[must_use]
    pub fn slices(&self) -> &[CaRamSlice] {
        &self.slices
    }

    /// Mutable access to the physical slices — the raw RAM-mode write path
    /// (database construction by memory copy, scratch-pad use, memory
    /// tests). Writes through this view bypass the table's placement
    /// bookkeeping; see [`CaRamSlice::array_mut`].
    pub fn slices_mut(&mut self) -> &mut [CaRamSlice] {
        &mut self.slices
    }

    /// Placed records currently stored (main array only).
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.slices.iter().map(CaRamSlice::record_count).sum()
    }

    /// Records currently in the parallel overflow area (associative or
    /// victim slice).
    #[must_use]
    pub fn overflow_count(&self) -> usize {
        self.overflow.as_ref().map_or(0, OverflowStore::len)
    }

    // ---- logical geometry -------------------------------------------------

    fn split_bucket(&self, bucket: u64) -> (u32, u64) {
        debug_assert!(bucket < self.logical_buckets);
        // `rows_per_slice` is always `1 << rows_log2`, so the split is a
        // shift/mask instead of a 64-bit division — this runs once per
        // probed bucket on the search hot path.
        #[allow(clippy::cast_possible_truncation)]
        let v = (bucket >> self.config.rows_log2) as u32;
        (v, bucket & (self.rows_per_slice - 1))
    }

    fn slice_of(&self, v: u32, h: u32) -> usize {
        (v * self.horizontal + h) as usize
    }

    /// The auxiliary *reach* of a logical bucket, stored on its first
    /// horizontal slice.
    fn reach(&self, bucket: u64) -> u32 {
        let (v, row) = self.split_bucket(bucket);
        self.slices[self.slice_of(v, 0)].aux(row).reach
    }

    /// Hints the prefetcher at the rows backing logical `bucket`. Row
    /// *data* is pulled for the first horizontal slice only — the slice
    /// searched first, and on priority-ordered buckets usually the only
    /// one searched; past that the prefetch outruns the compare. The
    /// *auxiliary* word of every slice is pulled, though: a miss walks
    /// all of them (each usually answering `valid == 0`), and they are
    /// one cache line each.
    #[inline]
    fn prefetch_bucket(&self, bucket: u64) {
        let (v, row) = self.split_bucket(bucket);
        for h in 0..self.horizontal {
            let slice = &self.slices[self.slice_of(v, h)];
            if h < 1 {
                slice.prefetch_row(row);
            } else {
                slice.prefetch_aux(row);
            }
        }
    }

    /// The compare kernel this table's match processors captured at
    /// construction (see [`crate::kernel`]).
    #[must_use]
    pub fn kernel(&self) -> crate::kernel::Kernel {
        self.slices[0].kernel()
    }

    fn raise_reach(&mut self, bucket: u64, reach: u32) {
        let (v, row) = self.split_bucket(bucket);
        let s = self.slice_of(v, 0);
        self.slices[s].raise_reach(row, reach);
    }

    /// Valid-record count of a logical bucket.
    #[must_use]
    pub fn bucket_occupancy(&self, bucket: u64) -> u32 {
        let (v, row) = self.split_bucket(bucket);
        (0..self.horizontal)
            .map(|h| self.slices[self.slice_of(v, h)].occupancy(row))
            .sum()
    }

    /// The home bucket of a (fully specified) search key — which physical
    /// slice group serves it. Used by throughput studies to route a key
    /// trace onto slices.
    #[must_use]
    pub fn home_bucket(&self, key: &SearchKey) -> u64 {
        self.index.index(key.value()) % self.logical_buckets
    }

    /// The vertical slice group serving `bucket` (0 for horizontal-only
    /// arrangements): the unit of independent access in the bandwidth
    /// formula.
    #[must_use]
    pub fn slice_group_of(&self, bucket: u64) -> u32 {
        self.split_bucket(bucket).0
    }

    /// The valid `(logical slot, record)` entries of a logical bucket, in
    /// priority (slot) order — what one row fetch delivers to the match
    /// processors.
    #[must_use]
    pub fn bucket_entries(&self, bucket: u64) -> Vec<(u32, Record)> {
        let (v, row) = self.split_bucket(bucket);
        let mut out = Vec::new();
        for h in 0..self.horizontal {
            for (slot, record) in self.slices[self.slice_of(v, h)].bucket_records(row) {
                out.push((h * self.slots_per_slice_row + slot, record));
            }
        }
        out
    }

    /// Rewrites the data field of an occupied logical slot in place (the
    /// bulk-update path; the key and placement are untouched).
    pub(crate) fn rewrite_slot_data(&mut self, bucket: u64, logical_slot: u32, data: u64) {
        let (v, row) = self.split_bucket(bucket);
        let h = logical_slot / self.slots_per_slice_row;
        let slot = logical_slot % self.slots_per_slice_row;
        let s = self.slice_of(v, h);
        let record = self.slices[s]
            .read_record(row, slot)
            .expect("bulk update only touches occupied slots");
        self.slices[s].write_record(row, slot, &Record { data, ..record });
    }

    fn bucket_free_slot(&self, bucket: u64) -> Option<u32> {
        let (v, row) = self.split_bucket(bucket);
        for h in 0..self.horizontal {
            if let Some(slot) = self.slices[self.slice_of(v, h)].free_slot(row) {
                return Some(h * self.slots_per_slice_row + slot);
            }
        }
        None
    }

    fn write_logical(&mut self, bucket: u64, logical_slot: u32, record: &Record) {
        let (v, row) = self.split_bucket(bucket);
        let h = logical_slot / self.slots_per_slice_row;
        let slot = logical_slot % self.slots_per_slice_row;
        let s = self.slice_of(v, h);
        self.slices[s].write_record(row, slot, record);
    }

    fn invalidate_logical(&mut self, bucket: u64, logical_slot: u32) {
        let (v, row) = self.split_bucket(bucket);
        let h = logical_slot / self.slots_per_slice_row;
        let slot = logical_slot % self.slots_per_slice_row;
        let s = self.slice_of(v, h);
        self.slices[s].invalidate(row, slot);
    }

    /// Removes one stored copy of `record` from the overflow area (insert
    /// rollback). Identical copies are indistinguishable, so removing any
    /// one of them is equivalent to removing the one just pushed.
    fn remove_one_overflow_copy(&mut self, record: &Record) {
        match self.overflow.as_mut() {
            Some(OverflowStore::Associative { records, .. }) => {
                if let Some(i) = records.iter().rposition(|r| r == record) {
                    records.remove(i);
                }
            }
            Some(OverflowStore::Victim { slice }) => {
                'rows: for row in 0..slice.rows() {
                    for (s, r) in slice.bucket_records(row) {
                        if r == *record {
                            slice.invalidate(row, s);
                            break 'rows;
                        }
                    }
                }
            }
            None => {}
        }
    }

    /// Searches one logical bucket; horizontal slices are examined in
    /// priority (slot) order. One parallel memory access.
    fn search_logical_bucket(&self, bucket: u64, key: &SearchKey) -> Option<(u32, Record)> {
        let (v, row) = self.split_bucket(bucket);
        self.search_split_bucket(v, row, key)
    }

    /// [`CaRamTable::search_logical_bucket`] with the bucket already split
    /// into its vertical slice group and physical row — the probe loop
    /// splits once and shares the result with the reach lookup.
    fn search_split_bucket(&self, v: u32, row: u64, key: &SearchKey) -> Option<(u32, Record)> {
        for h in 0..self.horizontal {
            if let Some((slot, record)) = self.slices[self.slice_of(v, h)].search_bucket(row, key) {
                return Some((h * self.slots_per_slice_row + slot, record));
            }
        }
        None
    }

    /// Full-reach (post-delete) twin of
    /// [`CaRamTable::search_logical_bucket`]: slot order no longer encodes
    /// priority once deletes have punched holes that later inserts
    /// backfill, so every matching slot of the bucket is compared and the
    /// max-care record wins (lowest slice/slot on ties).
    fn search_logical_bucket_full(&self, bucket: u64, key: &SearchKey) -> Option<(u32, Record)> {
        let (v, row) = self.split_bucket(bucket);
        self.search_split_bucket_full(v, row, key)
    }

    /// Pre-split twin of [`CaRamTable::search_logical_bucket_full`].
    fn search_split_bucket_full(&self, v: u32, row: u64, key: &SearchKey) -> Option<(u32, Record)> {
        let mut best: Option<(u32, Record)> = None;
        for h in 0..self.horizontal {
            if let Some((slot, record)) =
                self.slices[self.slice_of(v, h)].search_bucket_best(row, key)
            {
                if wins_tie_break(&record, best.as_ref().map(|(_, b)| b)) {
                    best = Some((h * self.slots_per_slice_row + slot, record));
                }
            }
        }
        best
    }

    /// Computes the home buckets of `key` into a reusable scratch list.
    /// With no don't-care hash bits (the common lookup) this performs no
    /// heap allocation.
    fn home_buckets_into(&self, key: &SearchKey, out: &mut BucketList) {
        // Unmasked keys (and generators that consume no key bits) have
        // exactly one home; the cached `consumed_bits` keeps this common
        // path at a single virtual call (the hash itself).
        if key.dont_care() == 0 || self.index_consumed.is_none() {
            out.clear();
            out.push(self.index.index(key.value()));
            out.map_mod(self.logical_buckets);
            return;
        }
        buckets_for_masked_search_into(key, self.index.as_ref(), out);
        out.map_mod(self.logical_buckets);
        out.sort_dedup();
    }

    fn home_buckets(&self, key: &SearchKey) -> Vec<u64> {
        let mut out = BucketList::new();
        self.home_buckets_into(key, &mut out);
        out.as_slice().to_vec()
    }

    // ---- CAM-mode operations ----------------------------------------------

    /// Inserts a record with access weight 1 (uniform model).
    ///
    /// # Errors
    ///
    /// See [`CaRamTable::insert_weighted`].
    pub fn insert(&mut self, record: Record) -> Result<InsertOutcome> {
        self.insert_weighted(record, 1.0)
    }

    /// Inserts a record; `weight` is its access frequency, used by the
    /// `AMALs` statistic (Sec. 4.1's skewed access pattern).
    ///
    /// Records must be inserted in descending priority order for
    /// first-match search semantics to implement LPM (see module docs).
    ///
    /// # Errors
    ///
    /// * [`CaRamError::KeyWidthMismatch`] — wrong key width;
    /// * [`CaRamError::TernaryNotEnabled`] — ternary key in a binary layout,
    ///   or a key with don't-care bits under a whole-key hash;
    /// * [`CaRamError::TableFull`] — no free slot within the probe limit (or
    ///   overflow area exhausted).
    #[allow(clippy::missing_panics_doc)] // internal expects: bounds checked at new()
    pub fn insert_weighted(&mut self, record: Record, weight: f64) -> Result<InsertOutcome> {
        if record.key.bits() != self.config.layout.key_bits() {
            return Err(CaRamError::KeyWidthMismatch {
                expected: self.config.layout.key_bits(),
                got: record.key.bits(),
            });
        }
        if record.key.dont_care() != 0
            && (!self.config.layout.is_ternary() || self.index.consumed_bits().is_none())
        {
            return Err(CaRamError::TernaryNotEnabled);
        }
        let homes = self.home_buckets(&record.key.to_search_key());
        let max_steps = match self.config.overflow {
            OverflowPolicy::Probe { max_steps } => max_steps,
            OverflowPolicy::ParallelArea { .. } | OverflowPolicy::VictimSlice { .. } => 0,
        };
        let mut placements = Vec::with_capacity(homes.len());
        let mut to_overflow = 0u32;
        let mut displacements = Vec::with_capacity(homes.len());
        let mut failure: Option<CaRamError> = None;
        let mut homes_done = 0usize;
        for &home in &homes {
            let placed = match self.place_one(home, &record, max_steps) {
                Ok(p) => p,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            if let Some(p) = placed {
                displacements.push(p.displacement);
                placements.push(p);
            } else {
                // Divert to the parallel overflow area: zero extra lookup
                // cost by construction.
                if let Err(e) = self.push_overflow(home, record) {
                    failure = Some(e);
                    break;
                }
                to_overflow += 1;
                displacements.push(0);
            }
            let idx = usize::try_from(home).expect("bucket count checked at new");
            self.home_counts[idx] += 1;
            homes_done += 1;
        }
        if let Some(e) = failure {
            // Multi-home inserts must be atomic: a ternary record with
            // don't-care index bits is duplicated into one bucket per home,
            // and a partial failure would strand copies that search and
            // delete can still find while the caller believes the record
            // was refused. Undo everything this call placed.
            for p in &placements {
                self.invalidate_logical(p.bucket, p.slot);
            }
            for _ in 0..to_overflow {
                self.remove_one_overflow_copy(&record);
            }
            for &home in &homes[..homes_done] {
                let idx = usize::try_from(home).expect("bucket count checked at new");
                self.home_counts[idx] -= 1;
            }
            return Err(e);
        }
        self.stats.record_insert(&displacements, weight);
        if let Some(sink) = &self.sink {
            for p in &placements {
                sink.insert_occupancy(self.bucket_occupancy(p.bucket));
            }
        }
        Ok(InsertOutcome {
            placements,
            to_overflow,
        })
    }

    /// Places one copy; `Ok(None)` means "send to overflow area".
    fn place_one(
        &mut self,
        home: u64,
        record: &Record,
        max_steps: u32,
    ) -> Result<Option<Placement>> {
        let probe = self.config.probe;
        let mut step = 0u32;
        loop {
            let bucket = probe.bucket_at(home, step, self.logical_buckets);
            if let Some(slot) = self.bucket_free_slot(bucket) {
                self.write_logical(bucket, slot, record);
                if step > 0 {
                    self.raise_reach(home, step);
                    let idx = usize::try_from(home).expect("bucket count checked at new");
                    self.bucket_had_spill[idx] = true;
                }
                return Ok(Some(Placement {
                    bucket,
                    slot,
                    displacement: step,
                }));
            }
            if step >= max_steps || u64::from(step) + 1 >= self.logical_buckets {
                break;
            }
            step += 1;
        }
        match &self.overflow {
            Some(_) => Ok(None),
            None => Err(CaRamError::TableFull {
                home_bucket: home,
                buckets_probed: step + 1,
            }),
        }
    }

    /// Places a spilled record in the overflow area.
    fn push_overflow(&mut self, home: u64, record: Record) -> Result<()> {
        match self.overflow.as_mut().expect("caller checked presence") {
            OverflowStore::Associative { records, capacity } => {
                if records.len() >= *capacity {
                    return Err(CaRamError::TableFull {
                        home_bucket: home,
                        buckets_probed: 1,
                    });
                }
                records.push(record);
                Ok(())
            }
            OverflowStore::Victim { slice } => {
                // Hash-addressed by home bucket, linear probing within the
                // victim slice.
                let rows = slice.rows();
                let vhome = home % rows;
                for step in 0..rows {
                    let row = (vhome + step) % rows;
                    if slice.append_record(row, &record).is_some() {
                        #[allow(clippy::cast_possible_truncation)]
                        slice.raise_reach(vhome, step as u32);
                        return Ok(());
                    }
                }
                Err(CaRamError::TableFull {
                    home_bucket: home,
                    buckets_probed: 1,
                })
            }
        }
    }

    /// Searches the overflow area for the best match (parallel to the main
    /// access: zero AMAL cost).
    fn search_overflow(&self, homes: &[u64], key: &SearchKey) -> Option<Record> {
        match self.overflow.as_ref()? {
            OverflowStore::Associative { records, .. } => {
                // Same earliest-wins tie-break as every bucket path (a
                // `max_by_key` here would keep the *last* max instead).
                let mut best: Option<Record> = None;
                for r in records.iter().filter(|r| r.key.matches(key)) {
                    if wins_tie_break(r, best.as_ref()) {
                        best = Some(*r);
                    }
                }
                best
            }
            OverflowStore::Victim { slice } => {
                let rows = slice.rows();
                let mut best: Option<Record> = None;
                for &home in homes {
                    let vhome = home % rows;
                    let reach = slice.aux(vhome).reach;
                    for step in 0..=u64::from(reach) {
                        let row = (vhome + step) % rows;
                        if let Some((_, r)) = slice.search_bucket(row, key) {
                            if wins_tie_break(&r, best.as_ref()) {
                                best = Some(r);
                            }
                        }
                    }
                }
                best
            }
        }
    }

    /// Inserts a record maintaining descending-priority order (priority =
    /// care count, i.e. prefix length) within every bucket chain — the
    /// CA-RAM analogue of sorted TCAM update (Shah & Gupta), enabling
    /// *online* LPM route updates without a rebuild.
    ///
    /// When a bucket is full, its lowest-priority entry is evicted to the
    /// next bucket of the chain (which may cascade). Bucket reach fields
    /// are raised conservatively for every possible home of a displaced
    /// record, so first-match search semantics stay exact.
    ///
    /// Placement statistics ([`CaRamTable::load_report`]) reflect only the
    /// newly inserted record, not cascade movements.
    ///
    /// # Examples
    ///
    /// ```
    /// use ca_ram_core::index::RangeSelect;
    /// use ca_ram_core::key::{SearchKey, TernaryKey};
    /// use ca_ram_core::layout::{Record, RecordLayout};
    /// use ca_ram_core::table::{CaRamTable, TableConfig};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let layout = RecordLayout::ipv4_prefix(8);
    /// let config = TableConfig::single_slice(4, 4 * layout.slot_bits(), layout);
    /// let mut table = CaRamTable::new(config, Box::new(RangeSelect::new(24, 4)))?;
    /// // Announce routes in arbitrary order; priority order is maintained.
    /// table.insert_sorted(Record::new(TernaryKey::ternary(0x0A00_0000, 0xFF_FFFF, 32), 8))?;
    /// table.insert_sorted(Record::new(TernaryKey::ternary(0x0A0B_0000, 0xFFFF, 32), 16))?;
    /// let hit = table.search(&SearchKey::new(0x0A0B_0001, 32)).hit.expect("covered");
    /// assert_eq!(hit.record.data, 16); // longest prefix wins
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// As [`CaRamTable::insert_weighted`]; additionally returns
    /// [`CaRamError::BadConfig`] if the table uses double hashing or a
    /// parallel overflow area (sorted chains require linear probing).
    #[allow(clippy::missing_panics_doc)] // internal expects: bounds checked at new()
    pub fn insert_sorted(&mut self, record: Record) -> Result<InsertOutcome> {
        if self.config.probe != ProbePolicy::Linear {
            return Err(CaRamError::BadConfig(
                "insert_sorted requires linear probing".into(),
            ));
        }
        let OverflowPolicy::Probe { max_steps } = self.config.overflow else {
            return Err(CaRamError::BadConfig(
                "insert_sorted requires probe-based overflow".into(),
            ));
        };
        if record.key.bits() != self.config.layout.key_bits() {
            return Err(CaRamError::KeyWidthMismatch {
                expected: self.config.layout.key_bits(),
                got: record.key.bits(),
            });
        }
        if record.key.dont_care() != 0
            && (!self.config.layout.is_ternary() || self.index.consumed_bits().is_none())
        {
            return Err(CaRamError::TernaryNotEnabled);
        }
        let homes = self.home_buckets(&record.key.to_search_key());
        let mut placements = Vec::with_capacity(homes.len());
        let mut displacements = Vec::with_capacity(homes.len());
        for home in homes {
            let placement = self.insert_sorted_chain(home, record, max_steps)?;
            displacements.push(placement.displacement);
            placements.push(placement);
            let idx = usize::try_from(home).expect("bucket count checked at new");
            self.home_counts[idx] += 1;
        }
        self.stats.record_insert(&displacements, 1.0);
        if let Some(sink) = &self.sink {
            for p in &placements {
                sink.insert_occupancy(self.bucket_occupancy(p.bucket));
            }
        }
        Ok(InsertOutcome {
            placements,
            to_overflow: 0,
        })
    }

    /// One sorted-chain insertion starting at `home`; cascades evictions.
    fn insert_sorted_chain(
        &mut self,
        home: u64,
        record: Record,
        max_steps: u32,
    ) -> Result<Placement> {
        let mut bucket = home;
        let mut incoming = record;
        let mut first_placement: Option<Placement> = None;
        let mut steps = 0u32;
        loop {
            let mut entries: Vec<Record> = self
                .bucket_entries(bucket)
                .into_iter()
                .map(|(_, r)| r)
                .collect();
            let pos = entries.partition_point(|e| e.key.care_count() >= incoming.key.care_count());
            let full = entries.len() == self.slots_per_bucket as usize;
            if !full {
                entries.insert(pos, incoming);
                #[allow(clippy::cast_possible_truncation)]
                let slot = pos as u32;
                self.rewrite_logical_bucket(bucket, &entries);
                if first_placement.is_none() {
                    first_placement = Some(Placement {
                        bucket,
                        slot,
                        displacement: steps,
                    });
                    if steps > 0 {
                        self.raise_reach(home, steps);
                        let idx = usize::try_from(home).expect("checked at new");
                        self.bucket_had_spill[idx] = true;
                    }
                }
                return Ok(first_placement.expect("set above"));
            }
            // Bucket full: either the incoming record is lowest priority and
            // moves on, or it displaces the bucket's last entry.
            if pos < entries.len() {
                let evicted = entries.pop().expect("bucket was full");
                entries.insert(pos, incoming);
                #[allow(clippy::cast_possible_truncation)]
                let slot = pos as u32;
                self.rewrite_logical_bucket(bucket, &entries);
                if first_placement.is_none() {
                    first_placement = Some(Placement {
                        bucket,
                        slot,
                        displacement: steps,
                    });
                    if steps > 0 {
                        self.raise_reach(home, steps);
                        let idx = usize::try_from(home).expect("checked at new");
                        self.bucket_had_spill[idx] = true;
                    }
                }
                incoming = evicted;
            }
            // `incoming` (new record or eviction) advances one bucket; keep
            // the reach invariant of every plausible home of the record.
            self.advance_reach(&incoming, bucket);
            steps += 1;
            if steps > max_steps || u64::from(steps) >= self.logical_buckets {
                return Err(CaRamError::TableFull {
                    home_bucket: home,
                    buckets_probed: steps,
                });
            }
            bucket = (bucket + 1) % self.logical_buckets;
        }
    }

    /// Rewrites a logical bucket with `records` compacted in order across
    /// its horizontal slices.
    fn rewrite_logical_bucket(&mut self, bucket: u64, records: &[Record]) {
        assert!(
            records.len() <= self.slots_per_bucket as usize,
            "bucket overfilled"
        );
        let (v, row) = self.split_bucket(bucket);
        let per = self.slots_per_slice_row as usize;
        for h in 0..self.horizontal {
            let start = (h as usize) * per;
            let chunk: &[Record] = if start >= records.len() {
                &[]
            } else {
                &records[start..records.len().min(start + per)]
            };
            let s = self.slice_of(v, h);
            self.slices[s].rewrite_bucket(row, chunk);
        }
    }

    /// A record currently resident at `from_bucket` is moving one bucket
    /// forward. Maintain the reach invariant — `reach(home) ≥ displacement`
    /// for the record's true home — without unbounded raises: the true home
    /// already satisfies the invariant at `from_bucket`, so exactly the
    /// homes whose reach covers the old position get extended by one.
    fn advance_reach(&mut self, record: &Record, from_bucket: u64) {
        let homes = self.home_buckets(&record.key.to_search_key());
        for home in homes {
            let d_old = (from_bucket + self.logical_buckets - home) % self.logical_buckets;
            if d_old <= u64::from(self.reach(home)) {
                #[allow(clippy::cast_possible_truncation)]
                self.raise_reach(home, d_old as u32 + 1);
                let idx = usize::try_from(home).expect("checked at new");
                self.bucket_had_spill[idx] = true;
            }
        }
    }

    /// Looks up `key`: probes the home bucket and, if the bucket has
    /// overflowed, up to *reach* further buckets. Under the sorted-insert
    /// discipline (and before any delete) the first match in probe order is
    /// the longest, so the scan stops there; after a delete the chain may
    /// interleave priorities and the full reach is scanned, keeping the
    /// best match by care count. The parallel overflow area, if configured,
    /// is consulted at no extra memory-access cost.
    ///
    /// The hot path is allocation-free for unmasked search keys: home
    /// buckets are computed once into an inline buffer (shared with the
    /// overflow probe) and only the winning slot of a fetched row is
    /// decoded. Batched callers should prefer [`CaRamTable::search_batch`],
    /// which reuses the scratch buffer across keys.
    #[must_use]
    pub fn search(&self, key: &SearchKey) -> SearchOutcome {
        let mut homes = BucketList::new();
        self.search_with_scratch(key, &mut homes)
    }

    /// One lookup with a caller-provided home-bucket scratch list.
    fn search_with_scratch(&self, key: &SearchKey, homes: &mut BucketList) -> SearchOutcome {
        // The telemetry branch costs one pointer-null test when no sink is
        // installed; the traced path is a separate function so the hot
        // loop below stays exactly the PR-1 code.
        if let Some(sink) = &self.sink {
            return if self.sink_deep {
                self.search_traced_deep(key, homes, sink.as_ref())
            } else {
                self.search_traced_shallow(key, homes, sink.as_ref())
            };
        }
        // Computed once; reused below for the overflow-area probe.
        self.home_buckets_into(key, homes);
        self.probe_homes(key, homes)
    }

    /// The probe chain over an already-computed home set. Factored out of
    /// [`CaRamTable::search_with_scratch`] so the batched paths hash each
    /// key exactly once: the batch loop computes key `i + 1`'s homes (and
    /// prefetches its rows) while key `i` is compared, then hands the list
    /// here untouched.
    fn probe_homes(&self, key: &SearchKey, homes: &BucketList) -> SearchOutcome {
        let mut accesses = 0u32;
        let mut best: Option<Hit> = None;
        for &home in homes.as_slice() {
            // The home bucket's split serves both the reach lookup and
            // rung 0's search — reach-0 chains (the common case) split
            // exactly once per probed home.
            let (home_v, home_row) = self.split_bucket(home);
            let reach = self.slices[self.slice_of(home_v, 0)].aux(home_row).reach;
            for step in 0..=reach {
                let (bucket, v, row) = if step == 0 {
                    (home, home_v, home_row)
                } else {
                    let b = self
                        .config
                        .probe
                        .bucket_at(home, step, self.logical_buckets);
                    let (v, r) = self.split_bucket(b);
                    (b, v, r)
                };
                accesses += 1;
                if step < reach {
                    // Pull rung k+1's rows toward L1 while rung k is
                    // compared (prefetch distance: one probe rung).
                    self.prefetch_bucket(self.config.probe.bucket_at(
                        home,
                        step + 1,
                        self.logical_buckets,
                    ));
                }
                // Full-reach mode also compares matches *within* a bucket
                // (a backfilled slot may outrank an earlier one).
                let found = if self.full_scan {
                    self.search_split_bucket_full(v, row, key)
                } else {
                    self.search_split_bucket(v, row, key)
                };
                if let Some((slot, record)) = found {
                    let hit = Hit {
                        bucket,
                        slot,
                        record,
                        from_overflow: false,
                    };
                    // Across multiple probed homes (masked search keys) and
                    // full-reach scans, prefer the most specific match.
                    if wins_tie_break(&record, best.as_ref().map(|b| &b.record)) {
                        best = Some(hit);
                    }
                    if !self.full_scan {
                        break; // sorted chain: first match wins
                    }
                }
            }
        }
        if self.overflow.is_some() {
            if let Some(r) = self.search_overflow(homes.as_slice(), key) {
                if wins_tie_break(&r, best.as_ref().map(|b| &b.record)) {
                    best = Some(Hit {
                        bucket: 0,
                        slot: 0,
                        record: r,
                        from_overflow: true,
                    });
                }
            }
        }
        SearchOutcome {
            hit: best,
            memory_accesses: accesses.max(1),
        }
    }

    /// The traced twin of [`CaRamTable::search_with_scratch`]: identical
    /// probe logic and bit-identical outcomes, plus telemetry events. In
    /// shallow mode (the default for [`crate::telemetry::HistogramSink`])
    /// only the per-search [`ProbeSummary`] is reported and the early-exit
    /// matcher is kept; when the sink asks for match vectors the full
    /// match-vector popcount of every fetched row is computed and
    /// per-stage events fire (hash → row fetch → match → extract, plus
    /// the overflow probe). The two modes are separate loops so the
    /// shallow one carries no per-probe branch; the mode is picked from
    /// the deep flag cached at sink installation.
    ///
    /// Shallow trace: the untraced probe loop plus probe-length
    /// bookkeeping and one [`TelemetrySink::search_complete`] call.
    #[allow(clippy::cast_possible_truncation)] // home counts are tiny
    fn search_traced_shallow(
        &self,
        key: &SearchKey,
        homes: &mut BucketList,
        sink: &dyn TelemetrySink,
    ) -> SearchOutcome {
        self.home_buckets_into(key, homes);
        let mut accesses = 0u32;
        let mut best: Option<Hit> = None;
        let mut winning_step = 0u32;
        let mut max_step = 0u32;
        for &home in homes.as_slice() {
            let reach = self.reach(home);
            for step in 0..=reach {
                let bucket = self
                    .config
                    .probe
                    .bucket_at(home, step, self.logical_buckets);
                accesses += 1;
                max_step = max_step.max(step);
                if step < reach {
                    self.prefetch_bucket(self.config.probe.bucket_at(
                        home,
                        step + 1,
                        self.logical_buckets,
                    ));
                }
                let found = if self.full_scan {
                    self.search_logical_bucket_full(bucket, key)
                } else {
                    self.search_logical_bucket(bucket, key)
                };
                if let Some((slot, record)) = found {
                    let hit = Hit {
                        bucket,
                        slot,
                        record,
                        from_overflow: false,
                    };
                    if wins_tie_break(&record, best.as_ref().map(|b| &b.record)) {
                        best = Some(hit);
                        winning_step = step;
                    }
                    if !self.full_scan {
                        break;
                    }
                }
            }
        }
        if self.overflow.is_some() {
            if let Some(r) = self.search_overflow(homes.as_slice(), key) {
                if wins_tie_break(&r, best.as_ref().map(|b| &b.record)) {
                    best = Some(Hit {
                        bucket: 0,
                        slot: 0,
                        record: r,
                        from_overflow: true,
                    });
                    winning_step = 0;
                }
            }
        }
        let probe_length = if best.is_some() {
            u64::from(winning_step)
        } else {
            u64::from(max_step)
        };
        sink.search_complete(&ProbeSummary {
            hit: best.is_some(),
            row_fetches: u64::from(accesses.max(1)),
            probe_length,
            homes: homes.as_slice().len() as u64,
        });
        SearchOutcome {
            hit: best,
            memory_accesses: accesses.max(1),
        }
    }

    /// Deep trace: per-stage events plus exact match-vector popcounts.
    #[allow(clippy::cast_possible_truncation)] // home counts are tiny
    fn search_traced_deep(
        &self,
        key: &SearchKey,
        homes: &mut BucketList,
        sink: &dyn TelemetrySink,
    ) -> SearchOutcome {
        self.home_buckets_into(key, homes);
        let home_count = homes.as_slice().len() as u64;
        sink.stage(Stage::Hash, home_count);
        let mut accesses = 0u32;
        let mut best: Option<Hit> = None;
        let mut winning_step = 0u32;
        let mut max_step = 0u32;
        for &home in homes.as_slice() {
            let reach = self.reach(home);
            for step in 0..=reach {
                let bucket = self
                    .config
                    .probe
                    .bucket_at(home, step, self.logical_buckets);
                accesses += 1;
                max_step = max_step.max(step);
                if step < reach {
                    self.prefetch_bucket(self.config.probe.bucket_at(
                        home,
                        step + 1,
                        self.logical_buckets,
                    ));
                }
                sink.stage(Stage::RowFetch, u64::from(self.slots_per_bucket));
                if let Some((slot, record)) = self.search_logical_bucket_deep(bucket, key, sink) {
                    let hit = Hit {
                        bucket,
                        slot,
                        record,
                        from_overflow: false,
                    };
                    if wins_tie_break(&record, best.as_ref().map(|b| &b.record)) {
                        best = Some(hit);
                        winning_step = step;
                    }
                    if !self.full_scan {
                        break;
                    }
                }
            }
        }
        if self.overflow.is_some() {
            sink.stage(Stage::OverflowProbe, self.overflow_count() as u64);
            if let Some(r) = self.search_overflow(homes.as_slice(), key) {
                if wins_tie_break(&r, best.as_ref().map(|b| &b.record)) {
                    best = Some(Hit {
                        bucket: 0,
                        slot: 0,
                        record: r,
                        from_overflow: true,
                    });
                    winning_step = 0;
                }
            }
        }
        if let Some(h) = &best {
            sink.stage(Stage::Extract, u64::from(h.slot));
        }
        let probe_length = if best.is_some() {
            u64::from(winning_step)
        } else {
            u64::from(max_step)
        };
        sink.search_complete(&ProbeSummary {
            hit: best.is_some(),
            row_fetches: u64::from(accesses.max(1)),
            probe_length,
            homes: home_count,
        });
        SearchOutcome {
            hit: best,
            memory_accesses: accesses.max(1),
        }
    }

    /// Deep-trace variant of [`CaRamTable::search_logical_bucket`]: runs
    /// the full match-vector computation on every horizontal slice (so the
    /// popcount is exact) and reports one [`Stage::Match`] event per
    /// slice. The returned winner is identical to the untraced matcher's:
    /// lowest-numbered matching slot of the lowest horizontal slice, or —
    /// in full-reach (post-delete) mode, where slot order no longer
    /// encodes priority — the max-care match of the whole bucket.
    fn search_logical_bucket_deep(
        &self,
        bucket: u64,
        key: &SearchKey,
        sink: &dyn TelemetrySink,
    ) -> Option<(u32, Record)> {
        let (v, row) = self.split_bucket(bucket);
        let mut found: Option<(u32, Record)> = None;
        for h in 0..self.horizontal {
            let s = self.slice_of(v, h);
            let m = self.slices[s].match_bucket(row, key);
            sink.stage(Stage::Match, u64::from(m.match_count()));
            if self.full_scan {
                if let Some((slot, record)) = self.slices[s].search_bucket_best(row, key) {
                    if wins_tie_break(&record, found.as_ref().map(|(_, b)| b)) {
                        found = Some((h * self.slots_per_slice_row + slot, record));
                    }
                }
            } else if found.is_none() {
                if let Some(slot) = m.first_match {
                    let record = self.slices[s]
                        .read_record(row, slot)
                        .expect("matched slot is valid");
                    found = Some((h * self.slots_per_slice_row + slot, record));
                }
            }
        }
        found
    }

    /// Reference lookup, kept verbatim from before the hot-path work: heap-
    /// allocates the home-bucket list per call (twice when an overflow area
    /// is configured) and fully decodes every valid slot of every probed
    /// row. Used as the equivalence oracle in tests and as the baseline the
    /// `perf_smoke` bench measures speedups against.
    #[must_use]
    pub fn search_baseline(&self, key: &SearchKey) -> SearchOutcome {
        let homes = self.home_buckets(key);
        let mut accesses = 0u32;
        let mut best: Option<Hit> = None;
        for home in homes {
            let reach = self.reach(home);
            for step in 0..=reach {
                let bucket = self
                    .config
                    .probe
                    .bucket_at(home, step, self.logical_buckets);
                accesses += 1;
                let found = if self.full_scan {
                    self.search_logical_bucket_baseline_full(bucket, key)
                } else {
                    self.search_logical_bucket_baseline(bucket, key)
                };
                if let Some((slot, record)) = found {
                    let hit = Hit {
                        bucket,
                        slot,
                        record,
                        from_overflow: false,
                    };
                    if wins_tie_break(&record, best.as_ref().map(|b| &b.record)) {
                        best = Some(hit);
                    }
                    if !self.full_scan {
                        break;
                    }
                }
            }
        }
        if self.overflow.is_some() {
            let homes = self.home_buckets(key);
            if let Some(r) = self.search_overflow(&homes, key) {
                if wins_tie_break(&r, best.as_ref().map(|b| &b.record)) {
                    best = Some(Hit {
                        bucket: 0,
                        slot: 0,
                        record: r,
                        from_overflow: true,
                    });
                }
            }
        }
        SearchOutcome {
            hit: best,
            memory_accesses: accesses.max(1),
        }
    }

    /// Decode-all variant of [`CaRamTable::search_logical_bucket`] backing
    /// [`CaRamTable::search_baseline`].
    fn search_logical_bucket_baseline(
        &self,
        bucket: u64,
        key: &SearchKey,
    ) -> Option<(u32, Record)> {
        let (v, row) = self.split_bucket(bucket);
        for h in 0..self.horizontal {
            if let Some((slot, record)) =
                self.slices[self.slice_of(v, h)].search_bucket_baseline(row, key)
            {
                return Some((h * self.slots_per_slice_row + slot, record));
            }
        }
        None
    }

    /// Decode-all twin of [`CaRamTable::search_logical_bucket_full`].
    fn search_logical_bucket_baseline_full(
        &self,
        bucket: u64,
        key: &SearchKey,
    ) -> Option<(u32, Record)> {
        let (v, row) = self.split_bucket(bucket);
        let mut best: Option<(u32, Record)> = None;
        for h in 0..self.horizontal {
            if let Some((slot, record)) =
                self.slices[self.slice_of(v, h)].search_bucket_baseline_best(row, key)
            {
                if wins_tie_break(&record, best.as_ref().map(|(_, b)| b)) {
                    best = Some((h * self.slots_per_slice_row + slot, record));
                }
            }
        }
        best
    }

    // ---- batched search -----------------------------------------------------

    /// Looks up every key of `keys` in order, reusing one home-bucket
    /// scratch buffer across the whole batch. Outcome `i` is bit-identical
    /// to `self.search(&keys[i])`.
    #[must_use]
    pub fn search_batch(&self, keys: &[SearchKey]) -> Vec<SearchOutcome> {
        let mut out = Vec::with_capacity(keys.len());
        self.search_batch_into(keys, |o| out.push(o));
        out
    }

    /// Pipelined batch core shared by the serial and sharded batch paths:
    /// each key is hashed exactly once, one key ahead of its compare. While
    /// key `i`'s probe chain occupies the execution ports, key `i + 1`'s
    /// home buckets are computed into the spare scratch list and its first
    /// home's rows and auxiliary words are prefetched; the two lists then
    /// swap, so the hash work doubles as the prefetch address computation.
    /// Outcomes are emitted in key order, bit-identical to serial
    /// [`CaRamTable::search`] calls. Public so callers that fold or stream
    /// outcomes (benchmarks, aggregating scans) can skip materializing the
    /// `Vec<SearchOutcome>` that [`CaRamTable::search_batch`] builds.
    pub fn search_batch_into(&self, keys: &[SearchKey], mut emit: impl FnMut(SearchOutcome)) {
        if self.sink.is_some() {
            // Traced searches hash inside the traced twins so telemetry
            // sees every stage; no hash-ahead pipelining there.
            let mut homes = BucketList::new();
            for key in keys {
                emit(self.search_with_scratch(key, &mut homes));
            }
            return;
        }
        let mut cur = BucketList::new();
        let mut next = BucketList::new();
        if let Some(first) = keys.first() {
            self.home_buckets_into(first, &mut cur);
        }
        for i in 0..keys.len() {
            if let Some(nk) = keys.get(i + 1) {
                self.home_buckets_into(nk, &mut next);
                if let Some(&home) = next.as_slice().first() {
                    self.prefetch_bucket(home);
                }
            }
            emit(self.probe_homes(&keys[i], &cur));
            std::mem::swap(&mut cur, &mut next);
        }
    }

    /// Parallel [`CaRamTable::search_batch`]: shards `keys` into contiguous
    /// chunks across `threads` scoped workers (`0` = one per available CPU).
    /// Searches take `&self`, so the slices are shared read-only; outcome
    /// order matches the input order exactly.
    #[must_use]
    pub fn search_batch_parallel(&self, keys: &[SearchKey], threads: usize) -> Vec<SearchOutcome> {
        self.search_batch_parallel_stats(keys, threads).0
    }

    /// As [`CaRamTable::search_batch_parallel`], also returning the merged
    /// per-shard [`SearchStats`] so callers maintaining activity counters
    /// (e.g. the subsystem pump) get them without a second pass.
    ///
    /// Statistics flow through the shared instrumentation layer
    /// ([`AtomicSearchStats`]): each shard accumulates locally and folds its
    /// totals in once, so the result is bit-equal to a serial accumulation.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (a search itself never does for
    /// width-matching keys).
    #[must_use]
    pub fn search_batch_parallel_stats(
        &self,
        keys: &[SearchKey],
        threads: usize,
    ) -> (Vec<SearchOutcome>, SearchStats) {
        let threads = effective_threads(threads, keys.len());
        if threads <= 1 {
            let outcomes = self.search_batch(keys);
            let mut stats = SearchStats::new();
            for o in &outcomes {
                stats.record(o.hit.is_some(), o.memory_accesses);
            }
            return (outcomes, stats);
        }
        let mut outcomes = vec![
            SearchOutcome {
                hit: None,
                memory_accesses: 0,
            };
            keys.len()
        ];
        let chunk = keys.len().div_ceil(threads);
        let shared = AtomicSearchStats::new();
        std::thread::scope(|scope| {
            for (key_chunk, out_chunk) in keys.chunks(chunk).zip(outcomes.chunks_mut(chunk)) {
                let shared = &shared;
                scope.spawn(move || {
                    let mut local = SearchStats::new();
                    let mut out = out_chunk.iter_mut();
                    self.search_batch_into(key_chunk, |outcome| {
                        local.record(outcome.hit.is_some(), outcome.memory_accesses);
                        *out.next().expect("one outcome slot per key") = outcome;
                    });
                    shared.merge(&local);
                });
            }
        });
        (outcomes, shared.snapshot())
    }

    /// Removes the record whose stored key exactly equals `key` (value,
    /// mask, and width), from every bucket it was duplicated into and from
    /// the overflow area. Returns the number of copies removed.
    ///
    /// Deletion does not lower bucket reach (recomputing it requires a
    /// rebuild, as in hardware), and the build-time placement statistics
    /// are intentionally left unchanged.
    #[allow(clippy::missing_panics_doc)] // internal expects: bounds checked at new()
    pub fn delete(&mut self, key: &crate::key::TernaryKey) -> u32 {
        // A post-delete insert may place a shorter prefix upstream of an
        // evicted longer one; drop to full-reach LPM scans from here on.
        self.full_scan = true;
        let search = key.to_search_key();
        let homes = self.home_buckets(&search);
        let mut removed = 0u32;
        for home in homes {
            let reach = self.reach(home);
            // Keep scanning past the first match: duplicate copies of the
            // same stored key can share a bucket or sit further down the
            // probe chain, and "delete" promises to remove them all.
            // Re-visiting a slot cleared via an earlier home is harmless
            // (`read_record` returns `None` once invalidated), so
            // overlapping multi-home chains cannot double-count.
            for step in 0..=reach {
                let bucket = self
                    .config
                    .probe
                    .bucket_at(home, step, self.logical_buckets);
                let (v, row) = self.split_bucket(bucket);
                for h in 0..self.horizontal {
                    let s = self.slice_of(v, h);
                    let slots = self.slices[s].slots_per_row();
                    for slot in 0..slots {
                        if let Some(r) = self.slices[s].read_record(row, slot) {
                            if r.key == *key {
                                self.slices[s].invalidate(row, slot);
                                removed += 1;
                            }
                        }
                    }
                }
            }
        }
        match &mut self.overflow {
            Some(OverflowStore::Associative { records, .. }) => {
                let before = records.len();
                records.retain(|r| r.key != *key);
                removed += u32::try_from(before - records.len()).expect("bounded by capacity");
            }
            Some(OverflowStore::Victim { slice }) => {
                for row in 0..slice.rows() {
                    let slots: Vec<u32> = slice
                        .bucket_records(row)
                        .into_iter()
                        .filter(|(_, r)| r.key == *key)
                        .map(|(s, _)| s)
                        .collect();
                    for s in slots {
                        slice.invalidate(row, s);
                        removed += 1;
                    }
                }
            }
            None => {}
        }
        removed
    }

    // ---- statistics --------------------------------------------------------

    /// The Table 2 / Table 3 style report for the current build.
    #[must_use]
    pub fn load_report(&self) -> LoadReport {
        LoadReport {
            buckets: self.logical_buckets,
            slots_per_bucket: self.slots_per_bucket,
            original_records: self.stats.original_records(),
            duplicate_records: self.stats.duplicate_records(),
            spilled_records: self.stats.spilled_records(),
            overflowing_buckets: self.bucket_had_spill.iter().filter(|&&b| b).count() as u64,
            amal_uniform: self.stats.amal_uniform(),
            amal_weighted: self.stats.amal_weighted(),
        }
    }

    /// Histogram of records per *home* bucket — what Fig. 7 plots (records
    /// are attributed to the bucket they hash to, before any spilling).
    #[must_use]
    pub fn home_histogram(&self) -> OccupancyHistogram {
        OccupancyHistogram::from_counts(self.home_counts.iter().copied())
    }

    /// Histogram of records per bucket *as placed* (after spilling).
    #[must_use]
    pub fn placed_histogram(&self) -> OccupancyHistogram {
        OccupancyHistogram::from_counts((0..self.logical_buckets).map(|b| self.bucket_occupancy(b)))
    }

    /// Per-physical-slice occupancy histograms (records per slice row), in
    /// slice order — the per-slice series telemetry exports.
    #[must_use]
    pub fn slice_occupancy_histograms(&self) -> Vec<OccupancyHistogram> {
        self.slices
            .iter()
            .map(|s| OccupancyHistogram::from_counts((0..s.rows()).map(|r| s.occupancy(r))))
            .collect()
    }

    /// Entries the paper would size a dedicated overflow area for: currently
    /// spilled copies (Sec. 4.3 sizes the victim TCAM from this).
    #[must_use]
    pub fn spilled_records(&self) -> u64 {
        self.stats.spilled_records()
    }
}

impl From<SearchOutcome> for crate::engine::EngineOutcome {
    fn from(o: SearchOutcome) -> Self {
        Self {
            hit: o.hit.map(|h| crate::engine::EngineHit {
                key: h.record.key,
                data: h.record.data,
            }),
            memory_accesses: o.memory_accesses,
        }
    }
}

/// [`CaRamTable`] through the unified engine interface. The trait methods
/// delegate to the inherent allocation-free paths, so a `&dyn SearchEngine`
/// lookup costs one virtual dispatch over a direct call and nothing else.
impl crate::engine::SearchEngine for CaRamTable {
    fn name(&self) -> &'static str {
        "ca-ram"
    }

    fn key_bits(&self) -> u32 {
        self.config.layout.key_bits()
    }

    fn search(&self, key: &SearchKey) -> crate::engine::EngineOutcome {
        CaRamTable::search(self, key).into()
    }

    fn insert(&mut self, record: Record) -> Result<()> {
        CaRamTable::insert(self, record).map(|_| ())
    }

    fn insert_sorted(&mut self, record: Record) -> Result<()> {
        CaRamTable::insert_sorted(self, record).map(|_| ())
    }

    fn delete(&mut self, key: &crate::key::TernaryKey) -> u32 {
        CaRamTable::delete(self, key)
    }

    fn occupancy(&self) -> crate::engine::EngineReport {
        crate::engine::EngineReport {
            records: Some(self.record_count() + self.overflow_count() as u64),
            capacity: Some(self.capacity()),
        }
    }

    fn search_batch(&self, keys: &[SearchKey]) -> Vec<crate::engine::EngineOutcome> {
        CaRamTable::search_batch(self, keys)
            .into_iter()
            .map(Into::into)
            .collect()
    }

    fn search_batch_into(&self, keys: &[SearchKey], out: &mut Vec<crate::engine::EngineOutcome>) {
        out.clear();
        out.reserve(keys.len());
        CaRamTable::search_batch_into(self, keys, |o| {
            out.push(crate::engine::EngineOutcome::from(o));
        });
    }

    fn search_batch_parallel_stats(
        &self,
        keys: &[SearchKey],
        threads: usize,
    ) -> (Vec<crate::engine::EngineOutcome>, SearchStats) {
        let (outcomes, stats) = CaRamTable::search_batch_parallel_stats(self, keys, threads);
        (outcomes.into_iter().map(Into::into).collect(), stats)
    }
}

/// Resolves a caller-supplied thread count: `0` means one worker per
/// available CPU, and the result never exceeds the number of work items
/// (no point spawning idle workers) nor drops below 1.
pub(crate) fn effective_threads(threads: usize, work: usize) -> usize {
    let requested = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    requested.clamp(1, work.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{DjbHash, RangeSelect};
    use crate::key::TernaryKey;

    fn small_table(arrangement: Arrangement, overflow: OverflowPolicy) -> CaRamTable {
        // Key: 16 bits binary, 8-bit data; 4 slots per slice row.
        let layout = RecordLayout::new(16, false, 8);
        let config = TableConfig {
            rows_log2: 3,
            row_bits: 96,
            layout,
            arrangement,
            probe: ProbePolicy::Linear,
            overflow,
        };
        CaRamTable::new(config, Box::new(RangeSelect::new(0, 4))).unwrap()
    }

    fn rec(value: u128, data: u64) -> Record {
        Record::new(TernaryKey::binary(value, 16), data)
    }

    #[test]
    fn geometry_horizontal_vs_vertical() {
        let h = small_table(
            Arrangement::Horizontal(2),
            OverflowPolicy::Probe { max_steps: 8 },
        );
        assert_eq!(h.logical_buckets(), 8);
        assert_eq!(h.slots_per_bucket(), 8);
        assert_eq!(h.capacity(), 64);
        let v = small_table(
            Arrangement::Vertical(2),
            OverflowPolicy::Probe { max_steps: 8 },
        );
        assert_eq!(v.logical_buckets(), 16);
        assert_eq!(v.slots_per_bucket(), 4);
        assert_eq!(v.capacity(), 64);
    }

    #[test]
    fn insert_then_search_hits_home_bucket() {
        let mut t = small_table(
            Arrangement::Horizontal(1),
            OverflowPolicy::Probe { max_steps: 8 },
        );
        // Key 0x0025 hashes to bucket 5 (low 4 bits, mod 8).
        let out = t.insert(rec(0x0025, 7)).unwrap();
        assert_eq!(out.placements.len(), 1);
        assert_eq!(out.placements[0].displacement, 0);
        let got = t.search(&SearchKey::new(0x0025, 16));
        assert_eq!(got.memory_accesses, 1);
        let hit = got.hit.unwrap();
        assert_eq!(hit.record.data, 7);
        assert!(!hit.from_overflow);
        // Miss costs one access too (the home bucket is always fetched).
        let miss = t.search(&SearchKey::new(0x0026, 16));
        assert!(miss.hit.is_none());
        assert_eq!(miss.memory_accesses, 1);
    }

    #[test]
    fn overflow_spills_to_next_bucket_and_search_follows_reach() {
        let mut t = small_table(
            Arrangement::Horizontal(1),
            OverflowPolicy::Probe { max_steps: 8 },
        );
        // Five keys hash to bucket 2 (low 4 bits = 2, mod 8): capacity 4.
        let keys: Vec<u128> = (0..5).map(|i| (i << 8) | 0x02).collect();
        for (i, &k) in keys.iter().enumerate() {
            let out = t.insert(rec(k, i as u64)).unwrap();
            let d = out.placements[0].displacement;
            assert_eq!(d, u32::from(i == 4), "record {i}");
        }
        // The spilled record is found with 2 accesses.
        let got = t.search(&SearchKey::new(keys[4], 16));
        assert_eq!(got.hit.unwrap().record.data, 4);
        assert_eq!(got.memory_accesses, 2);
        // A home-bucket record is found with 1 access.
        assert_eq!(t.search(&SearchKey::new(keys[0], 16)).memory_accesses, 1);
        let report = t.load_report();
        assert_eq!(report.spilled_records, 1);
        assert_eq!(report.overflowing_buckets, 1);
        assert!((report.amal_uniform - 1.2).abs() < 1e-12);
    }

    #[test]
    fn horizontal_bucket_fills_across_slices_with_one_access() {
        let mut t = small_table(
            Arrangement::Horizontal(2),
            OverflowPolicy::Probe { max_steps: 8 },
        );
        // 8 slots per logical bucket now; 6 colliding keys all fit at home.
        for i in 0..6u128 {
            let out = t.insert(rec((i << 8) | 0x03, i as u64)).unwrap();
            assert_eq!(out.placements[0].displacement, 0);
        }
        for i in 0..6u128 {
            let got = t.search(&SearchKey::new((i << 8) | 0x03, 16));
            assert_eq!(got.memory_accesses, 1);
            assert_eq!(got.hit.unwrap().record.data, i as u64);
        }
        assert_eq!(t.load_report().spilled_records, 0);
    }

    #[test]
    fn vertical_arrangement_uses_high_index_bits() {
        let mut t = small_table(
            Arrangement::Vertical(2),
            OverflowPolicy::Probe { max_steps: 8 },
        );
        // 16 logical buckets; key low 4 bits select the bucket directly.
        let out = t.insert(rec(0x000F, 1)).unwrap();
        assert_eq!(out.placements[0].bucket, 15);
        let got = t.search(&SearchKey::new(0x000F, 16));
        assert_eq!(got.hit.unwrap().record.data, 1);
    }

    #[test]
    fn parallel_overflow_area_keeps_amal_at_one() {
        let mut t = small_table(
            Arrangement::Horizontal(1),
            OverflowPolicy::ParallelArea { capacity: 4 },
        );
        for i in 0..6u128 {
            t.insert(rec((i << 8) | 0x01, i as u64)).unwrap();
        }
        assert_eq!(t.overflow_count(), 2);
        // Every lookup costs exactly one access, including overflow hits.
        for i in 0..6u128 {
            let got = t.search(&SearchKey::new((i << 8) | 0x01, 16));
            assert_eq!(got.memory_accesses, 1, "record {i}");
            assert_eq!(got.hit.unwrap().record.data, i as u64);
        }
        assert!(
            t.search(&SearchKey::new((4u128 << 8) | 1, 16))
                .hit
                .unwrap()
                .from_overflow
        );
        assert!((t.load_report().amal_uniform - 1.0).abs() < 1e-12);
    }

    #[test]
    fn victim_slice_absorbs_spills_at_unit_amal() {
        let layout = RecordLayout::new(16, false, 8);
        let mut t = small_table(
            Arrangement::Horizontal(1),
            OverflowPolicy::VictimSlice {
                rows_log2: 2,
                row_bits: 96,
            },
        );
        let _ = layout;
        // 6 keys to a 4-slot bucket: 2 land in the victim slice.
        for i in 0..6u128 {
            t.insert(rec((i << 8) | 0x01, i as u64)).unwrap();
        }
        assert_eq!(t.overflow_count(), 2);
        for i in 0..6u128 {
            let got = t.search(&SearchKey::new((i << 8) | 0x01, 16));
            assert_eq!(
                got.memory_accesses, 1,
                "victim slice is accessed in parallel"
            );
            assert_eq!(got.hit.unwrap().record.data, i as u64);
        }
        assert!(
            t.search(&SearchKey::new((5u128 << 8) | 1, 16))
                .hit
                .unwrap()
                .from_overflow
        );
        // Deleting a victim-resident record works.
        assert_eq!(t.delete(&TernaryKey::binary((5u128 << 8) | 1, 16)), 1);
        assert!(t
            .search(&SearchKey::new((5u128 << 8) | 1, 16))
            .hit
            .is_none());
        assert_eq!(t.overflow_count(), 1);
    }

    #[test]
    fn victim_slice_capacity_enforced() {
        // Victim: 1 row of 4 slots; spill 5 records beyond the main bucket.
        let mut t = small_table(
            Arrangement::Horizontal(1),
            OverflowPolicy::VictimSlice {
                rows_log2: 0,
                row_bits: 96,
            },
        );
        for i in 0..8u128 {
            t.insert(rec((i << 8) | 0x02, 0)).unwrap();
        }
        let err = t.insert(rec((8u128 << 8) | 0x02, 0)).unwrap_err();
        assert!(matches!(err, CaRamError::TableFull { .. }));
    }

    #[test]
    fn victim_slice_internal_probing_spreads_hot_homes() {
        // Victim has 4 rows x 4 slots; overflow 6 records from one home:
        // they must probe across victim rows and stay findable.
        let mut t = small_table(
            Arrangement::Horizontal(1),
            OverflowPolicy::VictimSlice {
                rows_log2: 2,
                row_bits: 96,
            },
        );
        for i in 0..10u128 {
            t.insert(rec((i << 8) | 0x03, i as u64)).unwrap();
        }
        assert_eq!(t.overflow_count(), 6);
        for i in 0..10u128 {
            let got = t.search(&SearchKey::new((i << 8) | 0x03, 16));
            assert_eq!(got.hit.unwrap().record.data, i as u64, "record {i}");
        }
    }

    #[test]
    fn overflow_area_capacity_enforced() {
        let mut t = small_table(
            Arrangement::Horizontal(1),
            OverflowPolicy::ParallelArea { capacity: 1 },
        );
        for i in 0..5u128 {
            t.insert(rec((i << 8) | 0x01, 0)).unwrap();
        }
        let err = t.insert(rec((5u128 << 8) | 0x01, 0)).unwrap_err();
        assert!(matches!(err, CaRamError::TableFull { .. }));
    }

    #[test]
    fn probe_limit_zero_fails_on_collision() {
        let mut t = small_table(
            Arrangement::Horizontal(1),
            OverflowPolicy::Probe { max_steps: 0 },
        );
        for i in 0..4u128 {
            t.insert(rec((i << 8) | 0x06, 0)).unwrap();
        }
        let err = t.insert(rec((4u128 << 8) | 0x06, 0)).unwrap_err();
        assert!(matches!(
            err,
            CaRamError::TableFull {
                home_bucket: 6,
                buckets_probed: 1
            }
        ));
    }

    #[test]
    fn lpm_first_match_under_sorted_insertion() {
        // IPv4-style LPM on a tiny table: insert /24 before /16 before /8
        // (descending prefix length), search must return the /24.
        let layout = RecordLayout::ipv4_prefix(8);
        let config = TableConfig {
            rows_log2: 4,
            row_bits: layout.slot_bits() * 4,
            layout,
            arrangement: Arrangement::Horizontal(1),
            probe: ProbePolicy::Linear,
            overflow: OverflowPolicy::Probe { max_steps: 16 },
        };
        let mut t = CaRamTable::new(config, Box::new(RangeSelect::new(24, 4))).unwrap();
        let p24 = Record::new(TernaryKey::ternary(0x0A0B_0C00, 0xFF, 32), 24);
        let p16 = Record::new(TernaryKey::ternary(0x0A0B_0000, 0xFFFF, 32), 16);
        let p8 = Record::new(TernaryKey::ternary(0x0A00_0000, 0x00FF_FFFF, 32), 8);
        t.insert(p24).unwrap();
        t.insert(p16).unwrap();
        t.insert(p8).unwrap();
        let hit = |addr: u128| t.search(&SearchKey::new(addr, 32)).hit.unwrap().record.data;
        assert_eq!(hit(0x0A0B_0C01), 24);
        assert_eq!(hit(0x0A0B_0D01), 16);
        assert_eq!(hit(0x0A0F_0001), 8);
        assert!(t.search(&SearchKey::new(0x0B00_0000, 32)).hit.is_none());
    }

    #[test]
    fn duplicated_prefix_reaches_all_hash_images() {
        // Hash = address bits 24..28; a /6 prefix leaves 2 hash bits
        // don't-care -> 4 homes, one placement each, all searchable.
        let layout = RecordLayout::ipv4_prefix(8);
        let config = TableConfig {
            rows_log2: 4,
            row_bits: layout.slot_bits() * 4,
            layout,
            arrangement: Arrangement::Horizontal(1),
            probe: ProbePolicy::Linear,
            overflow: OverflowPolicy::Probe { max_steps: 16 },
        };
        let mut t = CaRamTable::new(config, Box::new(RangeSelect::new(24, 4))).unwrap();
        let p6 = Record::new(
            TernaryKey::ternary(0x0800_0000, crate::bits::low_mask(26), 32),
            6,
        );
        let out = t.insert(p6).unwrap();
        assert_eq!(out.placements.len(), 4);
        let report = t.load_report();
        assert_eq!(report.original_records, 1);
        assert_eq!(report.duplicate_records, 3);
        for addr in [0x0800_0000u128, 0x0900_0000, 0x0A00_0000, 0x0BFF_FFFF] {
            let got = t.search(&SearchKey::new(addr, 32));
            assert_eq!(got.hit.unwrap().record.data, 6, "addr {addr:#x}");
        }
    }

    #[test]
    fn delete_removes_all_duplicates() {
        let layout = RecordLayout::ipv4_prefix(8);
        let config = TableConfig {
            rows_log2: 4,
            row_bits: layout.slot_bits() * 4,
            layout,
            arrangement: Arrangement::Horizontal(1),
            probe: ProbePolicy::Linear,
            overflow: OverflowPolicy::Probe { max_steps: 16 },
        };
        let mut t = CaRamTable::new(config, Box::new(RangeSelect::new(24, 4))).unwrap();
        let key = TernaryKey::ternary(0x0800_0000, crate::bits::low_mask(26), 32);
        t.insert(Record::new(key, 6)).unwrap();
        assert_eq!(t.record_count(), 4);
        assert_eq!(t.delete(&key), 4);
        assert_eq!(t.record_count(), 0);
        assert!(t.search(&SearchKey::new(0x0900_0000, 32)).hit.is_none());
        assert_eq!(t.delete(&key), 0);
    }

    #[test]
    fn delete_then_reinsert_reuses_slot() {
        let mut t = small_table(
            Arrangement::Horizontal(1),
            OverflowPolicy::Probe { max_steps: 8 },
        );
        t.insert(rec(0x0102, 1)).unwrap();
        let key = TernaryKey::binary(0x0102, 16);
        assert_eq!(t.delete(&key), 1);
        let out = t.insert(rec(0x0102, 2)).unwrap();
        assert_eq!(out.placements[0].displacement, 0);
        assert_eq!(
            t.search(&SearchKey::new(0x0102, 16))
                .hit
                .unwrap()
                .record
                .data,
            2
        );
    }

    #[test]
    fn histograms_track_home_and_placed_counts() {
        let mut t = small_table(
            Arrangement::Horizontal(1),
            OverflowPolicy::Probe { max_steps: 8 },
        );
        for i in 0..5u128 {
            t.insert(rec((i << 8) | 0x02, 0)).unwrap(); // all home bucket 2
        }
        let home = t.home_histogram();
        assert_eq!(home.buckets_with(5), 1);
        assert_eq!(home.buckets_with(0), 7);
        let placed = t.placed_histogram();
        assert_eq!(placed.buckets_with(4), 1); // bucket 2 full
        assert_eq!(placed.buckets_with(1), 1); // bucket 3 holds the spill
    }

    #[test]
    fn djb_table_rejects_ternary_keys() {
        let layout = RecordLayout::new(32, true, 0);
        let config = TableConfig {
            rows_log2: 4,
            row_bits: layout.slot_bits() * 4,
            layout,
            arrangement: Arrangement::Horizontal(1),
            probe: ProbePolicy::Linear,
            overflow: OverflowPolicy::Probe { max_steps: 4 },
        };
        let mut t = CaRamTable::new(config, Box::new(DjbHash::new(8, 4))).unwrap();
        let err = t
            .insert(Record::new(TernaryKey::ternary(0, 0xFF, 32), 0))
            .unwrap_err();
        assert_eq!(err, CaRamError::TernaryNotEnabled);
        // Binary keys are fine.
        t.insert(Record::new(TernaryKey::binary(42, 32), 0))
            .unwrap();
    }

    #[test]
    fn narrow_index_generator_rejected() {
        let layout = RecordLayout::new(16, false, 0);
        let config = TableConfig::single_slice(8, 64, layout);
        let err = CaRamTable::new(config, Box::new(RangeSelect::new(0, 4))).unwrap_err();
        assert!(matches!(err, CaRamError::BadConfig(_)));
    }

    fn lpm_table() -> CaRamTable {
        let layout = RecordLayout::ipv4_prefix(8);
        let config = TableConfig {
            rows_log2: 3,
            row_bits: layout.slot_bits() * 2, // tiny buckets: 2 slots
            layout,
            arrangement: Arrangement::Horizontal(1),
            probe: ProbePolicy::Linear,
            overflow: OverflowPolicy::Probe { max_steps: 8 },
        };
        CaRamTable::new(config, Box::new(RangeSelect::new(24, 3))).unwrap()
    }

    fn prefix(addr: u128, len: u32) -> TernaryKey {
        let dc = if len == 32 {
            0
        } else {
            (1u128 << (32 - len)) - 1
        };
        TernaryKey::ternary(addr, dc, 32)
    }

    #[test]
    fn insert_sorted_orders_within_bucket_regardless_of_arrival() {
        let mut t = lpm_table();
        // Arrive short-first — the hard case for priority order.
        t.insert_sorted(Record::new(prefix(0x0100_0000, 8), 8))
            .unwrap();
        t.insert_sorted(Record::new(prefix(0x0101_0000, 16), 16))
            .unwrap();
        let entries = t.bucket_entries(1);
        let lens: Vec<u32> = entries.iter().map(|(_, r)| r.key.care_count()).collect();
        assert_eq!(lens, vec![16, 8]);
        // LPM through ordinary first-match search.
        let hit = t.search(&SearchKey::new(0x0101_0200, 32)).hit.unwrap();
        assert_eq!(hit.record.data, 16);
        let hit = t.search(&SearchKey::new(0x0102_0000, 32)).hit.unwrap();
        assert_eq!(hit.record.data, 8);
    }

    #[test]
    fn insert_sorted_evicts_lowest_priority_on_overflow() {
        let mut t = lpm_table();
        // Three prefixes homing at bucket 1; capacity 2. The /8 (lowest
        // priority) must end up evicted to bucket 2, still findable.
        t.insert_sorted(Record::new(prefix(0x0100_0000, 8), 8))
            .unwrap();
        t.insert_sorted(Record::new(prefix(0x0101_0000, 16), 16))
            .unwrap();
        t.insert_sorted(Record::new(prefix(0x0101_0100, 24), 24))
            .unwrap();
        let lens: Vec<u32> = t
            .bucket_entries(1)
            .iter()
            .map(|(_, r)| r.key.care_count())
            .collect();
        assert_eq!(lens, vec![24, 16]);
        let spilled = t.search(&SearchKey::new(0x01FF_0000, 32));
        assert_eq!(spilled.hit.unwrap().record.data, 8);
        assert_eq!(spilled.memory_accesses, 2, "found via the reach chain");
        // LPM for the longer prefixes still resolves at home.
        assert_eq!(
            t.search(&SearchKey::new(0x0101_0101, 32))
                .hit
                .unwrap()
                .record
                .data,
            24
        );
    }

    #[test]
    fn insert_sorted_matches_bulk_sorted_build() {
        // Online arbitrary-order inserts must produce the same LPM function
        // as the offline longest-first build.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(9);
        // Capacity is 8 buckets x 2 slots; stay beneath it.
        let mut routes: Vec<(u128, u32)> = Vec::new();
        for _ in 0..12 {
            let len = rng.gen_range(8..=32u32);
            let addr = u128::from(rng.gen::<u32>())
                & !(if len == 32 {
                    0u128
                } else {
                    (1u128 << (32 - len)) - 1
                });
            routes.push((addr, len));
        }
        routes.sort_unstable();
        routes.dedup();
        let mut offline = lpm_table();
        let mut sorted_routes = routes.clone();
        sorted_routes.sort_by(|a, b| b.1.cmp(&a.1));
        for &(a, l) in &sorted_routes {
            offline
                .insert(Record::new(prefix(a, l), u64::from(l)))
                .unwrap();
        }
        let mut online = lpm_table();
        for &(a, l) in &routes {
            online
                .insert_sorted(Record::new(prefix(a, l), u64::from(l)))
                .unwrap();
        }
        for _ in 0..500 {
            let addr = u128::from(rng.gen::<u32>());
            let key = SearchKey::new(addr, 32);
            assert_eq!(
                online.search(&key).hit.map(|h| h.record.data),
                offline.search(&key).hit.map(|h| h.record.data),
                "addr {addr:#x}"
            );
        }
    }

    #[test]
    fn delete_then_insert_preserves_lpm_via_full_scan() {
        // Regression: evict a long prefix past its home, delete a resident
        // entry, insert a shorter matching prefix into the freed slot. A
        // stop-at-first-match search would return the shorter prefix; the
        // post-delete full-reach scan must return the longer one.
        let mut t = lpm_table(); // 2-slot buckets
                                 // Fill bucket 1 with two /24s, forcing the /22 to spill to bucket 2.
        let a24 = prefix(0x0100_0100, 24);
        let b24 = prefix(0x0100_0200, 24);
        let c22 = prefix(0x0100_0400, 22);
        t.insert_sorted(Record::new(a24, 0)).unwrap();
        t.insert_sorted(Record::new(b24, 0)).unwrap();
        t.insert_sorted(Record::new(c22, 22)).unwrap();
        assert_eq!(t.bucket_occupancy(2), 1, "/22 spilled to bucket 2");
        // Delete one /24, then insert a /16 that also matches the /22's
        // space; it lands in bucket 1, upstream of the /22.
        assert_eq!(t.delete(&a24), 1, "a24 present");
        let p16 = prefix(0x0100_0000, 16);
        t.insert_sorted(Record::new(p16, 16)).unwrap();
        // An address inside the /22: LPM must still find the /22.
        let got = t.search(&SearchKey::new(0x0100_0501, 32));
        assert_eq!(got.hit.unwrap().record.key.care_count(), 22);
        // And the /16 serves addresses outside the /22.
        let got = t.search(&SearchKey::new(0x0100_F000, 32));
        assert_eq!(got.hit.unwrap().record.key.care_count(), 16);
    }

    #[test]
    fn insert_sorted_rejects_wrong_configs() {
        let layout = RecordLayout::new(16, false, 8);
        let config = TableConfig {
            rows_log2: 3,
            row_bits: 96,
            layout,
            arrangement: Arrangement::Horizontal(1),
            probe: ProbePolicy::SecondHash,
            overflow: OverflowPolicy::Probe { max_steps: 8 },
        };
        let mut t = CaRamTable::new(config, Box::new(RangeSelect::new(0, 3))).unwrap();
        assert!(matches!(
            t.insert_sorted(rec(1, 1)),
            Err(CaRamError::BadConfig(_))
        ));
        let mut t = small_table(
            Arrangement::Horizontal(1),
            OverflowPolicy::ParallelArea { capacity: 4 },
        );
        assert!(matches!(
            t.insert_sorted(rec(1, 1)),
            Err(CaRamError::BadConfig(_))
        ));
    }

    #[test]
    fn wrong_key_width_rejected() {
        let mut t = small_table(
            Arrangement::Horizontal(1),
            OverflowPolicy::Probe { max_steps: 8 },
        );
        let err = t
            .insert(Record::new(TernaryKey::binary(0, 8), 0))
            .unwrap_err();
        assert_eq!(
            err,
            CaRamError::KeyWidthMismatch {
                expected: 16,
                got: 8
            }
        );
    }

    /// A ternary table with spills and an overflow area, plus a probe mix
    /// of hits, misses, and masked keys — shared by the equivalence tests.
    fn loaded_table_and_probes() -> (CaRamTable, Vec<SearchKey>) {
        let layout = RecordLayout::new(16, true, 8);
        let config = TableConfig {
            rows_log2: 5,
            row_bits: 128,
            layout,
            arrangement: Arrangement::Horizontal(2),
            probe: ProbePolicy::Linear,
            overflow: OverflowPolicy::ParallelArea { capacity: 4 },
        };
        let mut t = CaRamTable::new(config, Box::new(RangeSelect::new(8, 5))).unwrap();
        for i in 0..40u64 {
            let k = u128::from(i);
            let key = if i % 5 == 0 {
                TernaryKey::ternary((k * 97) & 0xFFF0, 0xF, 16)
            } else {
                TernaryKey::binary((k * 97) & 0xFFFF, 16)
            };
            t.insert_weighted(Record::new(key, i), 1.0).unwrap();
        }
        let mut probes = Vec::new();
        for i in 0..60u128 {
            probes.push(SearchKey::new((i * 53) & 0xFFFF, 16));
        }
        // Masked search keys exercise the multi-home path.
        probes.push(SearchKey::with_mask(0x1230, 0x000F, 16));
        probes.push(SearchKey::with_mask(0, 0xFFFF, 16));
        (t, probes)
    }

    #[test]
    fn search_agrees_with_baseline() {
        let (t, probes) = loaded_table_and_probes();
        for key in &probes {
            assert_eq!(t.search(key), t.search_baseline(key), "key {key:?}");
        }
    }

    #[test]
    fn search_batch_agrees_with_per_key_search() {
        let (t, probes) = loaded_table_and_probes();
        let batch = t.search_batch(&probes);
        assert_eq!(batch.len(), probes.len());
        for (key, got) in probes.iter().zip(&batch) {
            assert_eq!(*got, t.search(key), "key {key:?}");
        }
    }

    #[test]
    fn parallel_batch_agrees_with_serial_and_merges_stats() {
        let (t, probes) = loaded_table_and_probes();
        let serial = t.search_batch(&probes);
        for threads in [0, 1, 2, 3, 7] {
            let (par, stats) = t.search_batch_parallel_stats(&probes, threads);
            assert_eq!(par, serial, "threads={threads}");
            assert_eq!(stats.searches, probes.len() as u64);
            assert_eq!(
                stats.hits,
                serial.iter().filter(|o| o.hit.is_some()).count() as u64
            );
            assert_eq!(
                stats.memory_accesses,
                serial
                    .iter()
                    .map(|o| u64::from(o.memory_accesses))
                    .sum::<u64>()
            );
        }
    }

    #[test]
    fn effective_threads_resolves_zero_and_clamps() {
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(4, 0), 1);
    }
}
