//! `any::<T>()` — the full-range strategy for primitive types.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Standard;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws a value uniformly over the whole type.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

impl<T: Standard> Arbitrary for T {
    fn arbitrary(rng: &mut SmallRng) -> T {
        T::sample_standard(rng)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<fn() -> T>);

/// Generates any value of `T` (uniform for integers and `bool`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}
