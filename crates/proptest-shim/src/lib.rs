//! Offline stand-in for the subset of the `proptest` API used by this
//! workspace.
//!
//! The build environment has no reliable registry access, so the workspace
//! aliases the `proptest` dependency name to this crate (see the root
//! `Cargo.toml`). It implements random property testing with deterministic
//! per-test seeds but **no shrinking**: a failing case reports its inputs
//! (via the `prop_assert*` messages), the case number, and the test's seed
//! so the failure can be replayed, but no minimization is attempted.
//!
//! Supported surface:
//!
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//!   [`prop_oneof!`];
//! - strategies: integer/float ranges, [`any`](arbitrary::any),
//!   [`collection::vec`], [`sample::select`], [`strategy::Just`], tuples up
//!   to arity 8, and [`strategy::Strategy::prop_map`].

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The conventional glob import for tests: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Module-style access to the crate (`prop::collection::vec`, ...).
    pub use crate as prop;
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// item expands to a `#[test]`-compatible function that runs the body for
/// `cases` randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (@impl ($config:expr);) => {};
    (@impl ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run(stringify!($name), &config, |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can report the case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Discards the current case (without failing) when a precondition does
/// not hold; the runner draws a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(format!($($fmt)*)));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
