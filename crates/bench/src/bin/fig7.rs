//! Reproduces **Figure 7**: the distribution of buckets having a different
//! number of records for trigram design A (4 vertical slices, 96-record
//! buckets, α = 0.86).
//!
//! The histogram is computed over *home* buckets (where records hash to,
//! before spilling), exactly what makes "the bucket size of 96 records put
//! a majority of buckets in the non-overflowing region".
//!
//! Usage: `fig7 [--entries N] [--seed S]`

use ca_ram_bench::designs::{build_trigram_table, load_trigrams, trigram_designs};
use ca_ram_bench::{rule, trigram_config, Cli, Result};
use ca_ram_workloads::trigram::generate;

fn main() -> Result<()> {
    let cli = Cli::from_env();
    let entries: usize = cli.parse("entries", 5_385_231)?;
    let seed: u64 = cli.parse("seed", 0x5F19)?;
    let config = trigram_config(entries, Some(seed));

    println!("Figure 7: distribution of buckets by records hashed to them (trigram design A)");
    println!("({} entries, seed {seed:#x})\n", config.entries);
    let data = generate(&config);
    let design = trigram_designs()[0];
    let mut t = build_trigram_table(&design);
    load_trigrams(&mut t, &data);

    let hist = t.home_histogram();
    let mean = hist.mean();
    let slots = t.slots_per_bucket();

    // Render an ASCII histogram binned by 4 records.
    let max_records = hist.max_records();
    let bin_width = 4u32;
    let bins = (max_records / bin_width) + 1;
    let mut binned = vec![0u64; bins as usize];
    for (records, buckets) in hist.series() {
        binned[(records / bin_width) as usize] += buckets;
    }
    let peak = binned.iter().copied().max().unwrap_or(1).max(1);
    println!(
        "{:>9} {:>8}  histogram (each bin = {bin_width} record counts)",
        "records", "buckets"
    );
    rule(76);
    for (bin, &count) in (0u32..).zip(binned.iter()) {
        let lo = bin * bin_width;
        if count == 0 && (lo + bin_width < mean as u32 / 2 || lo > max_records) {
            continue;
        }
        #[allow(
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss,
            clippy::cast_precision_loss
        )]
        let bar = "#".repeat(((count as f64 / peak as f64) * 50.0).round() as usize);
        let marker = if lo <= slots && slots < lo + bin_width {
            " <- bucket size S"
        } else {
            ""
        };
        println!(
            "{:>4}-{:<4} {count:>8}  {bar}{marker}",
            lo,
            lo + bin_width - 1
        );
    }
    rule(76);
    println!("\nmean records/home bucket: {mean:.1} (paper: centred around 81)");
    #[allow(clippy::cast_precision_loss)]
    let over = 100.0 * hist.fraction_above(slots);
    println!("buckets above S = {slots}: {over:.2}% (paper: 5.99% overflowing buckets)");
    Ok(())
}
