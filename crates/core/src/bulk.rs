//! Massive data evaluation and modification (Sec. 1, 3.1).
//!
//! "CA-RAM provides a similar search capability compared to CAM; however,
//! its decoupled match logic can be easily extended to implement more
//! advanced functionality such as massive data evaluation and
//! modification." Because the match processors sit *between* the sense
//! amplifiers and the output, they can stream every row of the array
//! through an arbitrary evaluation or update function at one row per
//! memory cycle — a capability conventional CAMs structurally lack.
//!
//! This module implements that extension for [`CaRamTable`]: whole-table
//! scans, predicate evaluation (counting and collecting), masked-key
//! population counts, and in-place data updates. Every operation reports
//! the number of row fetches it performed so the cost model can price it
//! (`rows × Tmem`, match work pipelined underneath).

use crate::key::SearchKey;
use crate::layout::Record;
use crate::table::{effective_threads, CaRamTable};
use std::ops::Range;

/// Outcome of a bulk operation: what it found/changed and what it cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BulkReceipt {
    /// Records visited (valid slots).
    pub records_visited: u64,
    /// Records matched by the predicate / mask, or modified.
    pub records_affected: u64,
    /// Row fetches performed — the memory-access cost of the scan. Every
    /// physical row is fetched exactly once.
    pub rows_accessed: u64,
}

impl BulkReceipt {
    /// Folds another receipt in — partitioned scans sum their shards.
    fn absorb(&mut self, other: &BulkReceipt) {
        self.records_visited += other.records_visited;
        self.records_affected += other.records_affected;
        self.rows_accessed += other.rows_accessed;
    }
}

/// Splits `0..buckets` into up to `threads` contiguous, disjoint ranges
/// covering every bucket exactly once.
fn bucket_partitions(buckets: u64, threads: usize) -> Vec<Range<u64>> {
    let threads = effective_threads(threads, usize::try_from(buckets).unwrap_or(usize::MAX)) as u64;
    let chunk = buckets.div_ceil(threads.max(1));
    (0..threads)
        .map(|i| (i * chunk).min(buckets)..((i + 1) * chunk).min(buckets))
        .filter(|r| !r.is_empty())
        .collect()
}

impl CaRamTable {
    /// Scans one contiguous bucket range — the shard unit of the bulk ops.
    fn scan_bucket_range<F>(&self, buckets: Range<u64>, mut visit: F) -> BulkReceipt
    where
        F: FnMut(u64, u32, &Record),
    {
        let mut receipt = BulkReceipt::default();
        for bucket in buckets {
            receipt.rows_accessed += 1;
            for (slot, record) in self.bucket_entries(bucket) {
                receipt.records_visited += 1;
                visit(bucket, slot, &record);
            }
        }
        receipt
    }

    /// Visits every stored record (main array, bucket-major, priority
    /// order within buckets), calling `visit(bucket, slot, record)`.
    /// Records in the parallel overflow area are *not* visited — they live
    /// outside the scannable array, as in hardware.
    pub fn for_each_record<F>(&self, visit: F) -> BulkReceipt
    where
        F: FnMut(u64, u32, &Record),
    {
        self.scan_bucket_range(0..self.logical_buckets(), visit)
    }

    /// Parallel [`CaRamTable::for_each_record`]: shards the bucket space
    /// into contiguous disjoint ranges across `threads` scoped workers
    /// (`0` = one per available CPU). `visit` is shared, so it observes
    /// records from different shards interleaved — within a shard the
    /// order is still bucket-major.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (i.e. if `visit` does).
    pub fn for_each_record_parallel<F>(&self, visit: F, threads: usize) -> BulkReceipt
    where
        F: Fn(u64, u32, &Record) + Sync,
    {
        let parts = bucket_partitions(self.logical_buckets(), threads);
        if parts.len() <= 1 {
            return self.for_each_record(&visit);
        }
        let mut receipt = BulkReceipt::default();
        std::thread::scope(|scope| {
            let workers: Vec<_> = parts
                .into_iter()
                .map(|range| {
                    let visit = &visit;
                    scope.spawn(move || self.scan_bucket_range(range, visit))
                })
                .collect();
            for worker in workers {
                receipt.absorb(&worker.join().expect("bulk scan worker panicked"));
            }
        });
        receipt
    }

    /// Counts the records whose key matches `pattern` — a masked
    /// population count over the whole table ("data evaluation"). Unlike
    /// [`CaRamTable::search`], this does not stop at the first match and
    /// visits every bucket, so the cost is `M` row fetches.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width differs from the table's key width.
    #[must_use]
    pub fn count_matching(&self, pattern: &SearchKey) -> (u64, BulkReceipt) {
        let mut count = 0u64;
        let mut receipt = self.for_each_record(|_, _, record| {
            // `records_affected` is accumulated below; the closure only
            // counts via the captured variable.
            if record.key.matches(pattern) {
                count += 1;
            }
        });
        receipt.records_affected = count;
        (count, receipt)
    }

    /// Parallel [`CaRamTable::count_matching`]: each worker counts its own
    /// bucket shard; the shard counts and receipts are summed, so the
    /// result is identical to the serial count.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width differs from the table's key width.
    #[must_use]
    pub fn count_matching_parallel(
        &self,
        pattern: &SearchKey,
        threads: usize,
    ) -> (u64, BulkReceipt) {
        let parts = bucket_partitions(self.logical_buckets(), threads);
        if parts.len() <= 1 {
            return self.count_matching(pattern);
        }
        let mut count = 0u64;
        let mut receipt = BulkReceipt::default();
        std::thread::scope(|scope| {
            let workers: Vec<_> = parts
                .into_iter()
                .map(|range| {
                    scope.spawn(move || {
                        let mut shard_count = 0u64;
                        let shard = self.scan_bucket_range(range, |_, _, record| {
                            if record.key.matches(pattern) {
                                shard_count += 1;
                            }
                        });
                        (shard_count, shard)
                    })
                })
                .collect();
            for worker in workers {
                let (shard_count, shard) = worker.join().expect("bulk count worker panicked");
                count += shard_count;
                receipt.absorb(&shard);
            }
        });
        receipt.records_affected = count;
        (count, receipt)
    }

    /// Collects every record satisfying `predicate` (an arbitrary
    /// evaluation over key and data, beyond what hardware masking can
    /// express — the "more advanced functionality" of Sec. 3.1).
    pub fn select<P>(&self, mut predicate: P) -> (Vec<Record>, BulkReceipt)
    where
        P: FnMut(&Record) -> bool,
    {
        let mut out = Vec::new();
        let mut receipt = self.for_each_record(|_, _, record| {
            if predicate(record) {
                out.push(*record);
            }
        });
        receipt.records_affected = out.len() as u64;
        (out, receipt)
    }

    /// Parallel [`CaRamTable::select`]: workers collect per-shard vectors
    /// which are concatenated in partition order, so the returned records
    /// appear in exactly the serial (bucket-major) order.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (i.e. if `predicate` does).
    pub fn select_parallel<P>(&self, predicate: P, threads: usize) -> (Vec<Record>, BulkReceipt)
    where
        P: Fn(&Record) -> bool + Sync,
    {
        let parts = bucket_partitions(self.logical_buckets(), threads);
        if parts.len() <= 1 {
            return self.select(&predicate);
        }
        let mut out = Vec::new();
        let mut receipt = BulkReceipt::default();
        std::thread::scope(|scope| {
            let workers: Vec<_> = parts
                .into_iter()
                .map(|range| {
                    let predicate = &predicate;
                    scope.spawn(move || {
                        let mut shard_out = Vec::new();
                        let shard = self.scan_bucket_range(range, |_, _, record| {
                            if predicate(record) {
                                shard_out.push(*record);
                            }
                        });
                        (shard_out, shard)
                    })
                })
                .collect();
            for worker in workers {
                let (shard_out, shard) = worker.join().expect("bulk select worker panicked");
                out.extend(shard_out);
                receipt.absorb(&shard);
            }
        });
        receipt.records_affected = out.len() as u64;
        (out, receipt)
    }

    /// Applies `update` to the data field of every record whose key matches
    /// `pattern` — a massive in-place modification (e.g. aging counters,
    /// rewriting next-hops after a link change). Keys are never modified:
    /// that would move records between buckets and requires delete+insert.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width differs from the table's key width, or
    /// if `update` produces data wider than the layout's data field.
    pub fn update_matching<F>(&mut self, pattern: &SearchKey, mut update: F) -> BulkReceipt
    where
        F: FnMut(u64) -> u64,
    {
        let mut receipt = BulkReceipt {
            records_visited: 0,
            records_affected: 0,
            rows_accessed: 0,
        };
        for bucket in 0..self.logical_buckets() {
            receipt.rows_accessed += 1;
            let entries = self.bucket_entries(bucket);
            for (slot, record) in entries {
                receipt.records_visited += 1;
                if record.key.matches(pattern) {
                    let new_data = update(record.data);
                    if new_data != record.data {
                        self.rewrite_slot_data(bucket, slot, new_data);
                    }
                    receipt.records_affected += 1;
                }
            }
        }
        receipt
    }

    /// Parallel [`CaRamTable::update_matching`]: the scan (match + compute
    /// new data) runs across sharded workers, mirroring the hardware where
    /// evaluation happens in the per-slice match processors; the slot
    /// rewrites are then applied serially, like the single write port of
    /// the array. The result is identical to the serial update.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width differs from the table's key width, or
    /// if `update` produces data wider than the layout's data field.
    pub fn update_matching_parallel<F>(
        &mut self,
        pattern: &SearchKey,
        update: F,
        threads: usize,
    ) -> BulkReceipt
    where
        F: Fn(u64) -> u64 + Sync,
    {
        let parts = bucket_partitions(self.logical_buckets(), threads);
        if parts.len() <= 1 {
            return self.update_matching(pattern, &update);
        }
        let mut pending: Vec<(u64, u32, u64)> = Vec::new();
        let mut receipt = BulkReceipt::default();
        std::thread::scope(|scope| {
            let table = &*self;
            let workers: Vec<_> = parts
                .into_iter()
                .map(|range| {
                    let update = &update;
                    scope.spawn(move || {
                        let mut shard_pending = Vec::new();
                        let mut affected = 0u64;
                        let mut shard = table.scan_bucket_range(range, |bucket, slot, record| {
                            if record.key.matches(pattern) {
                                affected += 1;
                                let new_data = update(record.data);
                                if new_data != record.data {
                                    shard_pending.push((bucket, slot, new_data));
                                }
                            }
                        });
                        shard.records_affected = affected;
                        (shard_pending, shard)
                    })
                })
                .collect();
            for worker in workers {
                let (shard_pending, shard) = worker.join().expect("bulk update worker panicked");
                pending.extend(shard_pending);
                receipt.absorb(&shard);
            }
        });
        for (bucket, slot, new_data) in pending {
            self.rewrite_slot_data(bucket, slot, new_data);
        }
        receipt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::RangeSelect;
    use crate::key::TernaryKey;
    use crate::layout::RecordLayout;
    use crate::table::{CaRamTable, OverflowPolicy, TableConfig};

    fn table() -> CaRamTable {
        let layout = RecordLayout::new(16, false, 16);
        let mut config = TableConfig::single_slice(4, 4 * layout.slot_bits(), layout);
        config.overflow = OverflowPolicy::Probe { max_steps: 16 };
        let mut t = CaRamTable::new(config, Box::new(RangeSelect::new(0, 4))).unwrap();
        for i in 0..40u64 {
            let key = TernaryKey::binary(u128::from(i) | 0x100, 16);
            t.insert(Record::new(key, i * 10)).unwrap();
        }
        t
    }

    #[test]
    fn scan_visits_every_record_once() {
        let t = table();
        let mut seen = std::collections::HashSet::new();
        let receipt = t.for_each_record(|_, _, r| {
            assert!(seen.insert(r.key.value()), "duplicate visit");
        });
        assert_eq!(receipt.records_visited, 40);
        assert_eq!(seen.len(), 40);
        assert_eq!(receipt.rows_accessed, t.logical_buckets());
    }

    #[test]
    fn count_matching_with_mask() {
        let t = table();
        // Count records with low nibble == 3: keys 0x103, 0x113, ... but
        // only keys 0x100..0x128 exist -> 0x103, 0x113, 0x123 and 0x10B?
        // Mask: care bits = low 4 bits; everything else don't-care.
        let pattern = SearchKey::with_mask(0x3, !0xF & 0xFFFF, 16);
        let (count, receipt) = t.count_matching(&pattern);
        let brute = (0u128..40).filter(|i| (i | 0x100) & 0xF == 0x3).count() as u64;
        assert_eq!(count, brute);
        assert_eq!(receipt.records_affected, count);
        assert_eq!(receipt.rows_accessed, 16);
    }

    #[test]
    fn select_by_data_predicate() {
        let t = table();
        let (records, receipt) = t.select(|r| r.data >= 300);
        assert_eq!(records.len(), 10); // data = 300..390
        assert_eq!(receipt.records_affected, 10);
        assert!(records.iter().all(|r| r.data >= 300));
    }

    #[test]
    fn update_matching_rewrites_data_in_place() {
        let mut t = table();
        // Increment the data of all records (full-mask pattern).
        let everything = SearchKey::with_mask(0, 0xFFFF, 16);
        let receipt = t.update_matching(&everything, |d| d + 1);
        assert_eq!(receipt.records_affected, 40);
        // Verify through ordinary search.
        for i in 0..40u64 {
            let got = t.search(&SearchKey::new(u128::from(i) | 0x100, 16));
            assert_eq!(got.hit.unwrap().record.data, i * 10 + 1, "record {i}");
        }
        // Keys and placement untouched: record count stable.
        assert_eq!(t.record_count(), 40);
    }

    #[test]
    fn update_matching_is_selective() {
        let mut t = table();
        let low_nibble_zero = SearchKey::with_mask(0, !0xF & 0xFFFF, 16);
        let receipt = t.update_matching(&low_nibble_zero, |_| 9999);
        assert!(receipt.records_affected < 40);
        let (count, _) = t.count_matching(&low_nibble_zero);
        assert_eq!(count, receipt.records_affected);
        let (hits, _) = t.select(|r| r.data == 9999);
        assert_eq!(hits.len() as u64, receipt.records_affected);
    }

    #[test]
    fn parallel_scan_matches_serial_receipt_and_coverage() {
        let t = table();
        let serial = t.for_each_record(|_, _, _| {});
        for threads in [0, 1, 2, 3, 5] {
            let seen = std::sync::Mutex::new(std::collections::HashSet::new());
            let receipt = t.for_each_record_parallel(
                |_, _, r| {
                    assert!(
                        seen.lock().unwrap().insert(r.key.value()),
                        "duplicate visit"
                    );
                },
                threads,
            );
            assert_eq!(receipt, serial, "threads={threads}");
            assert_eq!(seen.lock().unwrap().len(), 40);
        }
    }

    #[test]
    fn parallel_count_matches_serial() {
        let t = table();
        let pattern = SearchKey::with_mask(0x3, !0xF & 0xFFFF, 16);
        let serial = t.count_matching(&pattern);
        for threads in [0, 2, 7] {
            assert_eq!(t.count_matching_parallel(&pattern, threads), serial);
        }
    }

    #[test]
    fn parallel_select_preserves_serial_order() {
        let t = table();
        let serial = t.select(|r| r.data % 30 == 0);
        for threads in [0, 2, 3] {
            let parallel = t.select_parallel(|r| r.data % 30 == 0, threads);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_update_matches_serial() {
        let pattern = SearchKey::with_mask(0, !0xF & 0xFFFF, 16);
        let mut serial_t = table();
        let serial = serial_t.update_matching(&pattern, |d| d * 2 + 1);
        for threads in [0, 2, 5] {
            let mut t = table();
            let receipt = t.update_matching_parallel(&pattern, |d| d * 2 + 1, threads);
            assert_eq!(receipt, serial, "threads={threads}");
            let (a, _) = t.select(|_| true);
            let (b, _) = serial_t.select(|_| true);
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn bulk_scan_skips_parallel_overflow_area() {
        let layout = RecordLayout::new(16, false, 8);
        let mut config = TableConfig::single_slice(2, layout.slot_bits(), layout);
        config.overflow = OverflowPolicy::ParallelArea { capacity: 8 };
        let mut t = CaRamTable::new(config, Box::new(RangeSelect::new(0, 2))).unwrap();
        for i in 0..6u128 {
            t.insert(Record::new(TernaryKey::binary(i << 4, 16), 0))
                .unwrap();
        }
        assert!(t.overflow_count() > 0);
        let receipt = t.for_each_record(|_, _, _| {});
        assert_eq!(
            receipt.records_visited + t.overflow_count() as u64,
            6,
            "scan covers the array; overflow lives outside it"
        );
    }
}
