//! Design-space exploration: the tool a CA-RAM architect would actually
//! use. Sweeps geometry (R, keys/row, slice count, arrangement) and storage
//! technology (embedded DRAM vs SRAM) for a workload, prices every point
//! with the Sec. 3.4 models, measures AMAL by building the table, and
//! prints the Pareto frontier over (area, power, effective latency).
//!
//! This operationalizes the paper's design discussion: "α poses an
//! important design trade-off ... area (i.e., cost) versus search latency
//! (i.e., performance)" (Sec. 2.1) and the slice-arrangement choices of
//! Sec. 3.2.
//!
//! Usage: `explore [--workload ip|ipv6] [--prefixes N]`

use ca_ram_bench::{bgp_config, rule, BenchError, Cli, Result};
use ca_ram_core::index::RangeSelect;
use ca_ram_core::key::TernaryKey;
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::probe::ProbePolicy;
use ca_ram_core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};
use ca_ram_hwmodel::{AreaModel, CaRamGeometry, CaRamTiming, CellKind, PowerModel};
use ca_ram_workloads::bgp::generate as gen_v4;
use ca_ram_workloads::ipv6::{generate as gen_v6, Ipv6Config};

#[derive(Debug, Clone)]
struct DesignCandidate {
    cell: CellKind,
    rows_log2: u32,
    keys_per_row: u32,
    horizontal: u32,
    alpha: f64,
    amal: f64,
    area_mm2: f64,
    power_mw: f64,
    latency_ns: f64,
    bandwidth_ms: f64,
}

fn evaluate(
    keys: &[(TernaryKey, u64)],
    key_bits: u32,
    hash_low: u32,
    cell: CellKind,
    rows_log2: u32,
    keys_per_row: u32,
    horizontal: u32,
) -> Option<DesignCandidate> {
    let layout = RecordLayout::new(key_bits, true, 0);
    let row_bits = keys_per_row * layout.slot_bits();
    let config = TableConfig {
        rows_log2,
        row_bits,
        layout,
        arrangement: Arrangement::Horizontal(horizontal),
        probe: ProbePolicy::Linear,
        overflow: OverflowPolicy::Probe {
            max_steps: 1 << rows_log2,
        },
    };
    let generator = RangeSelect::new(hash_low, rows_log2);
    let mut table = CaRamTable::new(config, Box::new(generator)).ok()?;
    #[allow(clippy::cast_precision_loss)]
    let alpha = keys.len() as f64 / table.capacity() as f64;
    if !(0.15..=0.95).contains(&alpha) {
        return None; // outside the sensible design band
    }
    for (key, _data) in keys {
        // Key-only layout, as in the paper's designs (C counts key bits).
        table.insert(Record::new(*key, 0)).ok()?;
    }
    let report = table.load_report();
    let amal = report.amal_uniform;

    let geometry = CaRamGeometry::new(horizontal, 1u64 << rows_log2, row_bits, cell, keys_per_row);
    let area = AreaModel::new()
        .caram_device_area(&geometry)
        .to_square_millimeters();
    let power = PowerModel::new();
    let timing = match cell {
        CellKind::Sram6T => CaRamTiming::sram_500mhz(),
        _ => CaRamTiming::dram_200mhz(),
    };
    let energy = power.caram_search_energy_parallel(&geometry, horizontal);
    let p = energy.total().at_rate(timing.clock());
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let latency = timing.search_latency(amal.ceil() as u32).value()
        - (amal.ceil() - amal) * timing.memory_latency().value();
    let bandwidth = timing.search_bandwidth(1, amal);
    Some(DesignCandidate {
        cell,
        rows_log2,
        keys_per_row,
        horizontal,
        alpha,
        amal,
        area_mm2: area.value(),
        power_mw: p.value(),
        latency_ns: latency,
        bandwidth_ms: bandwidth.value(),
    })
}

fn dominates(a: &DesignCandidate, b: &DesignCandidate) -> bool {
    a.area_mm2 <= b.area_mm2
        && a.power_mw <= b.power_mw
        && a.latency_ns <= b.latency_ns
        && (a.area_mm2 < b.area_mm2 || a.power_mw < b.power_mw || a.latency_ns < b.latency_ns)
}

fn main() -> Result<()> {
    let cli = Cli::from_env();
    let workload = cli.value("workload").unwrap_or("ip").to_string();
    let (keys, key_bits, hash_low): (Vec<(TernaryKey, u64)>, u32, u32) = match workload.as_str() {
        "ip" => {
            let n: usize = cli.parse("prefixes", 186_760)?;
            let table = gen_v4(&bgp_config(n, None));
            (
                table
                    .iter()
                    .map(|p| (p.to_ternary_key(), u64::from(p.len())))
                    .collect(),
                32,
                16,
            )
        }
        "ipv6" => {
            let n: usize = cli.parse("prefixes", 46_690)?;
            let table = gen_v6(&Ipv6Config {
                prefixes: n,
                ..Ipv6Config::default()
            });
            (
                table
                    .iter()
                    .map(|p| (p.to_ternary_key(), u64::from(p.len())))
                    .collect(),
                128,
                96,
            )
        }
        other => {
            return Err(BenchError::Arg(format!(
                "--workload must be ip or ipv6, got {other}"
            )))
        }
    };
    println!(
        "Design-space exploration: {} workload, {} records\n",
        workload,
        keys.len()
    );

    let mut candidates = Vec::new();
    for cell in [CellKind::EmbeddedDram, CellKind::Sram6T] {
        for rows_log2 in [10u32, 11, 12, 13] {
            for keys_per_row in [32u32, 64, 96] {
                for horizontal in [1u32, 2, 4, 6, 8] {
                    if keys_per_row > 128 {
                        continue;
                    }
                    if let Some(c) = evaluate(
                        &keys,
                        key_bits,
                        hash_low,
                        cell,
                        rows_log2,
                        keys_per_row,
                        horizontal,
                    ) {
                        candidates.push(c);
                    }
                }
            }
        }
    }
    candidates.sort_by(|a, b| a.area_mm2.total_cmp(&b.area_mm2));

    println!(
        "{:<6} {:>3} {:>5} {:>3} {:>6} {:>7} {:>10} {:>10} {:>9} {:>10}",
        "cell", "R", "keys", "h", "alpha", "AMALu", "area(mm2)", "power(mW)", "lat(ns)", "BW(Ms/s)"
    );
    rule(84);
    let pareto: Vec<bool> = candidates
        .iter()
        .map(|c| !candidates.iter().any(|o| dominates(o, c)))
        .collect();
    for (c, &on_frontier) in candidates.iter().zip(&pareto) {
        let cell = match c.cell {
            CellKind::Sram6T => "SRAM",
            _ => "eDRAM",
        };
        println!(
            "{:<6} {:>3} {:>5} {:>3} {:>6.2} {:>7.3} {:>10.2} {:>10.1} {:>9.1} {:>10.0}{}",
            cell,
            c.rows_log2,
            c.keys_per_row,
            c.horizontal,
            c.alpha,
            c.amal,
            c.area_mm2,
            c.power_mw,
            c.latency_ns,
            c.bandwidth_ms,
            if on_frontier { "  *" } else { "" }
        );
    }
    rule(84);
    println!(
        "{} candidates in the design band; * marks the (area, power, latency) Pareto frontier.",
        candidates.len()
    );
    println!("SRAM buys latency and per-search energy; eDRAM buys density — the Sec. 3.1 trade.");
    Ok(())
}
