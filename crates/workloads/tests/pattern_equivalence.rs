//! Pins the pattern-compiler refactor of the existing workloads:
//! the stored keys each workload now derives through
//! [`PatternSpec::lower`] must be **byte-identical** to the hand-derived
//! host-mask encodings the generators used before the compiler existed,
//! and the compiled tables must agree with the [`ReferenceModel`] on
//! member probes.
//!
//! The legacy formulas are inlined here on purpose — they are the
//! contract being pinned, so they must not be re-derived from the code
//! under test.
//!
//! [`PatternSpec::lower`]: ca_ram_core::pattern::PatternSpec::lower
//! [`ReferenceModel`]: ca_ram_core::oracle::ReferenceModel

use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::oracle::ReferenceModel;
use ca_ram_core::pattern::{compile, GeometryHint, Pattern};
use ca_ram_workloads::packet::{classifier_spec, ClassifierRule, PortMatch};
use ca_ram_workloads::{bgp, ipv6, prefix, trigram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Legacy IPv4 encoding: value in the low 32 bits, the `32 - len` host
/// bits don't-care.
fn legacy_ipv4_key(addr: u32, len: u8) -> TernaryKey {
    let host = ((1u64 << (32 - u32::from(len))) - 1) as u128;
    TernaryKey::ternary(u128::from(addr), host, 32)
}

/// Legacy IPv6 encoding: 128 ternary symbols, host bits don't-care.
fn legacy_ipv6_key(addr: u128, len: u8) -> TernaryKey {
    let host = if len == 0 {
        u128::MAX
    } else {
        u128::MAX >> len
    };
    TernaryKey::ternary(addr, host, 128)
}

#[test]
fn ipv4_prefix_keys_are_byte_identical_to_legacy_encoding() {
    let table = bgp::generate(&bgp::BgpConfig::scaled(4_000));
    assert!(!table.is_empty());
    for p in &table {
        assert_eq!(
            p.to_ternary_key(),
            legacy_ipv4_key(p.addr(), p.len()),
            "compiled lowering changed the stored bits of {p}"
        );
    }
}

#[test]
fn ipv6_prefix_keys_are_byte_identical_to_legacy_encoding() {
    let table = ipv6::generate(&ipv6::Ipv6Config {
        prefixes: 2_000,
        allocations: 200,
        seed: 0x6666,
    });
    assert!(!table.is_empty());
    for p in &table {
        assert_eq!(
            p.to_ternary_key(),
            legacy_ipv6_key(p.addr(), p.len()),
            "compiled lowering changed the stored bits of /{} prefix",
            p.len()
        );
    }
}

#[test]
fn trigram_keys_are_byte_identical_to_legacy_encoding() {
    let entries = trigram::generate(&trigram::TrigramConfig::scaled(2_000));
    assert!(!entries.is_empty());
    for s in &entries {
        assert_eq!(
            trigram::text_ternary_key(s),
            TernaryKey::binary(trigram::pack_text_key(s), 128),
            "compiled lowering changed the stored bits of {s:?}"
        );
    }
}

/// A compiled-LPM table loaded with a scaled BGP snapshot answers member
/// probes exactly as the reference model does.
#[test]
fn compiled_ipv4_lpm_table_agrees_with_reference_model() {
    let prefixes = bgp::generate(&bgp::BgpConfig::scaled(500));
    let spec = prefix::lpm_spec();
    let plan = compile(
        &spec,
        &GeometryHint {
            rows_log2: 8,
            slots_per_row: 16,
            data_bits: 32,
        },
    )
    .expect("LPM spec compiles");
    let mut table = plan.build_table().expect("geometry is valid");
    let mut model = ReferenceModel::new(32);
    for (i, p) in prefixes.iter().enumerate() {
        let entries = plan
            .lower_entry(&p.to_pattern(), i as u64)
            .expect("a prefix lowers");
        let mut ok = true;
        for e in &entries {
            if table.insert_sorted(*e).is_err() {
                ok = false;
                break;
            }
        }
        // A capacity miss just skips the prefix in both stores; partial
        // multi-entry loads cannot happen (a prefix lowers to one key).
        assert_eq!(entries.len(), 1);
        if ok {
            model.insert_compiled(&entries);
        }
    }
    let mut rng = SmallRng::seed_from_u64(0x1234);
    for p in &prefixes {
        let key = SearchKey::new(u128::from(p.random_member(&mut rng)), 32);
        let expected = model.expected(&key);
        let got = table.search(&key).hit.map(|h| h.record.data);
        assert!(
            expected.admits(got),
            "member of {p} got {got:?}, model accepts {:?}",
            expected.accepted
        );
    }
    for _ in 0..200 {
        let key = SearchKey::new(u128::from(rng.gen::<u32>()), 32);
        let expected = model.expected(&key);
        let got = table.search(&key).hit.map(|h| h.record.data);
        assert!(expected.admits(got), "random probe diverged from model");
    }
}

/// The checked-in `range_expansion_one_value_128b.ops` fixture stores the
/// hand-computed cover of sport ∈ [3, 9]; the compiler must lower the
/// same rule to exactly those three entries, in the same order.
#[test]
fn fixture_entries_match_compiled_lowering_of_the_rule() {
    let rule = ClassifierRule {
        src: (0x0A00_0000, 16),
        dst: (0xC0A8_0101, 32),
        sport: PortMatch::Range(3, 9),
        dport: PortMatch::Exact(80),
        proto: Some(6),
        action: 5,
    };
    let entries = classifier_spec()
        .lower(&rule.to_pattern())
        .expect("the fixture rule lowers");
    let expected = [
        // {3}: all 16 sport bits cared.
        (
            0x0a000000_c0a80101_0003_0050_06_000000_u128,
            0x0000ffff_00000000_0000_0000_00_000000_u128,
        ),
        // 4..7 as 4/14: low 2 sport bits don't-care.
        (
            0x0a000000_c0a80101_0004_0050_06_000000_u128,
            0x0000ffff_00000000_0003_0000_00_000000_u128,
        ),
        // 8..9 as 8/15: low sport bit don't-care.
        (
            0x0a000000_c0a80101_0008_0050_06_000000_u128,
            0x0000ffff_00000000_0001_0000_00_000000_u128,
        ),
    ];
    assert_eq!(entries.len(), expected.len());
    for (e, &(value, dc)) in entries.iter().zip(&expected) {
        assert_eq!(*e, TernaryKey::ternary(value, dc, 128));
    }
}

/// Prefix patterns and exact patterns lower to single entries whose
/// care structure matches the declaration — a guard against the compiler
/// silently changing priority (care count drives LPM ordering).
#[test]
fn lowered_care_counts_match_declared_prefix_lengths() {
    let spec = prefix::lpm_spec();
    for len in 0..=32u32 {
        let keys = spec
            .lower(&Pattern::Prefix {
                value: 0xC0A8_0000 & if len == 0 { 0 } else { u128::MAX << (32 - len) },
                len,
            })
            .expect("prefix lowers");
        assert_eq!(keys.len(), 1);
        assert_eq!(
            keys[0].care_count(),
            len,
            "care count must equal prefix length"
        );
    }
}
