//! Area model (Sec. 3.4 "Area" and Figures 6(a) and 8).
//!
//! CA-RAM decouples the dense memory array from the match logic, so its area
//! is the RAM array area plus a small match-processor overhead — the paper
//! derives a ~7% overhead by scaling the Table 1 prototype to 130 nm and
//! amortizing it over 16 slices of 64 K cells each. CAM/TCAM area is simply
//! cells × published cell size.

use crate::cells::{CellKind, CellLibrary};
use crate::geometry::{CaRamGeometry, CamGeometry};
use crate::units::SquareMicrons;

/// Fractional area overhead of the match processors relative to the memory
/// array, derived from the prototype in Sec. 3.3 scaled to 130 nm (Sec. 3.4).
pub const MATCH_PROCESSOR_OVERHEAD: f64 = 0.07;

/// The area model: prices device geometries using published cell datapoints.
#[derive(Debug, Clone, Default)]
pub struct AreaModel {
    library: CellLibrary,
    mp_overhead: f64,
}

impl AreaModel {
    /// Model using the standard 130 nm cell library and the paper's 7%
    /// match-processor overhead.
    #[must_use]
    pub fn new() -> Self {
        Self {
            library: CellLibrary::standard(),
            mp_overhead: MATCH_PROCESSOR_OVERHEAD,
        }
    }

    /// Model with a custom library and overhead (for sensitivity studies).
    ///
    /// # Panics
    ///
    /// Panics if `mp_overhead` is negative or not finite.
    #[must_use]
    pub fn with_library(library: CellLibrary, mp_overhead: f64) -> Self {
        assert!(
            mp_overhead.is_finite() && mp_overhead >= 0.0,
            "overhead must be finite and non-negative"
        );
        Self {
            library,
            mp_overhead,
        }
    }

    /// The cell library in use.
    #[must_use]
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// Effective area of one *stored symbol* in a CA-RAM built from `storage`
    /// cells, including the amortized match-processor overhead.
    ///
    /// A binary symbol costs one RAM bit; a ternary symbol (one of {0, 1, X})
    /// costs two RAM bits (Sec. 3.1). This is the "DRAM-based ternary CA-RAM"
    /// bar of Figure 6(a).
    #[must_use]
    pub fn caram_cell_area(&self, storage: CellKind, ternary: bool) -> SquareMicrons {
        let bits_per_symbol = if ternary { 2.0 } else { 1.0 };
        self.library.get(storage).area() * bits_per_symbol * (1.0 + self.mp_overhead)
    }

    /// Published area of one CAM/TCAM cell (one symbol).
    #[must_use]
    pub fn cam_cell_area(&self, cell: CellKind) -> SquareMicrons {
        self.library.get(cell).area()
    }

    /// Total area of a CA-RAM device: array cells plus match-processor
    /// overhead. Empty slots still cost area — the load factor α trades this
    /// area against lookup latency (Sec. 2.1, Sec. 4.3).
    #[must_use]
    pub fn caram_device_area(&self, geometry: &CaRamGeometry) -> SquareMicrons {
        let cell = self.library.get(geometry.storage).area();
        #[allow(clippy::cast_precision_loss)]
        let bits = geometry.total_bits() as f64;
        cell * bits * (1.0 + self.mp_overhead)
    }

    /// Total area of a CAM/TCAM device.
    #[must_use]
    pub fn cam_device_area(&self, geometry: &CamGeometry) -> SquareMicrons {
        #[allow(clippy::cast_precision_loss)]
        let cells = geometry.total_cells() as f64;
        self.library.get(geometry.cell).area() * cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6a_cell_size_ratios() {
        // Fig. 6(a): CA-RAM ternary cell is >12x smaller than the 16T
        // SRAM-based TCAM cell and ~4.8x smaller than the 6T dynamic TCAM.
        let m = AreaModel::new();
        let caram = m.caram_cell_area(CellKind::EmbeddedDram, true);
        let t16 = m.cam_cell_area(CellKind::TcamSram16T);
        let t6 = m.cam_cell_area(CellKind::TcamDynamic6T);
        assert!(t16.ratio_to(caram) > 12.0, "got {}", t16.ratio_to(caram));
        let r6 = t6.ratio_to(caram);
        assert!((4.5..5.1).contains(&r6), "got {r6}");
    }

    #[test]
    fn binary_caram_cell_is_half_the_ternary_cell() {
        let m = AreaModel::new();
        let bin = m.caram_cell_area(CellKind::EmbeddedDram, false);
        let ter = m.caram_cell_area(CellKind::EmbeddedDram, true);
        assert!((ter.ratio_to(bin) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn device_area_scales_with_bits() {
        let m = AreaModel::new();
        let small = CaRamGeometry::new(1, 1024, 2048, CellKind::EmbeddedDram, 32);
        let big = CaRamGeometry::new(2, 1024, 2048, CellKind::EmbeddedDram, 32);
        let a_small = m.caram_device_area(&small);
        let a_big = m.caram_device_area(&big);
        assert!((a_big.ratio_to(a_small) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_applied_to_caram_only() {
        let m = AreaModel::new();
        let g = CaRamGeometry::new(1, 1, 1, CellKind::EmbeddedDram, 1);
        let raw = m.library().get(CellKind::EmbeddedDram).area();
        let priced = m.caram_device_area(&g);
        assert!((priced.ratio_to(raw) - 1.07).abs() < 1e-9);

        let cam = CamGeometry::new(1, 1, CellKind::TcamDynamic6T);
        let cam_raw = m.library().get(CellKind::TcamDynamic6T).area();
        assert!((m.cam_device_area(&cam).ratio_to(cam_raw) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn custom_overhead() {
        let m = AreaModel::with_library(CellLibrary::standard(), 0.0);
        let bin = m.caram_cell_area(CellKind::EmbeddedDram, false);
        assert!((bin.value() - 0.35).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_overhead_rejected() {
        let _ = AreaModel::with_library(CellLibrary::standard(), -0.1);
    }
}
