//! # ca-ram-softsearch
//!
//! Software search baselines over a simulated cache hierarchy, supporting
//! the CA-RAM paper's motivation (Sec. 1–2, 4.1): software lookups cost
//! multiple main-memory accesses per search — "at least 4 to 6 memory
//! accesses for forwarding one packet" — because large search structures
//! defeat the caches and traversals chase pointers.
//!
//! * [`cache`] — a two-level LRU set-associative cache simulator;
//! * [`structures`] — chained hash, open addressing, sorted array, and BST,
//!   all laid out at explicit simulated addresses;
//! * [`trie`] — a multibit trie, the software LPM structure behind the
//!   paper's "4 to 6 memory accesses" figure;
//! * [`harness`] — workload runner producing per-lookup cost reports;
//! * [`engine`] — bridge into the unified `ca-ram-core` [`SearchEngine`]
//!   interface, so software baselines plug into the same benches as CA-RAM
//!   and the CAM devices.
//!
//! [`SearchEngine`]: ca_ram_core::engine::SearchEngine
//!
//! # Example
//!
//! ```
//! use ca_ram_softsearch::cache::Hierarchy;
//! use ca_ram_softsearch::harness::measure;
//! use ca_ram_softsearch::structures::{Arena, ChainedHash};
//!
//! let pairs: Vec<(u64, u64)> = (0..1_000u64).map(|i| (i * 2654435761, i)).collect();
//! let keys: Vec<u64> = pairs.iter().map(|p| p.0).collect();
//! let mut arena = Arena::new(0);
//! let table = ChainedHash::build(&pairs, 8, &mut arena);
//! let trace: Vec<usize> = (0..keys.len()).collect();
//! let mut mem = Hierarchy::typical();
//! let report = measure(&table, &keys, &trace, &mut mem);
//! assert!(report.avg_loads >= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::module_name_repetitions)]

pub mod cache;
pub mod engine;
pub mod harness;
pub mod structures;
pub mod trie;

pub use cache::{AccessStats, Cache, CacheConfig, Hierarchy, HitLevel};
pub use engine::{SoftEngine, SOFT_KEY_BITS};
pub use harness::{measure, measure_batched, SearchCostReport};
pub use structures::{
    Arena, BinarySearchTree, ChainedHash, Lookup, OpenAddressing, SoftIndex, SortedArray,
};
pub use trie::MultibitTrie;
