//! # ca-ram-core
//!
//! A bit-accurate functional simulator of **CA-RAM** (Content Addressable
//! Random Access Memory), the search-acceleration memory substrate of
//! Cho, Martin, Xu, Hammoud & Melhem, *ISPASS 2007*.
//!
//! CA-RAM is hashing in hardware: a dense RAM array whose rows are hash
//! buckets, an *index generator* that maps a search key to a row, and a bank
//! of *match processors* that compare every candidate key in the fetched row
//! against the search key in parallel. One memory access plus one parallel
//! match resolves most lookups, at RAM (not CAM) area and power.
//!
//! ## Layering
//!
//! * [`bits`], [`key`], [`layout`] — bit-packing, ternary keys, record slots;
//! * [`mod@array`], [`matchproc`], [`mod@slice`] — one physical slice (Fig. 3);
//! * [`index`], [`probe`] — hash functions and overflow probing;
//! * [`table`] — a logical search table over arranged slices (insert /
//!   search / delete, the three CAM-mode operations, plus sorted online
//!   updates);
//! * [`bulk`] — massive data evaluation and modification over the whole
//!   array (the decoupled-match-logic extension of Sec. 3.1);
//! * [`subsystem`], [`controller`] — multi-database subsystem with
//!   memory-mapped ports and a cycle-level queue model (Fig. 5);
//! * [`stats`] — load factor, overflow, and AMAL metrics (Tables 2–3);
//! * [`telemetry`] — stage-level tracing, lock-free histograms, and
//!   exportable per-slice / per-database / per-engine metrics;
//! * [`oracle`] — model-based differential testing: a naive reference
//!   model, a seeded adversarial op-stream generator, and a lockstep
//!   replay harness with minimized divergence repros;
//! * [`pattern`] — the pattern compiler: high-level match patterns
//!   (exact / prefix / range / masked multi-field / nearest-match)
//!   lowered onto concrete table configurations, entries, and
//!   multi-probe query plans;
//! * [`storage`] — durability: pluggable heap/mmap storage backends
//!   under the bit-packed array, a CRC-framed write-ahead log with
//!   group commit and checkpointing, and crash recovery verified by
//!   cutting the log at every byte and diffing against the oracle.
//!
//! ## Example
//!
//! ```
//! use ca_ram_core::index::RangeSelect;
//! use ca_ram_core::key::{SearchKey, TernaryKey};
//! use ca_ram_core::layout::{Record, RecordLayout};
//! use ca_ram_core::table::{CaRamTable, TableConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 16 buckets of four 16-bit keys + 8-bit data each.
//! let layout = RecordLayout::new(16, false, 8);
//! let config = TableConfig::single_slice(4, 4 * layout.slot_bits(), layout);
//! let mut table = CaRamTable::new(config, Box::new(RangeSelect::new(0, 4)))?;
//!
//! table.insert(Record::new(TernaryKey::binary(0xBEEF, 16), 42))?;
//! let outcome = table.search(&SearchKey::new(0xBEEF, 16));
//! assert_eq!(outcome.hit.map(|h| h.record.data), Some(42));
//! assert_eq!(outcome.memory_accesses, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::module_name_repetitions)]

pub mod alloc;
pub mod array;
pub mod bits;
pub mod bulk;
pub mod config_regs;
pub mod controller;
pub mod engine;
pub mod error;
pub mod index;
pub mod kernel;
pub mod key;
pub mod layout;
pub mod matchproc;
pub mod memtest;
pub mod oracle;
pub mod pattern;
pub mod probe;
pub mod slice;
pub mod stats;
pub mod storage;
pub mod subsystem;
pub mod table;
pub mod telemetry;

pub use alloc::{AllocationId, SlicePool, SliceRoles};
pub use bulk::BulkReceipt;
pub use config_regs::{ControlRegister, ReconfigurableSlice};
pub use controller::{
    simulate, simulate_latency, simulate_latency_with_sink, simulate_with_sink, LatencyReport,
    QueueModelConfig, ThroughputReport,
};
pub use engine::{EngineHit, EngineOutcome, EngineReport, SearchEngine};
pub use error::{CaRamError, Result};
pub use index::{BitSelect, DjbHash, IndexGenerator, RangeSelect, XorFold};
pub use kernel::Kernel;
pub use key::{SearchKey, TernaryKey, MAX_KEY_BITS};
pub use layout::{Record, RecordLayout};
pub use memtest::{MemTestReport, MemoryFault, RamAccess};
pub use oracle::{DivergenceReport, EngineCase, Op, OpStreamGen, ReferenceModel};
pub use pattern::{
    compile, CompiledPlan, FieldPattern, FieldSpec, GeometryHint, IndexChoice, MatchMode, Pattern,
    PatternError, PatternSpec, QueryPlan,
};
pub use probe::ProbePolicy;
pub use slice::CaRamSlice;
pub use stats::{AtomicSearchStats, LoadReport, OccupancyHistogram, PlacementStats, SearchStats};
pub use subsystem::{ActivityCounters, CaRamSubsystem, DatabaseEngine, DatabaseId};
pub use table::{
    Arrangement, CaRamTable, Hit, InsertOutcome, OverflowPolicy, Placement, SearchOutcome,
    TableConfig,
};
pub use telemetry::{
    AtomicHistogram, Histogram, HistogramSink, MetricsRegistry, NullSink, ProbeSummary, ScopeKind,
    ScopeMetrics, Stage, TelemetrySink, TelemetrySnapshot, TraceBuffer, TraceEvent,
};
