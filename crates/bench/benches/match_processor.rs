//! Criterion bench: the match-processor pipeline over one fetched bucket.

use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::matchproc::MatchProcessorBank;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn full_row(layout: &RecordLayout, slots: u32) -> (Vec<u64>, u128) {
    let bits = layout.slot_bits() * slots;
    let mut row = vec![0u64; (bits as usize).div_ceil(64)];
    let mut valid = 0u128;
    for slot in 0..slots {
        // Distinct keys that fit any width >= 16 bits.
        let value = (u128::from(slot) << 8 | 0xA5) & ((1u128 << layout.key_bits()) - 1);
        let rec = Record::new(TernaryKey::binary(value, layout.key_bits()), 0);
        layout.encode_slot(&mut row, slot, &rec);
        valid |= 1 << slot;
    }
    (row, valid)
}

fn bench_match_row(c: &mut Criterion) {
    // The trigram configuration: 96 candidates of 128 bits (C = 12,288).
    let layout = RecordLayout::new(128, false, 0);
    let (row, valid) = full_row(&layout, 96);
    let bank = MatchProcessorBank::new(layout);
    let hit = SearchKey::new(95u128 << 8 | 0xA5, 128);
    let miss = SearchKey::new(0xFFFF_FFFF, 128);
    c.bench_function("match_row_96x128_hit_last", |b| {
        b.iter(|| black_box(bank.match_row(&row, valid, 96, &hit)));
    });
    c.bench_function("match_row_96x128_miss", |b| {
        b.iter(|| black_box(bank.match_row(&row, valid, 96, &miss)));
    });

    // The IP configuration: 64 ternary candidates of 32 bits (C = 4,096).
    let layout = RecordLayout::new(32, true, 0);
    let (row, valid) = full_row(&layout, 64);
    let bank = MatchProcessorBank::new(layout);
    let key = SearchKey::new(0xA5, 32);
    c.bench_function("match_row_64x32t", |b| {
        b.iter(|| black_box(bank.match_row(&row, valid, 64, &key)));
    });
}

criterion_group!(benches, bench_match_row);
criterion_main!(benches);
