//! Runtime-dispatched lane-compare kernels for the match processors.
//!
//! The paper's match step compares every candidate key of a fetched row
//! *in parallel* (Sec. 3.1). On the simulator side the analogue is SIMD:
//! a bucket whose slots are word-aligned is compared 128 or 256 stored
//! bits at a time with explicit `core::arch` intrinsics, selected at
//! runtime from what the host CPU supports. A chunked-`u64` portable
//! loop remains compiled in unconditionally — it is the source of truth
//! the oracle replays against, the fallback for hosts without SIMD, and
//! the `--no-default-features` build's only kernel.
//!
//! Dispatch rules (see DESIGN.md §15):
//!
//! 1. compile-time: the `simd` cargo feature gates every intrinsic path;
//!    without it only [`Kernel::Scalar`] exists;
//! 2. runtime: [`detect`] probes the CPU once (AVX2 → 256-bit lanes,
//!    SSE4.1 → 128-bit lanes on x86-64; NEON is baseline on aarch64);
//! 3. override: [`force_kernel`] (tests, differential fuzzing) and the
//!    `CA_RAM_KERNEL` environment variable (`scalar` / `128` / `256`)
//!    select a kernel explicitly, clamped to what the host supports;
//! 4. capture: a [`MatchProcessorBank`](crate::matchproc::MatchProcessorBank)
//!    samples [`active_kernel`] at construction and keeps it for life, so
//!    a table built under a forced kernel stays on that kernel even after
//!    the force is released — scalar and SIMD engines can coexist in one
//!    process for lockstep comparison.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A compare-kernel flavour: how many stored bits one compare step covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Kernel {
    /// Portable chunked-`u64` loop; always available, oracle ground truth.
    Scalar,
    /// 128-bit lanes (SSE4.1 on x86-64, NEON on aarch64).
    Lanes128,
    /// 256-bit lanes (AVX2 on x86-64).
    Lanes256,
}

impl Kernel {
    /// Human-readable name, as printed by benches and accepted by
    /// `CA_RAM_KERNEL`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Lanes128 => "128",
            Kernel::Lanes256 => "256",
        }
    }

    fn rank(self) -> u8 {
        match self {
            Kernel::Scalar => 1,
            Kernel::Lanes128 => 2,
            Kernel::Lanes256 => 3,
        }
    }

    fn from_rank(rank: u8) -> Option<Kernel> {
        match rank {
            1 => Some(Kernel::Scalar),
            2 => Some(Kernel::Lanes128),
            3 => Some(Kernel::Lanes256),
            _ => None,
        }
    }
}

/// Process-wide kernel override: 0 = unset, otherwise `Kernel::rank`.
static FORCE: AtomicU8 = AtomicU8::new(0);

/// Probes the host CPU and returns the widest kernel it supports.
///
/// Without the `simd` cargo feature this is always [`Kernel::Scalar`].
#[must_use]
pub fn detect() -> Kernel {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Kernel::Lanes256;
        }
        if std::arch::is_x86_feature_detected!("sse4.1") {
            return Kernel::Lanes128;
        }
    }
    // NEON is architecturally guaranteed on aarch64.
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    {
        return Kernel::Lanes128;
    }
    #[allow(unreachable_code)]
    Kernel::Scalar
}

/// Every kernel the host can actually run, narrowest first.
#[must_use]
pub fn available() -> Vec<Kernel> {
    let widest = detect();
    [Kernel::Scalar, Kernel::Lanes128, Kernel::Lanes256]
        .into_iter()
        .filter(|k| k.rank() <= widest.rank())
        .collect()
}

fn env_kernel() -> Option<Kernel> {
    static ENV: OnceLock<Option<Kernel>> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("CA_RAM_KERNEL") {
        Ok(v) => match v.as_str() {
            "scalar" => Some(Kernel::Scalar),
            "128" => Some(Kernel::Lanes128),
            "256" => Some(Kernel::Lanes256),
            other => {
                eprintln!(
                    "CA_RAM_KERNEL={other:?} not recognized \
                     (expected scalar, 128, or 256); using auto-detection"
                );
                None
            }
        },
        Err(_) => None,
    })
}

/// Clamps a requested kernel to what the host supports: asking for wider
/// lanes than the CPU has falls back to the widest available, never to a
/// kernel that would fault.
fn clamp(requested: Kernel) -> Kernel {
    requested.min(detect())
}

/// The kernel new match-processor banks will capture: the forced kernel
/// if one is set, else the `CA_RAM_KERNEL` environment override, else
/// [`detect`] — always clamped to what the host supports.
#[must_use]
pub fn active_kernel() -> Kernel {
    if let Some(k) = Kernel::from_rank(FORCE.load(Ordering::Relaxed)) {
        return clamp(k);
    }
    if let Some(k) = env_kernel() {
        return clamp(k);
    }
    detect()
}

/// Sets (or with `None` clears) the process-wide kernel override.
///
/// Affects only banks constructed afterwards; existing banks keep the
/// kernel they captured. Prefer [`with_forced`] in tests so the override
/// cannot leak.
pub fn force_kernel(kernel: Option<Kernel>) {
    FORCE.store(kernel.map_or(0, Kernel::rank), Ordering::Relaxed);
}

/// Runs `f` with the kernel override set to `kernel`, restoring the
/// previous override afterwards (also on panic). Tables built inside `f`
/// keep the forced kernel for their whole life — this is how the
/// differential harness builds a scalar twin of a SIMD engine.
pub fn with_forced<T>(kernel: Kernel, f: impl FnOnce() -> T) -> T {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCE.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(FORCE.swap(kernel.rank(), Ordering::Relaxed));
    f()
}

/// A resolved word-1 compare routine (the signature of [`word1_bits`]
/// minus the kernel selector).
pub(crate) type Word1Fn = fn(&[u64], u64, u64, u32, bool) -> u64;

/// A resolved word-2 compare routine (the signature of
/// [`word2_binary_bits`] minus the kernel selector).
pub(crate) type Word2Fn = fn(&[u64], u64, u64, u64, u64) -> u64;

/// Resolves `kernel` to a direct word-1 routine. The CPU feature test
/// runs once, here, when the pointer is handed out — features cannot
/// disappear afterwards — so per-row calls through the pointer skip both
/// the dispatch match and the feature re-check of [`word1_bits`]. Banks
/// capture the pointer at construction (see
/// [`crate::matchproc::MatchProcessorBank::with_kernel`]).
pub(crate) fn word1_fn(kernel: Kernel) -> Word1Fn {
    match kernel {
        Kernel::Scalar => word1_scalar,
        Kernel::Lanes128 => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if std::arch::is_x86_feature_detected!("sse4.1") {
                // SAFETY: SSE4.1 presence was just verified.
                return |w, sv, sc, kb, t| unsafe { x86::word1_sse41(w, sv, sc, kb, t) };
            }
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            // SAFETY: NEON is baseline on aarch64.
            return |w, sv, sc, kb, t| unsafe { arm::word1_neon(w, sv, sc, kb, t) };
            #[allow(unreachable_code)]
            word1_scalar
        }
        Kernel::Lanes256 => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 presence was just verified.
                return |w, sv, sc, kb, t| unsafe { x86::word1_avx2(w, sv, sc, kb, t) };
            }
            word1_fn(Kernel::Lanes128)
        }
    }
}

/// A resolved *fused* word-1 routine: compare-and-priority-encode in one
/// pass, returning the lowest occupied matching slot. This is the lane
/// analogue of the hardware's fused match-line/priority-encoder stage:
/// the SIMD variants broadcast the search operands once, then walk the
/// row one vector at a time, masking each vector's match bits with the
/// occupancy bitmap and returning as soon as any survive — an early exit
/// at vector granularity with none of the per-group re-setup the bitmap
/// routines pay.
pub(crate) type Word1FirstFn = fn(&[u64], u64, u64, u64, u32, bool) -> Option<u32>;

/// Resolves `kernel` to a fused word-1 first-hit routine (same dispatch
/// rules as [`word1_fn`]). The `Scalar` resolution deliberately keeps the
/// 16-slot-group shape of the portable bitmap path — the scalar kernel is
/// the reference implementation, not a tuning target.
pub(crate) fn word1_first_fn(kernel: Kernel) -> Word1FirstFn {
    match kernel {
        Kernel::Scalar => word1_first_scalar,
        Kernel::Lanes128 => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if std::arch::is_x86_feature_detected!("sse4.1") {
                // SAFETY: SSE4.1 presence was just verified.
                return |w, occ, sv, sc, kb, t| unsafe {
                    x86::word1_first_sse41(w, occ, sv, sc, kb, t)
                };
            }
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            // SAFETY: NEON is baseline on aarch64.
            return |w, occ, sv, sc, kb, t| unsafe { arm::word1_first_neon(w, occ, sv, sc, kb, t) };
            #[allow(unreachable_code)]
            word1_first_scalar
        }
        Kernel::Lanes256 => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 presence was just verified.
                return |w, occ, sv, sc, kb, t| unsafe {
                    x86::word1_first_avx2(w, occ, sv, sc, kb, t)
                };
            }
            word1_first_fn(Kernel::Lanes128)
        }
    }
}

/// Portable fused first-hit: the same 16-slot groups the scalar
/// `first_match` path has always walked, with the occupancy mask applied
/// per group and an early exit on the first surviving match bit.
fn word1_first_scalar(
    words: &[u64],
    occ: u64,
    sv: u64,
    sc: u64,
    key_bits: u32,
    ternary: bool,
) -> Option<u32> {
    let mut base = 0usize;
    while base < words.len() {
        let count = (words.len() - base).min(16);
        // Branchless sub-64-bit mask: count is in 1..=64.
        let group_occ = (occ >> base) & (u64::MAX >> (64 - count));
        if group_occ != 0 {
            let bits =
                word1_scalar(&words[base..base + count], sv, sc, key_bits, ternary) & group_occ;
            if bits != 0 {
                #[allow(clippy::cast_possible_truncation)]
                return Some(base as u32 + bits.trailing_zeros());
            }
        }
        base += count;
    }
    None
}

/// Word-2 twin of [`word1_fn`].
pub(crate) fn word2_fn(kernel: Kernel) -> Word2Fn {
    match kernel {
        Kernel::Scalar => word2_scalar,
        Kernel::Lanes128 => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if std::arch::is_x86_feature_detected!("sse4.1") {
                // SAFETY: SSE4.1 presence was just verified.
                return |w, lo, hi, cl, ch| unsafe { x86::word2_sse41(w, lo, hi, cl, ch) };
            }
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            // SAFETY: NEON is baseline on aarch64.
            return |w, lo, hi, cl, ch| unsafe { arm::word2_neon(w, lo, hi, cl, ch) };
            #[allow(unreachable_code)]
            word2_scalar
        }
        Kernel::Lanes256 => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 presence was just verified.
                return |w, lo, hi, cl, ch| unsafe { x86::word2_avx2(w, lo, hi, cl, ch) };
            }
            word2_fn(Kernel::Lanes128)
        }
    }
}

/// Portable reference for [`word1_bits`]; also the tail loop of the SIMD
/// paths. Written branchless-per-slot so autovectorization has a shot
/// even on the `Scalar` kernel.
fn word1_scalar(words: &[u64], sv: u64, sc: u64, key_bits: u32, ternary: bool) -> u64 {
    let mut bits = 0u64;
    if ternary {
        for (i, &w) in words.iter().enumerate() {
            let care = sc & !(w >> key_bits);
            bits |= u64::from((w ^ sv) & care == 0) << i;
        }
    } else {
        for (i, &w) in words.iter().enumerate() {
            bits |= u64::from((w ^ sv) & sc == 0) << i;
        }
    }
    bits
}

/// Portable reference for [`word2_binary_bits`]; also the SIMD tail loop.
#[allow(clippy::similar_names)] // sv/sc: search value vs search care
fn word2_scalar(words: &[u64], sv_lo: u64, sv_hi: u64, sc_lo: u64, sc_hi: u64) -> u64 {
    let mut bits = 0u64;
    for (j, pair) in words.chunks_exact(2).enumerate() {
        let lo = (pair[0] ^ sv_lo) & sc_lo;
        let hi = (pair[1] ^ sv_hi) & sc_hi;
        bits |= u64::from(lo | hi == 0) << j;
    }
    bits
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
// sv/sc: search value vs search care; unaligned vector loads are the
// point of `loadu`.
#[allow(clippy::similar_names, clippy::cast_ptr_alignment)]
mod x86 {
    use super::{word1_scalar, word2_scalar};
    use core::arch::x86_64::{
        __m128i, __m256i, _mm256_and_si256, _mm256_andnot_si256, _mm256_castsi256_pd,
        _mm256_cmpeq_epi64, _mm256_loadu_si256, _mm256_movemask_pd, _mm256_set1_epi64x,
        _mm256_set_epi64x, _mm256_setzero_si256, _mm256_srl_epi64, _mm256_xor_si256, _mm_and_si128,
        _mm_andnot_si128, _mm_castsi128_pd, _mm_cmpeq_epi64, _mm_cvtsi32_si128, _mm_loadu_si128,
        _mm_movemask_pd, _mm_set1_epi64x, _mm_set_epi64x, _mm_setzero_si128, _mm_srl_epi64,
        _mm_xor_si128,
    };

    #[allow(clippy::cast_possible_wrap, clippy::cast_sign_loss)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn word1_avx2(words: &[u64], sv: u64, sc: u64, key_bits: u32, ternary: bool) -> u64 {
        let sv_v = _mm256_set1_epi64x(sv as i64);
        let sc_v = _mm256_set1_epi64x(sc as i64);
        let shift = _mm_cvtsi32_si128(key_bits as i32);
        let zero = _mm256_setzero_si256();
        let mut bits = 0u64;
        let mut i = 0usize;
        while i + 4 <= words.len() {
            let w = _mm256_loadu_si256(words.as_ptr().add(i).cast::<__m256i>());
            let care = if ternary {
                _mm256_andnot_si256(_mm256_srl_epi64(w, shift), sc_v)
            } else {
                sc_v
            };
            let m = _mm256_and_si256(_mm256_xor_si256(w, sv_v), care);
            let eq = _mm256_cmpeq_epi64(m, zero);
            bits |= u64::from(_mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32) << i;
            i += 4;
        }
        if i < words.len() {
            bits |= word1_scalar(&words[i..], sv, sc, key_bits, ternary) << i;
        }
        bits
    }

    #[allow(clippy::cast_possible_wrap, clippy::cast_sign_loss)]
    #[target_feature(enable = "sse4.1")]
    pub unsafe fn word1_sse41(
        words: &[u64],
        sv: u64,
        sc: u64,
        key_bits: u32,
        ternary: bool,
    ) -> u64 {
        let sv_v = _mm_set1_epi64x(sv as i64);
        let sc_v = _mm_set1_epi64x(sc as i64);
        let shift = _mm_cvtsi32_si128(key_bits as i32);
        let zero = _mm_setzero_si128();
        let mut bits = 0u64;
        let mut i = 0usize;
        while i + 2 <= words.len() {
            let w = _mm_loadu_si128(words.as_ptr().add(i).cast::<__m128i>());
            let care = if ternary {
                _mm_andnot_si128(_mm_srl_epi64(w, shift), sc_v)
            } else {
                sc_v
            };
            let m = _mm_and_si128(_mm_xor_si128(w, sv_v), care);
            let eq = _mm_cmpeq_epi64(m, zero);
            bits |= u64::from(_mm_movemask_pd(_mm_castsi128_pd(eq)) as u32) << i;
            i += 2;
        }
        if i < words.len() {
            bits |= word1_scalar(&words[i..], sv, sc, key_bits, ternary) << i;
        }
        bits
    }

    /// Fused first-hit over word-1 slots: one broadcast setup, then a
    /// 4-slot vector compare per iteration, masked with that group's
    /// occupancy bits and returning on the first survivor. Empty 4-slot
    /// groups skip even the row load.
    #[allow(
        clippy::cast_possible_wrap,
        clippy::cast_sign_loss,
        clippy::cast_possible_truncation
    )]
    #[target_feature(enable = "avx2")]
    pub unsafe fn word1_first_avx2(
        words: &[u64],
        occ: u64,
        sv: u64,
        sc: u64,
        key_bits: u32,
        ternary: bool,
    ) -> Option<u32> {
        let sv_v = _mm256_set1_epi64x(sv as i64);
        let sc_v = _mm256_set1_epi64x(sc as i64);
        let shift = _mm_cvtsi32_si128(key_bits as i32);
        let zero = _mm256_setzero_si256();
        let compare4 = |i: usize| {
            let w = _mm256_loadu_si256(words.as_ptr().add(i).cast::<__m256i>());
            let care = if ternary {
                _mm256_andnot_si256(_mm256_srl_epi64(w, shift), sc_v)
            } else {
                sc_v
            };
            let m = _mm256_and_si256(_mm256_xor_si256(w, sv_v), care);
            let eq = _mm256_cmpeq_epi64(m, zero);
            u64::from(_mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32)
        };
        let mut i = 0usize;
        // Two vectors per early-exit test: 8-slot granularity halves the
        // branch/test overhead on deep hits and misses while still
        // exiting well before the row's end on shallow hits.
        while i + 8 <= words.len() {
            let group_occ = (occ >> i) & 0xFF;
            if group_occ != 0 {
                let hit = (compare4(i) | (compare4(i + 4) << 4)) & group_occ;
                if hit != 0 {
                    return Some(i as u32 + hit.trailing_zeros());
                }
            }
            i += 8;
        }
        if i + 4 <= words.len() {
            let group_occ = (occ >> i) & 0xF;
            if group_occ != 0 {
                let hit = compare4(i) & group_occ;
                if hit != 0 {
                    return Some(i as u32 + hit.trailing_zeros());
                }
            }
            i += 4;
        }
        if i < words.len() {
            let bits = word1_scalar(&words[i..], sv, sc, key_bits, ternary) & (occ >> i);
            if bits != 0 {
                return Some(i as u32 + bits.trailing_zeros());
            }
        }
        None
    }

    /// SSE4.1 twin of [`word1_first_avx2`]: 2-slot groups.
    #[allow(
        clippy::cast_possible_wrap,
        clippy::cast_sign_loss,
        clippy::cast_possible_truncation
    )]
    #[target_feature(enable = "sse4.1")]
    pub unsafe fn word1_first_sse41(
        words: &[u64],
        occ: u64,
        sv: u64,
        sc: u64,
        key_bits: u32,
        ternary: bool,
    ) -> Option<u32> {
        let sv_v = _mm_set1_epi64x(sv as i64);
        let sc_v = _mm_set1_epi64x(sc as i64);
        let shift = _mm_cvtsi32_si128(key_bits as i32);
        let zero = _mm_setzero_si128();
        let mut i = 0usize;
        while i + 2 <= words.len() {
            let group_occ = (occ >> i) & 0b11;
            if group_occ != 0 {
                let w = _mm_loadu_si128(words.as_ptr().add(i).cast::<__m128i>());
                let care = if ternary {
                    _mm_andnot_si128(_mm_srl_epi64(w, shift), sc_v)
                } else {
                    sc_v
                };
                let m = _mm_and_si128(_mm_xor_si128(w, sv_v), care);
                let eq = _mm_cmpeq_epi64(m, zero);
                let hit = u64::from(_mm_movemask_pd(_mm_castsi128_pd(eq)) as u32) & group_occ;
                if hit != 0 {
                    return Some(i as u32 + hit.trailing_zeros());
                }
            }
            i += 2;
        }
        if i < words.len() {
            let bits = word1_scalar(&words[i..], sv, sc, key_bits, ternary) & (occ >> i);
            if bits != 0 {
                return Some(i as u32 + bits.trailing_zeros());
            }
        }
        None
    }

    #[allow(clippy::cast_possible_wrap, clippy::cast_sign_loss)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn word2_avx2(words: &[u64], sv_lo: u64, sv_hi: u64, sc_lo: u64, sc_hi: u64) -> u64 {
        // Lane order: _mm256_set_epi64x lists the HIGHEST lane first, so
        // lane 0 (the lowest) is the last argument — the lo word.
        let sv_v = _mm256_set_epi64x(sv_hi as i64, sv_lo as i64, sv_hi as i64, sv_lo as i64);
        let sc_v = _mm256_set_epi64x(sc_hi as i64, sc_lo as i64, sc_hi as i64, sc_lo as i64);
        let zero = _mm256_setzero_si256();
        let slots = words.len() / 2;
        let mut bits = 0u64;
        let mut j = 0usize;
        while j + 2 <= slots {
            let w = _mm256_loadu_si256(words.as_ptr().add(2 * j).cast::<__m256i>());
            let m = _mm256_and_si256(_mm256_xor_si256(w, sv_v), sc_v);
            let eq = _mm256_cmpeq_epi64(m, zero);
            let mm = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32;
            // Slot j matches iff lanes 0 and 1 both compared equal; slot
            // j+1 iff lanes 2 and 3 did.
            let both = mm & (mm >> 1);
            bits |= u64::from((both & 1) | ((both >> 1) & 2)) << j;
            j += 2;
        }
        if j < slots {
            bits |= word2_scalar(&words[2 * j..], sv_lo, sv_hi, sc_lo, sc_hi) << j;
        }
        bits
    }

    #[allow(clippy::cast_possible_wrap, clippy::cast_sign_loss)]
    #[target_feature(enable = "sse4.1")]
    pub unsafe fn word2_sse41(
        words: &[u64],
        sv_lo: u64,
        sv_hi: u64,
        sc_lo: u64,
        sc_hi: u64,
    ) -> u64 {
        let sv_v = _mm_set_epi64x(sv_hi as i64, sv_lo as i64);
        let sc_v = _mm_set_epi64x(sc_hi as i64, sc_lo as i64);
        let zero = _mm_setzero_si128();
        let mut bits = 0u64;
        for (j, pair) in words.chunks_exact(2).enumerate() {
            let w = _mm_loadu_si128(pair.as_ptr().cast::<__m128i>());
            let m = _mm_and_si128(_mm_xor_si128(w, sv_v), sc_v);
            let eq = _mm_cmpeq_epi64(m, zero);
            bits |= u64::from(_mm_movemask_pd(_mm_castsi128_pd(eq)) as u32 == 0b11) << j;
        }
        bits
    }
}

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
#[allow(clippy::similar_names)] // sv/sc: search value vs search care
mod arm {
    use core::arch::aarch64::{
        vandq_u64, vbicq_u64, vceqzq_u64, vdupq_n_s64, vdupq_n_u64, veorq_u64, vgetq_lane_u64,
        vld1q_u64, vshlq_u64,
    };

    #[allow(clippy::cast_possible_wrap)]
    pub unsafe fn word1_neon(words: &[u64], sv: u64, sc: u64, key_bits: u32, ternary: bool) -> u64 {
        let sv_v = vdupq_n_u64(sv);
        let sc_v = vdupq_n_u64(sc);
        // NEON has no vector shift-right-by-scalar for u64; shift left by
        // a negative amount instead.
        let neg_shift = vdupq_n_s64(-i64::from(key_bits));
        let mut bits = 0u64;
        let mut i = 0usize;
        while i + 2 <= words.len() {
            let w = vld1q_u64(words.as_ptr().add(i));
            let care = if ternary {
                vbicq_u64(sc_v, vshlq_u64(w, neg_shift))
            } else {
                sc_v
            };
            let m = vandq_u64(veorq_u64(w, sv_v), care);
            let eq = vceqzq_u64(m);
            bits |= (vgetq_lane_u64::<0>(eq) & 1) << i;
            bits |= (vgetq_lane_u64::<1>(eq) & 1) << (i + 1);
            i += 2;
        }
        if i < words.len() {
            bits |= super::word1_scalar(&words[i..], sv, sc, key_bits, ternary) << i;
        }
        bits
    }

    /// Fused first-hit twin of [`word1_neon`]: 2-slot groups, occupancy
    /// masked per group, early exit on the first surviving match.
    #[allow(clippy::cast_possible_wrap, clippy::cast_possible_truncation)]
    pub unsafe fn word1_first_neon(
        words: &[u64],
        occ: u64,
        sv: u64,
        sc: u64,
        key_bits: u32,
        ternary: bool,
    ) -> Option<u32> {
        let sv_v = vdupq_n_u64(sv);
        let sc_v = vdupq_n_u64(sc);
        let neg_shift = vdupq_n_s64(-i64::from(key_bits));
        let mut i = 0usize;
        while i + 2 <= words.len() {
            let group_occ = (occ >> i) & 0b11;
            if group_occ != 0 {
                let w = vld1q_u64(words.as_ptr().add(i));
                let care = if ternary {
                    vbicq_u64(sc_v, vshlq_u64(w, neg_shift))
                } else {
                    sc_v
                };
                let m = vandq_u64(veorq_u64(w, sv_v), care);
                let eq = vceqzq_u64(m);
                let hit = ((vgetq_lane_u64::<0>(eq) & 1) | ((vgetq_lane_u64::<1>(eq) & 1) << 1))
                    & group_occ;
                if hit != 0 {
                    return Some(i as u32 + hit.trailing_zeros());
                }
            }
            i += 2;
        }
        if i < words.len() {
            let bits = super::word1_scalar(&words[i..], sv, sc, key_bits, ternary) & (occ >> i);
            if bits != 0 {
                return Some(i as u32 + bits.trailing_zeros());
            }
        }
        None
    }

    pub unsafe fn word2_neon(words: &[u64], sv_lo: u64, sv_hi: u64, sc_lo: u64, sc_hi: u64) -> u64 {
        let sv_v = vld1q_u64([sv_lo, sv_hi].as_ptr());
        let sc_v = vld1q_u64([sc_lo, sc_hi].as_ptr());
        let mut bits = 0u64;
        for (j, pair) in words.chunks_exact(2).enumerate() {
            let w = vld1q_u64(pair.as_ptr());
            let m = vandq_u64(veorq_u64(w, sv_v), sc_v);
            let eq = vceqzq_u64(m);
            bits |= (vgetq_lane_u64::<0>(eq) & vgetq_lane_u64::<1>(eq) & 1) << j;
        }
        bits
    }
}

/// Match bits for word-per-slot rows (64-bit slots, stored key ≤ 64
/// bits): bit `i` of the result is set iff `words[i]` matches the search
/// key. `sv` is the search value, `sc` the search-care mask (both already
/// confined to the low `key_bits` bits); with `ternary` the stored
/// don't-care field sits at bit `key_bits` of each word and is subtracted
/// from `sc` per slot. Garbage in invalid slots may set bits — callers
/// mask the result with the occupancy bitmap.
///
/// # Panics
///
/// Panics if more than 64 words are passed (the result is one `u64`), or
/// in debug builds if `ternary` is set with `key_bits >= 64` (the
/// don't-care shift would overflow; ternary word-1 slots imply
/// `key_bits <= 32`).
#[must_use]
pub fn word1_bits(
    kernel: Kernel,
    words: &[u64],
    sv: u64,
    sc: u64,
    key_bits: u32,
    ternary: bool,
) -> u64 {
    assert!(words.len() <= 64, "word1 kernel compares at most 64 slots");
    debug_assert!(!ternary || key_bits < 64);
    match kernel {
        Kernel::Scalar => word1_scalar(words, sv, sc, key_bits, ternary),
        Kernel::Lanes128 => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if std::arch::is_x86_feature_detected!("sse4.1") {
                return unsafe { x86::word1_sse41(words, sv, sc, key_bits, ternary) };
            }
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            return unsafe { arm::word1_neon(words, sv, sc, key_bits, ternary) };
            #[allow(unreachable_code)]
            word1_scalar(words, sv, sc, key_bits, ternary)
        }
        Kernel::Lanes256 => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if std::arch::is_x86_feature_detected!("avx2") {
                return unsafe { x86::word1_avx2(words, sv, sc, key_bits, ternary) };
            }
            word1_bits(Kernel::Lanes128, words, sv, sc, key_bits, ternary)
        }
    }
}

/// Match bits for two-word binary slots (128-bit slots, no stored
/// don't-care field): bit `j` of the result is set iff the slot at
/// `words[2j..2j + 2]` matches. `sv_lo`/`sv_hi` and `sc_lo`/`sc_hi` are
/// the low and high words of the 128-bit search value and care mask; the
/// care mask is confined to the key field, so data or garbage bits above
/// it never affect the compare.
///
/// # Panics
///
/// Panics if `words` is not an even number of words or holds more than
/// 64 slots.
#[must_use]
#[allow(clippy::similar_names)] // sv/sc: search value vs search care
pub fn word2_binary_bits(
    kernel: Kernel,
    words: &[u64],
    sv_lo: u64,
    sv_hi: u64,
    sc_lo: u64,
    sc_hi: u64,
) -> u64 {
    assert!(
        words.len().is_multiple_of(2),
        "word2 kernel needs whole 2-word slots"
    );
    assert!(words.len() <= 128, "word2 kernel compares at most 64 slots");
    match kernel {
        Kernel::Scalar => word2_scalar(words, sv_lo, sv_hi, sc_lo, sc_hi),
        Kernel::Lanes128 => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if std::arch::is_x86_feature_detected!("sse4.1") {
                return unsafe { x86::word2_sse41(words, sv_lo, sv_hi, sc_lo, sc_hi) };
            }
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            return unsafe { arm::word2_neon(words, sv_lo, sv_hi, sc_lo, sc_hi) };
            #[allow(unreachable_code)]
            word2_scalar(words, sv_lo, sv_hi, sc_lo, sc_hi)
        }
        Kernel::Lanes256 => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if std::arch::is_x86_feature_detected!("avx2") {
                return unsafe { x86::word2_avx2(words, sv_lo, sv_hi, sc_lo, sc_hi) };
            }
            word2_binary_bits(Kernel::Lanes128, words, sv_lo, sv_hi, sc_lo, sc_hi)
        }
    }
}

/// Serializes unit tests that mutate the process-wide kernel override,
/// so `cargo test`'s parallel threads cannot observe each other's forces.
#[cfg(test)]
pub(crate) fn test_force_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Bit-at-a-time reference for the word-1 kernel contract.
    fn word1_reference(words: &[u64], sv: u64, sc: u64, key_bits: u32, ternary: bool) -> u64 {
        let mut bits = 0u64;
        for (i, &w) in words.iter().enumerate() {
            let dc = if ternary { w >> key_bits } else { 0 };
            let care = sc & !dc;
            if (w ^ sv) & care == 0 {
                bits |= 1 << i;
            }
        }
        bits
    }

    #[test]
    fn all_kernels_agree_on_word1() {
        let mut rng = SmallRng::seed_from_u64(0x5EED);
        for &(key_bits, ternary) in &[(32u32, true), (16, true), (64, false), (48, false)] {
            for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64] {
                let mut words: Vec<u64> = (0..len).map(|_| rng.gen()).collect();
                let sv = rng.gen::<u64>() & crate::bits::low_mask(key_bits) as u64;
                let sc = rng.gen::<u64>() & crate::bits::low_mask(key_bits) as u64;
                // Plant a guaranteed match so the all-miss case is not all
                // we ever test.
                if len > 0 {
                    let slot = rng.gen_range(0..len);
                    words[slot] = sv | (words[slot] & !(crate::bits::low_mask(key_bits) as u64));
                    if ternary {
                        words[slot] &= crate::bits::low_mask(key_bits) as u64; // clear dc field
                    }
                }
                let want = word1_reference(&words, sv, sc, key_bits, ternary);
                for k in available() {
                    assert_eq!(
                        word1_bits(k, &words, sv, sc, key_bits, ternary),
                        want,
                        "kernel {k:?} len {len} key_bits {key_bits} ternary {ternary}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_kernels_agree_on_word2() {
        let mut rng = SmallRng::seed_from_u64(0xB00B);
        for slots in [0usize, 1, 2, 3, 4, 5, 8, 15, 16, 31, 32, 63, 64] {
            let mut words: Vec<u64> = (0..2 * slots).map(|_| rng.gen()).collect();
            let sv_lo = rng.gen();
            let sv_hi = rng.gen();
            let sc_lo = rng.gen();
            let sc_hi: u64 = rng.gen();
            if slots > 0 {
                let j = rng.gen_range(0..slots);
                words[2 * j] = sv_lo;
                words[2 * j + 1] = sv_hi;
            }
            let want = word2_scalar(&words, sv_lo, sv_hi, sc_lo, sc_hi);
            for k in available() {
                assert_eq!(
                    word2_binary_bits(k, &words, sv_lo, sv_hi, sc_lo, sc_hi),
                    want,
                    "kernel {k:?} slots {slots}"
                );
            }
        }
    }

    #[test]
    fn forced_kernel_is_scoped_and_restored() {
        let _guard = test_force_lock();
        let before = active_kernel();
        let inside = with_forced(Kernel::Scalar, active_kernel);
        assert_eq!(inside, Kernel::Scalar);
        assert_eq!(active_kernel(), before);
    }

    #[test]
    fn clamp_never_exceeds_detection() {
        let _guard = test_force_lock();
        let widest = detect();
        for k in [Kernel::Scalar, Kernel::Lanes128, Kernel::Lanes256] {
            let got = with_forced(k, active_kernel);
            assert!(got <= widest, "forced {k:?} resolved to {got:?}");
            assert!(got <= k, "forcing never widens");
        }
    }

    #[test]
    fn scalar_is_always_available() {
        assert_eq!(available().first(), Some(&Kernel::Scalar));
    }
}
