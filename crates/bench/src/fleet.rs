//! The differential-testing engine fleet: every search substrate in the
//! workspace packaged as an [`EngineCase`] for the oracle harness.
//!
//! One [`fleet_for`] call materializes the engines legal for a generation
//! [`Scenario`]: CA-RAM design points across probe policies, arrangements
//! (including a non-power-of-two vertical geometry), and overflow schemes;
//! the subsystem adapter; the six CAM baselines; and the statically built
//! software indexes. Gating is by [`Profile`] — an engine only joins
//! streams whose priority and match semantics its contract covers (a plain
//! TCAM is position-priority, so it skips arbitrary-order LPM churn; binary
//! CAMs skip every masked-search profile) — and by geometry: a builder
//! returns `None` at key widths its index range cannot address, which the
//! harness treats as a vacuous pass.

use ca_ram_cam::{BankedTcam, BinaryCam, PreclassifiedCam, PrecomputedBcam, SortedTcam, Tcam};
use ca_ram_core::engine::{EngineOutcome, EngineReport, SearchEngine};
use ca_ram_core::error::Result as CoreResult;
use ca_ram_core::index::RangeSelect;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::oracle::{EngineCase, Profile, Scenario};
use ca_ram_core::probe::ProbePolicy;
use ca_ram_core::storage::{DurableOptions, DurableTable, IndexSpec, TableSpec, TempDurableTable};
use ca_ram_core::subsystem::{CaRamSubsystem, DatabaseId};
use ca_ram_core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};
use ca_ram_service::ServiceEngine;
use ca_ram_softsearch::{Arena, ChainedHash, Hierarchy, SoftEngine, SortedArray};

/// log2 of rows per slice for every fleet CA-RAM table.
const ROWS_LOG2: u32 = 6;
/// Record slots per slice row.
const SLOTS_PER_ROW: u32 = 8;
/// Flat-CAM capacity, sized so `must_fit` devices never legitimately fill.
const CAM_CAPACITY: usize = 512;

/// A whole [`CaRamSubsystem`] owning one database, viewed as a
/// [`SearchEngine`] — so the oracle drives the same entry points the
/// memory-mapped ports and the `DatabaseEngine` adapter use, activity
/// counters included.
pub struct SubsystemEngine {
    sub: CaRamSubsystem,
    id: DatabaseId,
}

impl SubsystemEngine {
    /// Wraps `table` as the sole database of a fresh subsystem.
    #[must_use]
    pub fn new(table: CaRamTable) -> Self {
        let mut sub = CaRamSubsystem::new();
        let id = sub.add_database("oracle", table);
        Self { sub, id }
    }
}

impl SearchEngine for SubsystemEngine {
    fn name(&self) -> &'static str {
        "ca-ram/subsystem"
    }

    fn key_bits(&self) -> u32 {
        self.sub.table(self.id).layout().key_bits()
    }

    fn search(&self, key: &SearchKey) -> EngineOutcome {
        self.sub.search(self.id, key).into()
    }

    fn insert(&mut self, record: Record) -> CoreResult<()> {
        self.sub.engine(self.id).insert(record)
    }

    fn insert_sorted(&mut self, record: Record) -> CoreResult<()> {
        self.sub.engine(self.id).insert_sorted(record)
    }

    fn delete(&mut self, key: &TernaryKey) -> u32 {
        self.sub.engine(self.id).delete(key)
    }

    fn occupancy(&self) -> EngineReport {
        SearchEngine::occupancy(self.sub.table(self.id))
    }
}

/// Builds a fleet CA-RAM table for `bits`-wide keys, or `None` when the
/// geometry's index range does not fit inside the key. Public so
/// integration tests can drive the exact fleet geometry through
/// table-inherent paths (batch, baseline) the trait object hides.
#[must_use]
pub fn ca_ram_table(
    bits: u32,
    hash_lo: u32,
    arrangement: Arrangement,
    probe: ProbePolicy,
    overflow: OverflowPolicy,
) -> Option<CaRamTable> {
    let layout = RecordLayout::new(bits, true, 32);
    let buckets = (1u64 << ROWS_LOG2) * u64::from(arrangement.factors().1);
    let index_bits = buckets.next_power_of_two().trailing_zeros();
    if hash_lo + index_bits > bits {
        return None;
    }
    let config = TableConfig {
        rows_log2: ROWS_LOG2,
        row_bits: SLOTS_PER_ROW * layout.slot_bits(),
        layout,
        arrangement,
        probe,
        overflow,
    };
    CaRamTable::new(config, Box::new(RangeSelect::new(hash_lo, index_bits))).ok()
}

fn boxed(engine: impl SearchEngine + 'static) -> Box<dyn SearchEngine> {
    Box::new(engine)
}

/// The fleet geometry of [`ca_ram_table`] as a serializable [`TableSpec`],
/// for durable engines (whose recovery path rebuilds the table from the
/// spec). `None` when the index range does not fit inside the key.
#[must_use]
pub fn durable_spec(bits: u32, hash_lo: u32) -> Option<TableSpec> {
    let layout = RecordLayout::new(bits, true, 32);
    let buckets = 1u64 << ROWS_LOG2;
    let index_bits = buckets.next_power_of_two().trailing_zeros();
    if hash_lo + index_bits > bits {
        return None;
    }
    Some(TableSpec {
        config: TableConfig {
            rows_log2: ROWS_LOG2,
            row_bits: SLOTS_PER_ROW * layout.slot_bits(),
            layout,
            arrangement: Arrangement::Horizontal(1),
            probe: ProbePolicy::Linear,
            overflow: EXHAUSTIVE,
        },
        index: IndexSpec::RangeSelect {
            low: hash_lo,
            count: index_bits,
        },
    })
}

/// A [`DurableTable`] in a temp directory as a fleet engine: every oracle
/// op crosses the write-ahead log. With `reopen_every > 0` the engine
/// additionally drops its handle and crash-recovers from disk every N
/// mutations, so the differential sweep checks the recovery path itself
/// mid-stream, against live state no fixture could anticipate.
pub struct DurableEngine {
    name: &'static str,
    inner: TempDurableTable,
    reopen_every: u32,
    mutations: u32,
}

impl DurableEngine {
    /// Builds the engine at the fleet geometry, or `None` where
    /// [`durable_spec`] declines the width.
    ///
    /// # Panics
    ///
    /// Panics if the scratch directory for the temp table cannot be
    /// created — a fleet environment failure, not a recoverable case.
    #[must_use]
    pub fn build(
        name: &'static str,
        bits: u32,
        hash_lo: u32,
        reopen_every: u32,
    ) -> Option<Box<dyn SearchEngine>> {
        let spec = durable_spec(bits, hash_lo)?;
        let inner = TempDurableTable::create("fleet", &spec, DurableOptions::default())
            .expect("temp durable table");
        Some(boxed(Self {
            name,
            inner,
            reopen_every,
            mutations: 0,
        }))
    }

    fn after_mutation(&mut self) {
        self.mutations += 1;
        if self.reopen_every > 0 && self.mutations.is_multiple_of(self.reopen_every) {
            self.inner
                .reopen()
                .expect("durable recovery mid-stream must succeed");
        }
    }
}

impl SearchEngine for DurableEngine {
    fn name(&self) -> &str {
        self.name
    }

    fn key_bits(&self) -> u32 {
        SearchEngine::key_bits(self.inner.get())
    }

    fn search(&self, key: &SearchKey) -> EngineOutcome {
        SearchEngine::search(self.inner.get(), key)
    }

    fn insert(&mut self, record: Record) -> CoreResult<()> {
        let res = DurableTable::insert(self.inner.get_mut(), record);
        self.after_mutation();
        res
    }

    fn insert_sorted(&mut self, record: Record) -> CoreResult<()> {
        let res = DurableTable::insert_sorted(self.inner.get_mut(), record);
        self.after_mutation();
        res
    }

    fn delete(&mut self, key: &TernaryKey) -> u32 {
        let n = SearchEngine::delete(self.inner.get_mut(), key);
        self.after_mutation();
        n
    }

    fn occupancy(&self) -> EngineReport {
        SearchEngine::occupancy(self.inner.get())
    }

    fn commit(&mut self) -> CoreResult<()> {
        DurableTable::commit(self.inner.get_mut())
    }
}

struct Entry {
    name: &'static str,
    must_fit: bool,
    profiles: &'static [Profile],
    build: Box<dyn Fn(u32) -> Option<Box<dyn SearchEngine>>>,
}

/// Probe-exhaustive overflow: every bucket is reachable before `TableFull`.
const EXHAUSTIVE: OverflowPolicy = OverflowPolicy::Probe {
    max_steps: u32::MAX,
};

// NearestMatch streams store only binary keys (approximation lives in the
// masked probe ladder), so every ternary-capable engine can play them
// regardless of its priority scheme. PacketClass streams arrive via
// InsertSorted in arbitrary order, so only online-LPM-capable engines play.
const CHURN: &[Profile] = &[
    Profile::ExactChurn,
    Profile::TernaryDisjoint,
    Profile::NearestMatch,
];
const CHURN_LPM_BUILD: &[Profile] = &[
    Profile::ExactChurn,
    Profile::TernaryDisjoint,
    Profile::LpmBuild,
    Profile::NearestMatch,
];
const CHURN_LPM_FULL: &[Profile] = &[
    Profile::ExactChurn,
    Profile::TernaryDisjoint,
    Profile::LpmBuild,
    Profile::LpmChurn,
    Profile::PacketClass,
    Profile::NearestMatch,
];
const EXACT_ONLY: &[Profile] = &[Profile::ExactChurn];
const STATIC_ONLY: &[Profile] = &[Profile::SearchOnly];

#[allow(clippy::too_many_lines)]
fn entries(sc: &Scenario, preload: &[Record]) -> Vec<Entry> {
    let hash_lo = sc.hash_lo;
    // The software indexes are built once from the preload set and rebuilt
    // identically on demand.
    let pairs: Vec<(u64, u64)> = preload
        .iter()
        .filter(|r| r.key.bits() == 64)
        .map(|r| {
            #[allow(clippy::cast_possible_truncation)]
            let k = r.key.value() as u64;
            (k, r.data)
        })
        .collect();
    let chained_pairs = pairs.clone();
    vec![
        Entry {
            name: "ca-ram/linear",
            must_fit: true,
            profiles: CHURN_LPM_FULL,
            build: Box::new(move |bits| {
                ca_ram_table(
                    bits,
                    hash_lo,
                    Arrangement::Horizontal(1),
                    ProbePolicy::Linear,
                    EXHAUSTIVE,
                )
                .map(boxed)
            }),
        },
        Entry {
            name: "ca-ram/linear-h2",
            must_fit: true,
            profiles: CHURN_LPM_FULL,
            build: Box::new(move |bits| {
                ca_ram_table(
                    bits,
                    hash_lo,
                    Arrangement::Horizontal(2),
                    ProbePolicy::Linear,
                    EXHAUSTIVE,
                )
                .map(boxed)
            }),
        },
        Entry {
            name: "ca-ram/linear-v3",
            must_fit: true,
            profiles: CHURN_LPM_FULL,
            build: Box::new(move |bits| {
                ca_ram_table(
                    bits,
                    hash_lo,
                    Arrangement::Vertical(3),
                    ProbePolicy::Linear,
                    EXHAUSTIVE,
                )
                .map(boxed)
            }),
        },
        Entry {
            name: "ca-ram/second-hash",
            must_fit: true,
            profiles: CHURN_LPM_BUILD,
            build: Box::new(move |bits| {
                ca_ram_table(
                    bits,
                    hash_lo,
                    Arrangement::Horizontal(1),
                    ProbePolicy::SecondHash,
                    EXHAUSTIVE,
                )
                .map(boxed)
            }),
        },
        Entry {
            // Non-power-of-two bucket count under double hashing: the
            // geometry where a stride not coprime with the bucket count
            // fails to reach every bucket.
            name: "ca-ram/second-hash-v3",
            must_fit: true,
            profiles: CHURN_LPM_BUILD,
            build: Box::new(move |bits| {
                ca_ram_table(
                    bits,
                    hash_lo,
                    Arrangement::Vertical(3),
                    ProbePolicy::SecondHash,
                    EXHAUSTIVE,
                )
                .map(boxed)
            }),
        },
        Entry {
            name: "ca-ram/overflow-area",
            must_fit: false,
            profiles: CHURN,
            build: Box::new(move |bits| {
                ca_ram_table(
                    bits,
                    hash_lo,
                    Arrangement::Horizontal(1),
                    ProbePolicy::Linear,
                    OverflowPolicy::ParallelArea { capacity: 48 },
                )
                .map(boxed)
            }),
        },
        Entry {
            name: "ca-ram/victim",
            must_fit: false,
            profiles: CHURN,
            build: Box::new(move |bits| {
                let layout = RecordLayout::new(bits, true, 32);
                ca_ram_table(
                    bits,
                    hash_lo,
                    Arrangement::Horizontal(1),
                    ProbePolicy::Linear,
                    OverflowPolicy::VictimSlice {
                        rows_log2: 3,
                        row_bits: 4 * layout.slot_bits(),
                    },
                )
                .map(boxed)
            }),
        },
        Entry {
            name: "ca-ram/subsystem",
            must_fit: true,
            profiles: CHURN_LPM_FULL,
            build: Box::new(move |bits| {
                ca_ram_table(
                    bits,
                    hash_lo,
                    Arrangement::Horizontal(1),
                    ProbePolicy::Linear,
                    EXHAUSTIVE,
                )
                .map(|t| boxed(SubsystemEngine::new(t)))
            }),
        },
        Entry {
            // The serving layer wrapped around a fleet table: every oracle
            // op crosses the request queue and worker thread, so the fuzz
            // sweep differentially checks the full submit/queue/complete
            // round trip, not just the engine math. Single-shard so ternary
            // ops are routable.
            name: "ca-ram/service",
            must_fit: true,
            profiles: CHURN_LPM_FULL,
            build: Box::new(move |bits| {
                let table = ca_ram_table(
                    bits,
                    hash_lo,
                    Arrangement::Horizontal(1),
                    ProbePolicy::Linear,
                    EXHAUSTIVE,
                )?;
                ServiceEngine::single_shard(boxed(table)).ok().map(boxed)
            }),
        },
        Entry {
            // The durability wrapper in write-ahead mode: every mutation
            // crosses the WAL (logged, committed) before the next op, so
            // the sweep checks that journaling never changes an answer.
            name: "ca-ram/durable",
            must_fit: true,
            profiles: CHURN_LPM_FULL,
            build: Box::new(move |bits| DurableEngine::build("ca-ram/durable", bits, hash_lo, 0)),
        },
        Entry {
            // Same, plus a full close-and-crash-recover cycle from disk
            // every 32 mutations — the recovery path differentially
            // checked mid-stream on live state.
            name: "ca-ram/durable-reopen",
            must_fit: true,
            profiles: CHURN_LPM_FULL,
            build: Box::new(move |bits| {
                DurableEngine::build("ca-ram/durable-reopen", bits, hash_lo, 32)
            }),
        },
        Entry {
            name: "tcam",
            must_fit: true,
            profiles: CHURN_LPM_BUILD,
            build: Box::new(|bits| Some(boxed(Tcam::new(CAM_CAPACITY, bits)))),
        },
        Entry {
            name: "sorted-tcam",
            must_fit: true,
            profiles: CHURN_LPM_FULL,
            build: Box::new(|bits| Some(boxed(SortedTcam::new(CAM_CAPACITY, bits)))),
        },
        Entry {
            name: "bcam",
            must_fit: true,
            profiles: EXACT_ONLY,
            build: Box::new(|bits| Some(boxed(BinaryCam::new(CAM_CAPACITY, bits)))),
        },
        Entry {
            name: "banked-tcam",
            must_fit: false,
            profiles: CHURN_LPM_BUILD,
            build: Box::new(move |bits| {
                if hash_lo + 4 > bits {
                    return None;
                }
                Some(boxed(BankedTcam::new(
                    Box::new(RangeSelect::new(hash_lo, 4)),
                    64,
                    bits,
                )))
            }),
        },
        Entry {
            name: "preclassified-cam",
            must_fit: false,
            profiles: EXACT_ONLY,
            build: Box::new(move |bits| {
                if hash_lo + 4 > bits {
                    return None;
                }
                Some(boxed(PreclassifiedCam::new(8, 128, bits, hash_lo, 4)))
            }),
        },
        Entry {
            name: "precomputed-bcam",
            must_fit: true,
            profiles: EXACT_ONLY,
            build: Box::new(|bits| Some(boxed(PrecomputedBcam::new(CAM_CAPACITY, bits)))),
        },
        Entry {
            name: "soft/chained-hash",
            must_fit: false,
            profiles: STATIC_ONLY,
            build: Box::new(move |bits| {
                if bits != 64 || chained_pairs.is_empty() {
                    return None;
                }
                let mut arena = Arena::new(0);
                let index = ChainedHash::build(&chained_pairs, 7, &mut arena);
                Some(boxed(SoftEngine::new(index, Hierarchy::typical())))
            }),
        },
        Entry {
            name: "soft/sorted-array",
            must_fit: false,
            profiles: STATIC_ONLY,
            build: Box::new(move |bits| {
                if bits != 64 || pairs.is_empty() {
                    return None;
                }
                let mut arena = Arena::new(0);
                let index = SortedArray::build(&pairs, &mut arena);
                Some(boxed(SoftEngine::new(index, Hierarchy::typical())))
            }),
        },
    ]
}

/// Every engine legal for `scenario`, as oracle cases. `preload` seeds both
/// the statically built engines and (via [`EngineCase::preload`]) the
/// reference model.
#[must_use]
pub fn fleet_for(scenario: &Scenario, preload: &[Record]) -> Vec<EngineCase> {
    entries(scenario, preload)
        .into_iter()
        .filter(|e| e.profiles.contains(&scenario.profile))
        .map(|e| EngineCase {
            name: e.name.to_string(),
            must_fit: e.must_fit,
            build: e.build,
            preload: preload.to_vec(),
        })
        .collect()
}

/// The engine names [`fleet_for`] can produce, for reports and filters.
#[must_use]
pub fn fleet_names() -> Vec<&'static str> {
    let sc = Scenario {
        name: String::new(),
        key_bits: 32,
        profile: Profile::ExactChurn,
        data_bits: 32,
        hash_lo: 0,
        hash_bits: 6,
        reconfigure: false,
        max_live: 1,
    };
    entries(&sc, &[]).iter().map(|e| e.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_ram_core::oracle::standard_scenarios;

    #[test]
    fn every_scenario_fields_a_fleet() {
        for sc in standard_scenarios() {
            let fleet = fleet_for(&sc, &[]);
            assert!(!fleet.is_empty(), "{}: empty fleet", sc.name);
            // Each fleet must include at least one CA-RAM design point
            // unless the profile is static-only.
            if sc.profile != Profile::SearchOnly {
                assert!(
                    fleet.iter().any(|c| c.name.starts_with("ca-ram/")),
                    "{}: no CA-RAM engine in fleet",
                    sc.name
                );
            }
        }
    }

    #[test]
    fn pattern_scenarios_field_the_expected_cells() {
        // packet-class: arbitrary-arrival sorted inserts — the online-LPM
        // engines only. All must actually build at 128 bits / hash_lo 112.
        let sc = standard_scenarios()
            .into_iter()
            .find(|s| s.name == "packet-class-128b")
            .expect("scenario exists");
        let fleet = fleet_for(&sc, &[]);
        let names: Vec<&str> = fleet.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "ca-ram/linear",
                "ca-ram/linear-h2",
                "ca-ram/linear-v3",
                "ca-ram/subsystem",
                "ca-ram/service",
                "ca-ram/durable",
                "ca-ram/durable-reopen",
                "sorted-tcam",
            ]
        );
        for c in &fleet {
            assert!((c.build)(sc.key_bits).is_some(), "{} declined", c.name);
        }
        // nearest-match: binary stores + masked ladders — every
        // ternary-capable engine.
        let sc = standard_scenarios()
            .into_iter()
            .find(|s| s.name == "nearest-match-64b")
            .expect("scenario exists");
        let fleet = fleet_for(&sc, &[]);
        assert_eq!(fleet.len(), 14, "nearest-match fleet changed");
        for c in &fleet {
            assert!((c.build)(sc.key_bits).is_some(), "{} declined", c.name);
        }
    }

    #[test]
    fn builders_gate_on_width() {
        // lpm-churn-16b hashes bits [10, 16); the vertical-3 geometry needs
        // 8 index bits and must decline, while the flat geometry fits.
        let sc = standard_scenarios()
            .into_iter()
            .find(|s| s.name == "lpm-churn-16b")
            .expect("scenario exists");
        let fleet = fleet_for(&sc, &[]);
        let v3 = fleet
            .iter()
            .find(|c| c.name == "ca-ram/linear-v3")
            .expect("v3 case is registered");
        assert!((v3.build)(16).is_none(), "v3 must decline 16-bit keys here");
        let flat = fleet
            .iter()
            .find(|c| c.name == "ca-ram/linear")
            .expect("flat case is registered");
        assert!(
            (flat.build)(16).is_some(),
            "flat geometry must accept 16-bit keys"
        );
    }

    #[test]
    fn non_pow2_design_points_build() {
        for name in ["ca-ram/linear-v3", "ca-ram/second-hash-v3"] {
            let sc = standard_scenarios()
                .into_iter()
                .find(|s| s.name == "exact-churn-32b")
                .expect("scenario exists");
            let case = fleet_for(&sc, &[])
                .into_iter()
                .find(|c| c.name == name)
                .expect("case registered");
            let engine = (case.build)(32).expect("32-bit keys fit");
            assert_eq!(engine.key_bits(), 32, "{name}");
        }
    }
}
