//! Published memory-cell datapoints used by the paper's comparisons.
//!
//! The paper anchors every area and power claim to product-grade silicon
//! published by a single R&D organization at 130 nm (Sec. 3.4): the 16T
//! SRAM-based TCAM and 8T dynamic TCAM of Noda et al. (VLSI'03), the 6T
//! dynamic TCAM of Noda et al. (JSSC'05), and the embedded-DRAM macro of
//! Morishita et al. (JSSC'05). The Yamagata et al. (JSSC'92) stacked-capacitor
//! CAM is used for the trigram comparison after optimistic scaling.
//!
//! [`CellKind`] enumerates the cell circuits; [`CellDatapoint`] carries the
//! published geometry; [`CellLibrary`] is the lookup table the area and power
//! models consult.

use crate::technology::ProcessNode;
use crate::units::{Femtojoules, Megahertz, SquareMicrons};

/// A memory/match cell circuit from the literature the paper compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CellKind {
    /// Conventional 16-transistor SRAM-based ternary CAM cell (Noda '03).
    TcamSram16T,
    /// 8-transistor dynamic ternary CAM cell with planar complementary
    /// capacitors (Noda '03).
    TcamDynamic8T,
    /// 6-transistor dynamic ternary CAM cell with pipelined hierarchical
    /// searching (Noda '05) — the state of the art the paper compares to.
    TcamDynamic6T,
    /// Embedded-DRAM cell of the 312 MHz random-cycle macro (Morishita '05);
    /// the storage cell of a DRAM-based CA-RAM.
    EmbeddedDram,
    /// 6T SRAM cell at 130 nm; the storage cell of an SRAM-based CA-RAM.
    Sram6T,
    /// Binary CAM cell, stacked-capacitor structure (Yamagata '92),
    /// optimistically scaled from 250 nm to 130 nm as in Sec. 4.3.
    BinaryCamStacked,
}

impl CellKind {
    /// Number of bits of key information one cell stores.
    ///
    /// TCAM cells store one *ternary symbol* (2 bits of encoding, 1 symbol);
    /// RAM cells store one binary bit. The CA-RAM comparison in Fig. 6 uses
    /// two RAM bits per ternary symbol, which is accounted for by the area
    /// model, not here.
    #[must_use]
    pub fn is_ternary_symbol(self) -> bool {
        matches!(
            self,
            CellKind::TcamSram16T | CellKind::TcamDynamic8T | CellKind::TcamDynamic6T
        )
    }

    /// Whether the cell embeds match logic (CAM/TCAM) or is a plain storage
    /// cell that relies on external match processors (CA-RAM).
    #[must_use]
    pub fn has_embedded_match_logic(self) -> bool {
        !matches!(self, CellKind::EmbeddedDram | CellKind::Sram6T)
    }

    /// All cell kinds, in the order the paper's Figure 6 lists them.
    #[must_use]
    pub fn all() -> &'static [CellKind] {
        &[
            CellKind::TcamSram16T,
            CellKind::TcamDynamic8T,
            CellKind::TcamDynamic6T,
            CellKind::EmbeddedDram,
            CellKind::Sram6T,
            CellKind::BinaryCamStacked,
        ]
    }
}

impl core::fmt::Display for CellKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            CellKind::TcamSram16T => "16T SRAM-based TCAM",
            CellKind::TcamDynamic8T => "8T dynamic TCAM",
            CellKind::TcamDynamic6T => "6T dynamic TCAM",
            CellKind::EmbeddedDram => "embedded DRAM",
            CellKind::Sram6T => "6T SRAM",
            CellKind::BinaryCamStacked => "stacked-capacitor binary CAM",
        };
        f.write_str(s)
    }
}

/// A published implementation datapoint for one cell circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellDatapoint {
    kind: CellKind,
    node: ProcessNode,
    area: SquareMicrons,
    /// Worst-case per-cell energy drawn by one search operation (for cells
    /// with embedded match logic) or one row access touching this cell (for
    /// RAM cells). Calibration anchors for the Sec. 3.4 power model.
    search_energy: Femtojoules,
    /// Maximum search/access clock demonstrated for arrays of this cell.
    max_clock: Megahertz,
    /// Standby (leakage) power per cell, in nanowatts — small at 130 nm
    /// but the differentiator for idle devices. DRAM cells barely leak but
    /// pay refresh instead (priced by the power model).
    standby_nw: f64,
    /// Literature reference the numbers come from.
    citation: &'static str,
}

impl CellDatapoint {
    /// The cell circuit this datapoint describes.
    #[must_use]
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Process node of the publication.
    #[must_use]
    pub fn node(&self) -> ProcessNode {
        self.node
    }

    /// Published cell area.
    #[must_use]
    pub fn area(&self) -> SquareMicrons {
        self.area
    }

    /// Per-cell energy of one search/access (see type-level docs).
    #[must_use]
    pub fn search_energy(&self) -> Femtojoules {
        self.search_energy
    }

    /// Maximum demonstrated operating clock.
    #[must_use]
    pub fn max_clock(&self) -> Megahertz {
        self.max_clock
    }

    /// Standby (leakage) power per cell, in nanowatts.
    #[must_use]
    pub fn standby_nw(&self) -> f64 {
        self.standby_nw
    }

    /// Literature reference.
    #[must_use]
    pub fn citation(&self) -> &'static str {
        self.citation
    }

    /// The datapoint with its area re-expressed at `target` via ideal
    /// quadratic shrink (energy and clock scaled first-order as well).
    #[must_use]
    pub fn scaled_to(&self, target: ProcessNode) -> CellDatapoint {
        let s = self.node.linear_scale_to(target);
        CellDatapoint {
            kind: self.kind,
            node: target,
            area: self.area * (s * s),
            // Constant-field scaling: E = C·V² scales roughly with s³; we use
            // s² as a conservative (less optimistic) estimate.
            search_energy: self.search_energy * (s * s),
            max_clock: self.max_clock / s,
            // Leakage per cell worsens with scaling (thinner oxides); use a
            // conservative inverse-linear rule.
            standby_nw: self.standby_nw / s,
            citation: self.citation,
        }
    }
}

/// The lookup table of published datapoints the models consult.
///
/// `CellLibrary::standard()` returns the numbers at 130 nm that the paper's
/// Figure 6 and Figure 8 are built from.
#[derive(Debug, Clone)]
pub struct CellLibrary {
    cells: Vec<CellDatapoint>,
}

impl CellLibrary {
    /// The 130 nm library reproducing the paper's anchor numbers.
    ///
    /// Areas are taken directly from the cited publications; per-cell search
    /// energies are calibration constants chosen so that the Sec. 3.4 power
    /// comparison reproduces the published power ratios (26× vs 16T TCAM,
    /// ~7× vs 6T TCAM). See `EXPERIMENTS.md` for the calibration procedure.
    #[must_use]
    pub fn standard() -> Self {
        let cells = vec![
            CellDatapoint {
                kind: CellKind::TcamSram16T,
                node: ProcessNode::N130,
                area: SquareMicrons::new(9.00),
                search_energy: Femtojoules::new(2.00),
                max_clock: Megahertz::new(143.0),
                standby_nw: 0.40,
                citation: "Noda et al., Symp. VLSI Circuits 2003 (conventional 16T reference)",
            },
            CellDatapoint {
                kind: CellKind::TcamDynamic8T,
                node: ProcessNode::N130,
                area: SquareMicrons::new(4.79),
                search_energy: Femtojoules::new(1.20),
                max_clock: Megahertz::new(143.0),
                standby_nw: 0.08,
                citation: "Noda et al., Symp. VLSI Circuits 2003",
            },
            CellDatapoint {
                kind: CellKind::TcamDynamic6T,
                node: ProcessNode::N130,
                area: SquareMicrons::new(3.59),
                // Pipelined hierarchical searching activates only a fraction
                // of the match lines per search, hence the low effective
                // per-cell energy.
                search_energy: Femtojoules::new(0.55),
                max_clock: Megahertz::new(143.0),
                standby_nw: 0.06,
                citation: "Noda et al., IEEE JSSC 40(1), 2005",
            },
            CellDatapoint {
                kind: CellKind::EmbeddedDram,
                node: ProcessNode::N130,
                area: SquareMicrons::new(0.35),
                // Per-bit energy of a random-cycle row access, including the
                // amortized periphery (decoder, sense amps, restore).
                search_energy: Femtojoules::new(100.0),
                max_clock: Megahertz::new(312.0),
                standby_nw: 0.002,
                citation: "Morishita et al., IEEE JSSC 40(1), 2005",
            },
            CellDatapoint {
                kind: CellKind::Sram6T,
                node: ProcessNode::N130,
                area: SquareMicrons::new(2.43),
                search_energy: Femtojoules::new(40.0),
                max_clock: Megahertz::new(500.0),
                standby_nw: 0.15,
                citation: "typical 130 nm foundry 6T SRAM bit cell",
            },
            CellDatapoint {
                kind: CellKind::BinaryCamStacked,
                node: ProcessNode::N130,
                // Yamagata et al. published at larger geometry; the paper
                // applies an "optimistic area scaling" to 130 nm (Sec. 4.3).
                area: SquareMicrons::new(2.60),
                search_energy: Femtojoules::new(1.50),
                max_clock: Megahertz::new(100.0),
                standby_nw: 0.20,
                citation: "Yamagata et al., IEEE JSSC 27(12), 1992 (scaled to 130 nm)",
            },
        ];
        Self { cells }
    }

    /// Looks up the datapoint for `kind`.
    ///
    /// # Panics
    ///
    /// Panics if a custom library omits `kind` (the standard library covers
    /// every [`CellKind`]).
    #[must_use]
    pub fn get(&self, kind: CellKind) -> &CellDatapoint {
        self.cells
            .iter()
            .find(|c| c.kind == kind)
            .expect("standard library covers every CellKind")
    }

    /// Iterates over all datapoints.
    pub fn iter(&self) -> impl Iterator<Item = &CellDatapoint> {
        self.cells.iter()
    }

    /// The whole library re-expressed at another process node via
    /// first-order scaling — the "optimistic scaling" the paper applies to
    /// cross-node comparisons, useful for projecting CA-RAM to future
    /// technologies (the Sec. 1 "ample transistor budget" trend).
    #[must_use]
    pub fn scaled_to(&self, target: ProcessNode) -> Self {
        Self {
            cells: self.cells.iter().map(|c| c.scaled_to(target)).collect(),
        }
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_covers_all_kinds() {
        let lib = CellLibrary::standard();
        for &kind in CellKind::all() {
            let dp = lib.get(kind);
            assert_eq!(dp.kind(), kind);
            assert!(dp.area().value() > 0.0);
            assert!(!dp.citation().is_empty());
        }
    }

    #[test]
    fn published_areas_match_the_paper() {
        let lib = CellLibrary::standard();
        assert!((lib.get(CellKind::TcamSram16T).area().value() - 9.00).abs() < 1e-9);
        assert!((lib.get(CellKind::TcamDynamic8T).area().value() - 4.79).abs() < 1e-9);
        assert!((lib.get(CellKind::TcamDynamic6T).area().value() - 3.59).abs() < 1e-9);
        assert!((lib.get(CellKind::EmbeddedDram).area().value() - 0.35).abs() < 1e-9);
    }

    #[test]
    fn dram_is_an_order_of_magnitude_denser_than_tcam() {
        // Sec. 5.1: "an embedded DRAM cell ... is an order of magnitude
        // smaller than their smallest TCAM cell".
        let lib = CellLibrary::standard();
        let dram = lib.get(CellKind::EmbeddedDram).area();
        let tcam6 = lib.get(CellKind::TcamDynamic6T).area();
        assert!(tcam6.ratio_to(dram) > 10.0);
    }

    #[test]
    fn dram_clock_exceeds_twice_tcam_clock() {
        // Sec. 5.1: the DRAM array operates at over twice the TCAM clock.
        let lib = CellLibrary::standard();
        let dram = lib.get(CellKind::EmbeddedDram).max_clock();
        let tcam = lib.get(CellKind::TcamDynamic6T).max_clock();
        assert!(dram.value() > 2.0 * tcam.value());
    }

    #[test]
    fn ternary_flags() {
        assert!(CellKind::TcamDynamic6T.is_ternary_symbol());
        assert!(!CellKind::EmbeddedDram.is_ternary_symbol());
        assert!(CellKind::BinaryCamStacked.has_embedded_match_logic());
        assert!(!CellKind::Sram6T.has_embedded_match_logic());
    }

    #[test]
    fn scaling_datapoint_shrinks_area_and_raises_clock() {
        let lib = CellLibrary::standard();
        let dp = lib.get(CellKind::TcamSram16T);
        let scaled = dp.scaled_to(ProcessNode::new(65));
        assert!(scaled.area().value() < dp.area().value());
        assert!(scaled.max_clock().value() > dp.max_clock().value());
        assert_eq!(scaled.node().feature_nm(), 65);
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", CellKind::TcamDynamic6T), "6T dynamic TCAM");
    }

    #[test]
    fn scaled_library_preserves_ratios() {
        // Linear scaling cannot change who wins: the Fig. 6(a) ratios are
        // node-invariant.
        let base = CellLibrary::standard();
        let at65 = base.scaled_to(ProcessNode::new(65));
        let ratio = |lib: &CellLibrary| {
            lib.get(CellKind::TcamSram16T)
                .area()
                .ratio_to(lib.get(CellKind::EmbeddedDram).area())
        };
        assert!((ratio(&base) - ratio(&at65)).abs() < 1e-9);
        // Absolute areas shrink quadratically: (65/130)^2 = 1/4.
        let a = base.get(CellKind::EmbeddedDram).area().value();
        let b = at65.get(CellKind::EmbeddedDram).area().value();
        assert!((a / b - 4.0).abs() < 1e-9);
    }
}
