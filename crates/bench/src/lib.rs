//! # ca-ram-bench
//!
//! The reproduction harness for the CA-RAM paper's evaluation: shared
//! experiment definitions (the Table 2 and Table 3 design points), builders
//! that map the synthetic workloads onto `CaRamTable`s, and the shared
//! experiment driver every binary runs on:
//!
//! * [`cli`] — `--flag value` parsing and the bench error type, so each
//!   binary is a `fn main() -> Result<()>`;
//! * [`designs`] — the Table 2 / Table 3 design points and table builders;
//! * [`driver`] — workload feeds, warmup + timing of `SearchEngine` batch
//!   paths, stats snapshots, and JSON report emission;
//! * [`fleet`] — every search substrate packaged as an oracle
//!   [`EngineCase`](ca_ram_core::oracle::EngineCase) for the differential
//!   fuzzer (`fuzz_engines`).
//!
//! One binary per table/figure lives in `src/bin/`:
//!
//! | binary | artifact |
//! |--------|----------|
//! | `table1` | match-processor synthesis (Table 1) |
//! | `table2` | IP-lookup designs A–F (Table 2) |
//! | `table3` | trigram designs A–D (Table 3) |
//! | `fig6`   | cell-size and power comparison (Fig. 6) |
//! | `fig7`   | trigram bucket-occupancy histogram (Fig. 7) |
//! | `fig8`   | application-level area/power (Fig. 8) |
//! | `bandwidth` | Sec. 3.4 bandwidth formula vs cycle simulation |
//! | `software_baseline` | Sec. 4.1 software lookup cost |
//! | `repro_all` | everything above in sequence |

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::module_name_repetitions)]

pub mod cli;
pub mod designs;
pub mod driver;
pub mod fleet;

pub use cli::{ensure, write_text, write_text_atomic, BenchError, Cli, Result};
pub use driver::{
    bgp_config, exact_match_workload, keys_per_sec, member_trace, time, time_engine_batch,
    trigram_config, BatchTiming, DesignThroughput, ExactMatchWorkload, PatternThroughput,
    SearchReport,
};
pub use fleet::{fleet_for, fleet_names, SubsystemEngine};

/// Prints a rule-of-dashes separator sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}
