//! Ablations for the design choices the paper calls out.
//!
//! 1. **Bucket size vs bucket count** at fixed capacity (Sec. 2.1: "when
//!    (M × S) is fixed, one can potentially reduce the number of collisions
//!    by increasing S (and decreasing M)") — the generalization of the
//!    Table 2 D-vs-F comparison.
//! 2. **Probe policy**: linear probing vs double hashing for overflow
//!    placement (Sec. 2.1 mentions both).
//! 3. **Area vs latency**: the α ↔ AMAL trade-off curve and its slope
//!    ΔAMAL/Δα (Sec. 4.3: "the ratio of changes in these two values depends
//!    on the application, the hash function, and the value of α").
//! 4. **Dedicated overflow area** for designs C and E (Sec. 4.3: with a
//!    small TCAM searched in parallel, "AMAL becomes 1"; the paper moves
//!    1,829 and 1,163 entries).
//!
//! Usage: `ablation [--prefixes N]`

use ca_ram_bench::designs::{build_ip_table, ip_designs, ip_layout, load_prefixes};
use ca_ram_bench::{bgp_config, rule, Cli, Result};
use ca_ram_core::index::RangeSelect;
use ca_ram_core::probe::ProbePolicy;
use ca_ram_core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};
use ca_ram_workloads::bgp::generate;
use ca_ram_workloads::prefix::Ipv4Prefix;

fn main() -> Result<()> {
    let prefixes_n: usize = Cli::from_env().parse("prefixes", 186_760)?;
    let config = bgp_config(prefixes_n, None);
    let table = generate(&config);
    let weights = vec![1.0; table.len()];
    println!(
        "Ablations over the synthetic BGP table ({} prefixes)\n",
        table.len()
    );

    // ---- 1. bucket size vs bucket count at fixed capacity -----------------
    println!(
        "1. Bucket size S vs bucket count M at fixed capacity M x S = 393,216 (alpha = 0.47):"
    );
    println!(
        "{:>6} {:>8} {:>12} {:>10} {:>8}",
        "S", "M", "Overflow(%)", "Spill(%)", "AMALu"
    );
    rule(50);
    for (rows_log2, keys) in [(14u32, 24u32), (13, 48), (12, 96), (11, 192)] {
        // keys_per_row beyond 128 exceeds the slice bitmap; split wide
        // buckets across horizontal slices instead.
        let (r, k, h) = if keys > 128 {
            (rows_log2, keys / 2, 2)
        } else {
            (rows_log2, keys, 1)
        };
        let layout = ip_layout();
        let cfg = TableConfig {
            rows_log2: r,
            row_bits: k * layout.slot_bits(),
            layout,
            arrangement: Arrangement::Horizontal(h),
            probe: ProbePolicy::Linear,
            overflow: OverflowPolicy::Probe { max_steps: 1 << r },
        };
        let mut t = CaRamTable::new(cfg, Box::new(RangeSelect::ip_first16_last(r)))?;
        load_prefixes(&mut t, &table, &weights);
        let rep = t.load_report();
        println!(
            "{:>6} {:>8} {:>12.2} {:>10.2} {:>8.3}",
            t.slots_per_bucket(),
            t.logical_buckets(),
            rep.overflowing_buckets_pct(),
            rep.spilled_records_pct(),
            rep.amal_uniform
        );
    }
    println!("(larger, fewer buckets absorb skew better — Sec. 2.1's claim, and D vs F)\n");

    // ---- 2. probe policy ----------------------------------------------------
    println!("2. Overflow probe policy on the design-A geometry:");
    println!("{:>14} {:>10} {:>8}", "policy", "Spill(%)", "AMALu");
    rule(36);
    for (name, probe) in [
        ("linear", ProbePolicy::Linear),
        ("double-hash", ProbePolicy::SecondHash),
    ] {
        // Design A geometry: 2048 buckets of 192 slots (2 horizontal
        // slices of 96, since one slice row holds at most 128 slots).
        let layout = ip_layout();
        let cfg = TableConfig {
            rows_log2: 11,
            row_bits: 96 * layout.slot_bits(),
            layout,
            arrangement: Arrangement::Horizontal(2),
            probe,
            overflow: OverflowPolicy::Probe { max_steps: 2048 },
        };
        let mut t = CaRamTable::new(cfg, Box::new(RangeSelect::ip_first16_last(11)))?;
        load_prefixes(&mut t, &table, &weights);
        let rep = t.load_report();
        println!(
            "{name:>14} {:>10.2} {:>8.3}",
            rep.spilled_records_pct(),
            rep.amal_uniform
        );
    }
    println!("(double hashing spreads clustered spills at the cost of locality)\n");

    // ---- 3. alpha vs AMAL ---------------------------------------------------
    println!("3. Area vs latency: alpha vs AMALu on the design-D geometry:");
    println!("{:>7} {:>8} {:>10}", "alpha", "AMALu", "dAMAL/da");
    rule(30);
    let mut last: Option<(f64, f64)> = None;
    for step in [4usize, 3, 2, 1] {
        // Uniform subsample (step sampling keeps the length mix intact;
        // taking a prefix of the length-sorted table would not).
        let subset: Vec<Ipv4Prefix> = table.iter().copied().step_by(step).collect();
        let mut t = build_ip_table(&ip_designs()[3]);
        load_prefixes(&mut t, &subset, &vec![1.0; subset.len()]);
        let rep = t.load_report();
        let alpha = rep.load_factor();
        let amal = rep.amal_uniform;
        let slope = last.map_or(0.0, |(a0, m0)| (amal - m0) / (alpha - a0));
        println!("{alpha:>7.3} {amal:>8.3} {slope:>10.2}");
        last = Some((alpha, amal));
    }
    println!("(the slope steepens with alpha — the Sec. 4.3 trade-off)\n");

    // ---- 4. dedicated overflow area for designs C and E ---------------------
    println!("4. Designs C and E with a parallel overflow area (Sec. 4.3):");
    println!(
        "{:>7} {:>16} {:>16} {:>8}",
        "design", "probing: AMALu", "entries moved", "AMALu"
    );
    rule(52);
    for idx in [2usize, 4] {
        let d = ip_designs()[idx];
        let mut probing = build_ip_table(&d);
        load_prefixes(&mut probing, &table, &weights);
        let base = probing.load_report();

        let layout = ip_layout();
        let cfg = TableConfig {
            rows_log2: d.rows_log2,
            row_bits: d.keys_per_row * layout.slot_bits(),
            layout,
            arrangement: d.arrangement(),
            probe: ProbePolicy::Linear,
            overflow: OverflowPolicy::ParallelArea { capacity: 1 << 17 },
        };
        let mut with_area =
            CaRamTable::new(cfg, Box::new(RangeSelect::ip_first16_last(d.rows_log2)))?;
        load_prefixes(&mut with_area, &table, &weights);
        let rep = with_area.load_report();
        println!(
            "{:>7} {:>16.3} {:>16} {:>8.3}",
            d.name,
            base.amal_uniform,
            with_area.overflow_count(),
            rep.amal_uniform
        );
        assert!((rep.amal_uniform - 1.0).abs() < 1e-9);
    }
    println!("(paper: C and E move 1,829 and 1,163 entries; AMAL becomes exactly 1)\n");

    // ---- 5. TCAM entry-count reduction by prefix aggregation ----------------
    // Sec. 5.1's theme: encoding/aggregation schemes shrink the required
    // associative capacity (Hanzawa et al. report 52% with one-hot-spot
    // block codes; plain sibling aggregation is the baseline version).
    println!("5. TCAM entry-count reduction by prefix aggregation (cf. Sec. 5.1):");
    {
        use ca_ram_cam::aggregate::{aggregate, PrefixEntry};
        // Same next hop for prefixes sharing a /20 aggregate: a plausible
        // forwarding function with mergeable siblings.
        let entries: Vec<PrefixEntry> = table
            .iter()
            .map(|p| PrefixEntry {
                key: p.to_ternary_key(),
                data: u64::from(p.addr() >> 12) % 16,
            })
            .collect();
        let agg = aggregate(&entries);
        #[allow(clippy::cast_precision_loss)]
        let pct = 100.0 * agg.removed as f64 / entries.len() as f64;
        println!(
            "   {} entries -> {} after sibling merges ({pct:.1}% removed)",
            entries.len(),
            agg.entries.len()
        );
    }
    Ok(())
}
