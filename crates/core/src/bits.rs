//! Bit-level helpers for packing records into memory rows.
//!
//! A CA-RAM row is `C` bits wide and holds multiple fixed-width record slots
//! (Sec. 3.1). Rows are stored as little-endian sequences of `u64` words; a
//! bit field of up to 128 bits can start at any bit offset and may straddle
//! word boundaries.

/// Returns a mask with the low `bits` bits set (`bits` ≤ 128).
///
/// # Panics
///
/// Panics if `bits > 128`.
#[must_use]
#[inline]
pub fn low_mask(bits: u32) -> u128 {
    assert!(bits <= 128, "mask width {bits} exceeds 128 bits");
    if bits == 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

/// Reads a `width`-bit field starting at bit `offset` from `words`.
///
/// # Panics
///
/// Panics if `width > 128` or the field extends past the end of `words`.
#[must_use]
#[inline]
#[allow(clippy::cast_possible_truncation)] // offset % 64 < 64; masked chunks
pub fn read_bits(words: &[u64], offset: usize, width: u32) -> u128 {
    assert!(width <= 128, "field width {width} exceeds 128 bits");
    if width == 0 {
        return 0;
    }
    let end = offset + width as usize;
    assert!(
        end <= words.len() * 64,
        "field [{offset}, {end}) extends past the row ({} bits)",
        words.len() * 64
    );
    let mut word_idx = offset / 64;
    let mut bit_idx = (offset % 64) as u32;
    // Fast path: the field lives entirely in one word. Slot layouts are
    // word-aligned in the common designs (e.g. 64-bit IP slots), so the
    // search hot path takes this branch for every key/mask/data read.
    if bit_idx + width <= 64 {
        return u128::from(words[word_idx] >> bit_idx) & low_mask(width);
    }
    let mut value: u128 = 0;
    let mut got: u32 = 0;
    while got < width {
        let take = (64 - bit_idx).min(width - got);
        let chunk = u128::from(words[word_idx] >> bit_idx) & low_mask(take);
        value |= chunk << got;
        got += take;
        bit_idx = 0;
        word_idx += 1;
    }
    value
}

/// Writes a `width`-bit field starting at bit `offset` into `words`.
///
/// Bits of `value` above `width` are ignored.
///
/// # Panics
///
/// Panics if `width > 128` or the field extends past the end of `words`.
#[allow(clippy::cast_possible_truncation)] // offset % 64 < 64; masked chunks
pub fn write_bits(words: &mut [u64], offset: usize, width: u32, value: u128) {
    assert!(width <= 128, "field width {width} exceeds 128 bits");
    if width == 0 {
        return;
    }
    let end = offset + width as usize;
    assert!(
        end <= words.len() * 64,
        "field [{offset}, {end}) extends past the row ({} bits)",
        words.len() * 64
    );
    let value = value & low_mask(width);
    let mut word_idx = offset / 64;
    let mut bit_idx = (offset % 64) as u32;
    // Single-word fast path, mirroring `read_bits`.
    if bit_idx + width <= 64 {
        let clear = if width == 64 {
            u64::MAX
        } else {
            ((1u64 << width) - 1) << bit_idx
        };
        words[word_idx] = (words[word_idx] & !clear) | ((value as u64) << bit_idx);
        return;
    }
    let mut put: u32 = 0;
    while put < width {
        let take = (64 - bit_idx).min(width - put);
        let chunk = ((value >> put) & low_mask(take)) as u64;
        let clear = if take == 64 {
            u64::MAX
        } else {
            ((1u64 << take) - 1) << bit_idx
        };
        words[word_idx] = (words[word_idx] & !clear) | (chunk << bit_idx);
        put += take;
        bit_idx = 0;
        word_idx += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_widths() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(1), 1);
        assert_eq!(low_mask(64), u128::from(u64::MAX));
        assert_eq!(low_mask(128), u128::MAX);
    }

    #[test]
    fn read_write_within_one_word() {
        let mut row = vec![0u64; 2];
        write_bits(&mut row, 3, 8, 0xAB);
        assert_eq!(read_bits(&row, 3, 8), 0xAB);
        assert_eq!(read_bits(&row, 0, 3), 0);
        assert_eq!(read_bits(&row, 11, 8), 0);
    }

    #[test]
    fn read_write_straddles_words() {
        let mut row = vec![0u64; 3];
        let v: u128 = 0xDEAD_BEEF_CAFE_F00D_1234_5678_9ABC_DEF0;
        write_bits(&mut row, 60, 128, v);
        assert_eq!(read_bits(&row, 60, 128), v);
        // Neighbouring bits untouched.
        assert_eq!(read_bits(&row, 0, 60), 0);
    }

    #[test]
    fn overwrite_clears_old_bits() {
        let mut row = vec![u64::MAX; 2];
        write_bits(&mut row, 10, 16, 0);
        assert_eq!(read_bits(&row, 10, 16), 0);
        assert_eq!(read_bits(&row, 0, 10), low_mask(10));
        assert_eq!(read_bits(&row, 26, 16), low_mask(16));
    }

    #[test]
    fn value_truncated_to_width() {
        let mut row = vec![0u64; 1];
        write_bits(&mut row, 0, 4, 0xFF);
        assert_eq!(read_bits(&row, 0, 8), 0x0F);
    }

    #[test]
    fn zero_width_is_noop() {
        let mut row = vec![0xFFFF_FFFF_FFFF_FFFFu64];
        write_bits(&mut row, 5, 0, 0x123);
        assert_eq!(read_bits(&row, 5, 0), 0);
        assert_eq!(row[0], u64::MAX);
    }

    /// Bit-at-a-time reference for cross-checking both `read_bits` paths.
    fn read_bits_reference(words: &[u64], offset: usize, width: u32) -> u128 {
        let mut v = 0u128;
        for i in 0..width as usize {
            let bit = offset + i;
            v |= u128::from(words[bit / 64] >> (bit % 64) & 1) << i;
        }
        v
    }

    #[test]
    fn fast_and_general_paths_agree() {
        // A fixed pseudo-random row; every (offset, width) combination with
        // width <= 64 exercises either the single-word fast path or the
        // straddling loop, and both must agree with the reference.
        let row: Vec<u64> = (0..4u64)
            .map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i * 2 + 1))
            .collect();
        for offset in 0..192 {
            for width in [1u32, 5, 17, 32, 33, 63, 64] {
                if offset + width as usize > 256 {
                    continue;
                }
                assert_eq!(
                    read_bits(&row, offset, width),
                    read_bits_reference(&row, offset, width),
                    "offset {offset} width {width}"
                );
                // Round-trip through write_bits on a dirty row.
                let mut scratch = vec![u64::MAX; 4];
                let v = read_bits(&row, offset, width);
                write_bits(&mut scratch, offset, width, v);
                assert_eq!(read_bits(&scratch, offset, width), v);
                // Neighbouring bits untouched.
                if offset > 0 {
                    assert_eq!(read_bits(&scratch, 0, 1), 1);
                }
            }
        }
    }

    /// Bit-at-a-time reference writer: the write-path twin of
    /// `read_bits_reference`, clearing and setting one bit at a time.
    fn write_bits_reference(words: &mut [u64], offset: usize, width: u32, value: u128) {
        for i in 0..width as usize {
            let bit = offset + i;
            if (value >> i) & 1 == 1 {
                words[bit / 64] |= 1 << (bit % 64);
            } else {
                words[bit / 64] &= !(1 << (bit % 64));
            }
        }
    }

    #[test]
    fn word_boundary_widths_exhaustive() {
        // The word-boundary width family (63/64/65 — one bit short of a
        // word, exactly a word, one bit past) plus the 96/127/128 wide
        // ladder, at EVERY offset of a 9-word row. That covers fields
        // that start at, end at, and straddle word boundaries and the
        // 512-bit cache-line boundary (rows are line-aligned, so bit 512
        // is a line edge). Reads must agree with the bit-at-a-time
        // reference; writes must produce the reference writer's whole-row
        // image on clean and dirty backgrounds alike (no neighbouring bit
        // disturbed, no stale bit surviving).
        let row: Vec<u64> = (0..9u64)
            .map(|i| {
                0xA5A5_5A5A_DEAD_BEEFu64
                    .rotate_left(u32::try_from(i).unwrap() * 7)
                    .wrapping_add(i)
            })
            .collect();
        let total = row.len() * 64;
        for width in [63u32, 64, 65, 96, 127, 128] {
            for offset in 0..=(total - width as usize) {
                assert_eq!(
                    read_bits(&row, offset, width),
                    read_bits_reference(&row, offset, width),
                    "read offset {offset} width {width}"
                );
                // A value with structure on both ends of the field.
                let v =
                    read_bits(&row, offset, width) ^ (low_mask(width) & !(low_mask(width) >> 3));
                for bg in [0u64, u64::MAX, 0x0123_4567_89AB_CDEF] {
                    let mut got = vec![bg; row.len()];
                    let mut want = vec![bg; row.len()];
                    write_bits(&mut got, offset, width, v);
                    write_bits_reference(&mut want, offset, width, v);
                    assert_eq!(
                        got, want,
                        "write offset {offset} width {width} bg {bg:#018x}"
                    );
                }
            }
        }
    }

    #[test]
    fn aligned_full_word_round_trip() {
        let mut row = vec![0u64; 2];
        write_bits(&mut row, 64, 64, u128::from(u64::MAX));
        assert_eq!(row, vec![0, u64::MAX]);
        assert_eq!(read_bits(&row, 64, 64), u128::from(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "extends past the row")]
    fn out_of_bounds_read_rejected() {
        let row = vec![0u64; 1];
        let _ = read_bits(&row, 60, 8);
    }

    #[test]
    #[should_panic(expected = "exceeds 128 bits")]
    fn oversized_width_rejected() {
        let row = vec![0u64; 4];
        let _ = read_bits(&row, 0, 129);
    }
}
