//! Pins the degradation ladder: deadline shedding never returns partial or
//! stale results, admission control rejects on a full queue, duplicate
//! in-flight keys coalesce, and deep telemetry sheds first.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ca_ram_core::engine::{EngineOutcome, EngineReport, SearchEngine};
use ca_ram_core::error::Result;
use ca_ram_core::index::RangeSelect;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::table::{CaRamTable, TableConfig};
use ca_ram_service::{
    AdmissionError, SearchService, ServiceConfig, ServiceOp, ServiceReply, ShedReason,
};

const KEY_BITS: u32 = 32;

fn table() -> CaRamTable {
    let layout = RecordLayout::new(KEY_BITS, false, 16);
    let config = TableConfig::single_slice(5, 8 * layout.slot_bits(), layout);
    CaRamTable::new(config, Box::new(RangeSelect::new(0, 5))).expect("valid config")
}

/// An engine that stalls each search until released — makes queue build-up
/// deterministic so admission/coalescing behavior can be pinned.
struct SlowEngine {
    inner: CaRamTable,
    delay: Duration,
    searches: Arc<AtomicU64>,
}

impl SlowEngine {
    fn boxed(delay: Duration, searches: Arc<AtomicU64>) -> Box<dyn SearchEngine> {
        Box::new(Self {
            inner: table(),
            delay,
            searches,
        })
    }
}

impl SearchEngine for SlowEngine {
    fn name(&self) -> &str {
        "slow-table"
    }
    fn key_bits(&self) -> u32 {
        self.inner.key_bits()
    }
    fn search(&self, key: &SearchKey) -> EngineOutcome {
        self.searches.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(self.delay);
        self.inner.search(key).into()
    }
    fn insert(&mut self, record: Record) -> Result<()> {
        self.inner.insert(record).map(|_| ())
    }
    fn delete(&mut self, key: &TernaryKey) -> u32 {
        self.inner.delete(key)
    }
    fn occupancy(&self) -> EngineReport {
        self.inner.occupancy()
    }
}

#[test]
fn expired_deadlines_shed_and_never_return_results() {
    let service = SearchService::new(ServiceConfig::single_shard(), vec![Box::new(table())])
        .expect("valid service");
    let value = 0xFACEu128;
    service
        .insert_sync(Record::new(TernaryKey::binary(value, KEY_BITS), 77))
        .expect("fits");

    let probe = ServiceOp::Search(SearchKey::new(value, KEY_BITS));
    // A live deadline serves normally...
    let live = service
        .try_submit_with_deadline(probe, Some(Instant::now() + Duration::from_secs(30)))
        .expect("queue empty")
        .wait();
    assert_eq!(
        match live.reply {
            ServiceReply::Search(outcome) => outcome.hit.map(|h| h.data),
            other => panic!("live search answered with {other:?}"),
        },
        Some(77)
    );

    // ...an already-expired deadline is shed: no hit, no miss, no partial
    // result, and the engine is never probed for it.
    let searches_before = service.snapshot().totals().searches;
    let expired = service
        .try_submit_with_deadline(probe, Some(Instant::now() - Duration::from_millis(1)))
        .expect("queue empty")
        .wait();
    assert_eq!(
        expired.reply,
        ServiceReply::Shed(ShedReason::DeadlineExpired),
        "an expired request must shed, not serve"
    );
    let totals = service.snapshot().totals();
    assert_eq!(
        totals.searches, searches_before,
        "a shed request must never touch the engine"
    );
    assert_eq!(totals.shed_deadline, 1);

    // Writes shed the same way: the engine state must not change.
    let expired_insert = service
        .try_submit_with_deadline(
            ServiceOp::Insert(Record::new(TernaryKey::binary(0xDEAD, KEY_BITS), 1)),
            Some(Instant::now() - Duration::from_millis(1)),
        )
        .expect("queue empty")
        .wait();
    assert_eq!(
        expired_insert.reply,
        ServiceReply::Shed(ShedReason::DeadlineExpired)
    );
    assert!(
        service
            .search_sync(&SearchKey::new(0xDEAD, KEY_BITS))
            .hit
            .is_none(),
        "a shed insert must leave no trace"
    );
}

#[test]
fn configured_default_deadline_sheds_queued_requests_under_stall() {
    // 5ms default deadline over an engine that takes ~40ms per search,
    // drained one request per batch: the first drained request stalls the
    // worker; everything queued behind it expires and must shed — with zero
    // engine probes spent on them.
    let searches = Arc::new(AtomicU64::new(0));
    let config = ServiceConfig {
        shards: 1,
        queue_depth: 64,
        batch_max: 1,
        default_deadline: Some(Duration::from_millis(5)),
        ..ServiceConfig::single_shard()
    };
    let service = SearchService::new(
        config,
        vec![SlowEngine::boxed(
            Duration::from_millis(40),
            Arc::clone(&searches),
        )],
    )
    .expect("valid service");

    let tickets: Vec<_> = (0..12u128)
        .map(|i| {
            service
                .try_submit(ServiceOp::Search(SearchKey::new(i, KEY_BITS)))
                .expect("queue has room")
        })
        .collect();
    let mut shed = 0u64;
    let mut served = 0u64;
    for ticket in tickets {
        match ticket.wait().reply {
            ServiceReply::Shed(ShedReason::DeadlineExpired) => shed += 1,
            ServiceReply::Search(_) => served += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(shed + served, 12);
    assert!(shed > 0, "queued requests behind the stall must shed");
    assert_eq!(
        searches.load(Ordering::Relaxed),
        served,
        "every shed request must be answered without an engine probe"
    );
}

#[test]
fn full_queue_rejects_at_admission() {
    let searches = Arc::new(AtomicU64::new(0));
    let config = ServiceConfig {
        shards: 1,
        queue_depth: 4,
        batch_max: 2,
        ..ServiceConfig::single_shard()
    };
    let service = SearchService::new(
        config,
        vec![SlowEngine::boxed(
            Duration::from_millis(50),
            Arc::clone(&searches),
        )],
    )
    .expect("valid service");

    // Fire enough non-blocking submissions to overrun queue + in-flight
    // batch; the worker wakes at most twice in this window (50ms/probe).
    let mut admitted = Vec::new();
    let mut rejections = 0u64;
    let mut saw_queue_full = false;
    for i in 0..64u128 {
        match service.try_submit(ServiceOp::Search(SearchKey::new(i, KEY_BITS))) {
            Ok(ticket) => admitted.push(ticket),
            Err(AdmissionError::QueueFull { shard, depth }) => {
                rejections += 1;
                saw_queue_full = true;
                assert_eq!(shard, 0);
                assert_eq!(depth, 4);
            }
            Err(AdmissionError::ShuttingDown) => panic!("service is not shutting down"),
        }
    }
    assert!(
        rejections > 0 && saw_queue_full,
        "a full bounded queue must reject, not buffer unboundedly"
    );
    assert_eq!(service.snapshot().totals().rejected, rejections);
    for ticket in admitted {
        match ticket.wait().reply {
            ServiceReply::Search(_) => {}
            other => panic!("admitted search answered with {other:?}"),
        }
    }
}

#[test]
fn duplicate_inflight_keys_coalesce_past_the_ladder_rung() {
    let searches = Arc::new(AtomicU64::new(0));
    let config = ServiceConfig {
        shards: 1,
        queue_depth: 32,
        batch_max: 32,
        batch_threads: 1,
        default_deadline: None,
        // Coalesce from the first queued request onward.
        telemetry_shed_fill: 0.0,
        coalesce_fill: 0.0,
        ..ServiceConfig::default()
    };
    let service = SearchService::new(
        config,
        vec![SlowEngine::boxed(
            Duration::from_millis(100),
            Arc::clone(&searches),
        )],
    )
    .expect("valid service");
    service
        .insert_sync(Record::new(TernaryKey::binary(0x77, KEY_BITS), 5))
        .expect("fits");

    // Occupy the worker with a decoy, then queue 8 identical + 1 distinct
    // searches while it sleeps; they drain as one batch.
    let decoy = service
        .try_submit(ServiceOp::Search(SearchKey::new(0x1, KEY_BITS)))
        .expect("room");
    std::thread::sleep(Duration::from_millis(10)); // let the worker pick it up
    let dup_tickets: Vec<_> = (0..8)
        .map(|_| {
            service
                .try_submit(ServiceOp::Search(SearchKey::new(0x77, KEY_BITS)))
                .expect("room")
        })
        .collect();
    let distinct = service
        .try_submit(ServiceOp::Search(SearchKey::new(0x78, KEY_BITS)))
        .expect("room");

    let _ = decoy.wait();
    let mut coalesced_completions = 0;
    for ticket in dup_tickets {
        let completion = ticket.wait();
        match completion.reply {
            ServiceReply::Search(outcome) => {
                assert_eq!(outcome.hit.map(|h| h.data), Some(5));
            }
            other => panic!("duplicate search answered with {other:?}"),
        }
        if completion.coalesced {
            coalesced_completions += 1;
        }
    }
    let _ = distinct.wait();

    let totals = service.snapshot().totals();
    assert!(
        totals.coalesced >= 7,
        "8 identical queued keys must share one probe (coalesced {})",
        totals.coalesced
    );
    assert_eq!(
        coalesced_completions, 8,
        "every duplicate completion is flagged as coalesced"
    );
    // Engine probes: decoy + one shared probe + the distinct key (the 8
    // duplicates cost one). Insert path does not count as a search.
    assert_eq!(searches.load(Ordering::Relaxed), 3);
}

#[test]
fn deep_telemetry_sheds_first_on_the_ladder() {
    // Rung 1 engaged from depth 0: waits are counted as shed, and the wait
    // histogram stays empty while requests still serve correctly.
    let shed_everything = ServiceConfig {
        telemetry_shed_fill: 0.0,
        coalesce_fill: 1.0,
        ..ServiceConfig::single_shard()
    };
    let service =
        SearchService::new(shed_everything, vec![Box::new(table())]).expect("valid service");
    service
        .insert_sync(Record::new(TernaryKey::binary(0x9, KEY_BITS), 3))
        .expect("fits");
    for _ in 0..20 {
        assert_eq!(
            service
                .search_sync(&SearchKey::new(0x9, KEY_BITS))
                .hit
                .map(|h| h.data),
            Some(3)
        );
    }
    let totals = service.snapshot().totals();
    assert_eq!(
        totals.telemetry_shed, totals.accepted,
        "rung 1 sheds the deep telemetry of every completion"
    );

    // With the rung disengaged (threshold = full queue), waits are recorded.
    let keep_everything = ServiceConfig {
        telemetry_shed_fill: 1.0,
        coalesce_fill: 1.0,
        ..ServiceConfig::single_shard()
    };
    let service =
        SearchService::new(keep_everything, vec![Box::new(table())]).expect("valid service");
    service
        .insert_sync(Record::new(TernaryKey::binary(0x9, KEY_BITS), 3))
        .expect("fits");
    for _ in 0..20 {
        let _ = service.search_sync(&SearchKey::new(0x9, KEY_BITS));
    }
    assert_eq!(service.snapshot().totals().telemetry_shed, 0);
}
