//! Hardware cost models for CA-RAM and its CAM/TCAM comparison targets.
//!
//! This crate implements the analytical area, power, timing, and synthesis
//! models from Sections 3.3–3.4 of *CA-RAM: A High-Performance Memory
//! Substrate for Search-Intensive Applications* (Cho et al., ISPASS 2007).
//! The models are anchored to the published 130 nm silicon datapoints the
//! paper itself cites (Noda '03/'05 TCAMs, Morishita '05 embedded DRAM,
//! Yamagata '92 CAM) and to the paper's own 0.16 µm match-processor
//! synthesis (Table 1).
//!
//! # Example
//!
//! Price a DRAM-based ternary CA-RAM against a 6T dynamic TCAM of the same
//! capacity:
//!
//! ```
//! use ca_ram_hwmodel::{
//!     AreaModel, CamGeometry, CaRamGeometry, CellKind, Megahertz, PowerModel,
//! };
//!
//! let caram = CaRamGeometry::new(16, 256, 512, CellKind::EmbeddedDram, 8);
//! let tcam = CamGeometry::new(16_384, 64, CellKind::TcamDynamic6T);
//!
//! let area = AreaModel::new();
//! assert!(area.cam_device_area(&tcam).value() > area.caram_device_area(&caram).value());
//!
//! let power = PowerModel::new();
//! let p_caram = power.caram_search_power(&caram, Megahertz::new(200.0));
//! let p_tcam = power.cam_search_power(&tcam, Megahertz::new(143.0));
//! assert!(p_tcam.value() / p_caram.value() > 7.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::module_name_repetitions)]

pub mod area;
pub mod cells;
pub mod geometry;
pub mod power;
pub mod synth;
pub mod technology;
pub mod timing;
pub mod units;

pub use area::{AreaModel, MATCH_PROCESSOR_OVERHEAD};
pub use cells::{CellDatapoint, CellKind, CellLibrary};
pub use geometry::{CaRamGeometry, CamGeometry};
pub use power::{CaRamSearchEnergy, CamSearchEnergy, PowerModel};
pub use synth::{MatchProcessorParams, MatchStage, StageResult, SynthesisModel, SynthesisReport};
pub use technology::ProcessNode;
pub use timing::{CaRamTiming, CamTiming};
pub use units::{
    Femtojoules, MegaSearchesPerSecond, Megahertz, Milliwatts, Nanoseconds, Picojoules,
    SquareMicrons, SquareMillimeters,
};
