//! Reproduces **Table 3**: four CA-RAM designs for trigram lookup in a
//! speech recognition system (Sec. 4.2).
//!
//! Builds each design from a synthetic Sphinx-III-like trigram database
//! (5,385,231 entries of 13–16 characters by default — pass `--entries` for
//! a faster scaled run) hashed with the DJB string hash, and reports load
//! factor, overflowing buckets, spilled records, and AMAL.
//!
//! Usage: `table3 [--entries N] [--seed S]`

use ca_ram_bench::designs::{build_trigram_table, load_trigrams, trigram_designs};
use ca_ram_bench::{rule, trigram_config, write_text_atomic, Cli, Result};
use ca_ram_workloads::trigram::generate;

fn main() -> Result<()> {
    let cli = Cli::from_env();
    let entries: usize = cli.parse("entries", 5_385_231)?;
    let seed: u64 = cli.parse("seed", 0x5F19)?;
    let config = trigram_config(entries, Some(seed));

    println!("Table 3: Designs of CA-RAM for trigram lookup in speech recognition");
    println!(
        "(synthetic trigram database, {} entries of {}-{} chars, seed {seed:#x})\n",
        config.entries, config.min_chars, config.max_chars
    );
    let data = generate(&config);

    let mut csv = String::from("design,r,c,slices,arrangement,alpha,overflow_pct,spill_pct,amal\n");
    println!(
        "{:^6} {:>3} {:>8} {:>8} {:>11} {:>6} {:>11} {:>9} {:>7}",
        "Design", "R", "C", "#Slices", "Arrangement", "alpha", "Overflow(%)", "Spill(%)", "AMAL"
    );
    rule(82);
    for d in trigram_designs() {
        let mut t = build_trigram_table(&d);
        load_trigrams(&mut t, &data);
        let report = t.load_report();
        println!(
            "{:^6} {:>3} {:>8} {:>8} {:>11} {:>6.2} {:>11.2} {:>9.2} {:>7.3}",
            d.name,
            d.rows_log2,
            format!("128x{}", d.keys_per_row),
            d.slices,
            d.arrangement_label(),
            report.load_factor(),
            report.overflowing_buckets_pct(),
            report.spilled_records_pct(),
            report.amal_uniform,
        );
        csv.push_str(&format!(
            "{},{},128x{},{},{},{:.4},{:.4},{:.4},{:.4}\n",
            d.name,
            d.rows_log2,
            d.keys_per_row,
            d.slices,
            d.arrangement_label(),
            report.load_factor(),
            report.overflowing_buckets_pct(),
            report.spilled_records_pct(),
            report.amal_uniform,
        ));
    }
    if let Some(path) = cli.value("csv") {
        write_text_atomic(path, &csv)?;
        println!("(wrote {path})");
    }
    rule(82);
    println!("\nPaper (full scale): A: α=0.86, 5.99% overflow, 0.34% spilled, AMAL 1.003;");
    println!(
        "B: α=0.68, 0.02%, 0.00%, 1.000; C: α=0.86, 0.15%, 0.00%, 1.000; D: α=0.68, 0, 0, 1.000."
    );
    Ok(())
}
