//! Threaded stress test: mixed search/insert/delete traffic from many
//! client threads through the shard router, checked against a serially
//! replayed oracle.
//!
//! Key space is partitioned per client thread, so each thread's operation
//! order on its own keys is total; per-shard FIFO then guarantees the
//! service observes exactly that order per key. Each thread replays its own
//! ops into a `ReferenceModel`, and the final service state must match the
//! union of the models.

use ca_ram_core::engine::SearchEngine;
use ca_ram_core::index::RangeSelect;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::oracle::ReferenceModel;
use ca_ram_core::table::{CaRamTable, TableConfig};
use ca_ram_service::{SearchService, ServiceConfig, ServiceOp, ServiceReply};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const KEY_BITS: u32 = 32;
const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 1_500;
/// Keys per thread; small enough that deletes re-hit live keys.
const KEYS_PER_THREAD: u128 = 64;

/// A binary-keyed table shard: 64 buckets x 16 slots, hashed on low bits.
fn shard_table() -> Box<dyn SearchEngine> {
    let layout = RecordLayout::new(KEY_BITS, false, 16);
    let config = TableConfig::single_slice(6, 16 * layout.slot_bits(), layout);
    Box::new(CaRamTable::new(config, Box::new(RangeSelect::new(0, 6))).expect("valid config"))
}

/// Thread `t` owns key values `0x1000_0000 + t + i * THREADS`.
fn key_of(thread: usize, i: u128) -> u128 {
    0x1000_0000 + thread as u128 + i * THREADS as u128
}

#[test]
fn concurrent_mixed_ops_match_serially_replayed_oracle() {
    let config = ServiceConfig {
        shards: 4,
        queue_depth: 256,
        batch_max: 32,
        batch_threads: 1,
        default_deadline: None,
        telemetry_shed_fill: 0.5,
        coalesce_fill: 0.75,
        ..ServiceConfig::default()
    };
    let engines = (0..config.shards).map(|_| shard_table()).collect();
    let service = SearchService::new(config, engines).expect("valid service");

    // Each thread drives its own keys and replays the ops it *observed
    // succeeding* into its own oracle.
    let mut models: Vec<ReferenceModel> = Vec::with_capacity(THREADS);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|thread| {
                let service = &service;
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0xC0FFEE + thread as u64);
                    let mut model = ReferenceModel::new(KEY_BITS);
                    for op in 0..OPS_PER_THREAD {
                        let value = key_of(thread, rng.gen_range(0..KEYS_PER_THREAD));
                        match rng.gen_range(0..10u32) {
                            // 40% inserts (half sorted), 20% deletes, 40% searches.
                            0 | 1 => {
                                let record =
                                    Record::new(TernaryKey::binary(value, KEY_BITS), op as u64);
                                if service.insert_sync(record).is_ok() {
                                    model.insert(record);
                                }
                            }
                            2 | 3 => {
                                let record =
                                    Record::new(TernaryKey::binary(value, KEY_BITS), op as u64);
                                if service.insert_sorted_sync(record).is_ok() {
                                    model.insert(record);
                                }
                            }
                            4 | 5 => {
                                let key = TernaryKey::binary(value, KEY_BITS);
                                let removed = service.delete_sync(&key);
                                let expected = model.delete(&key);
                                assert_eq!(
                                    removed, expected,
                                    "thread {thread} delete of {value:#x} removed {removed}, \
                                     oracle says {expected}"
                                );
                            }
                            _ => {
                                let key = SearchKey::new(value, KEY_BITS);
                                let outcome = service.search_sync(&key);
                                let expected = model.expected(&key);
                                assert!(
                                    expected.admits(outcome.hit.map(|h| h.data)),
                                    "thread {thread} search of {value:#x} diverged mid-stream"
                                );
                            }
                        }
                    }
                    model
                })
            })
            .collect();
        for handle in handles {
            models.push(handle.join().expect("client thread panicked"));
        }
    });

    // Final state: every owned key answers exactly as its thread's oracle
    // says, and total occupancy equals the union of the oracles.
    let mut live_records = 0u64;
    for (thread, model) in models.iter().enumerate() {
        live_records += model.len() as u64;
        for i in 0..KEYS_PER_THREAD {
            let key = SearchKey::new(key_of(thread, i), KEY_BITS);
            let outcome = service.search_sync(&key);
            let expected = model.expected(&key);
            assert!(
                expected.admits(outcome.hit.map(|h| h.data)),
                "thread {thread} key {i} diverged in final sweep"
            );
        }
    }
    assert_eq!(
        service.occupancy().records,
        Some(live_records),
        "occupancy must equal the union of the per-thread oracles"
    );

    let totals = service.snapshot().totals();
    assert_eq!(
        totals.accepted,
        (THREADS * OPS_PER_THREAD) as u64 + (THREADS as u128 * KEYS_PER_THREAD) as u64,
        "every submission (stream + final sweep) was admitted"
    );
    assert_eq!(totals.rejected, 0, "blocking submits never reject");
    assert_eq!(totals.shed_deadline, 0, "no deadlines were configured");
    service.shutdown();
}

#[test]
fn blocking_submitters_survive_a_tiny_queue() {
    // queue_depth 1 forces constant backpressure; nothing may be lost.
    let config = ServiceConfig {
        shards: 2,
        queue_depth: 1,
        batch_max: 4,
        ..ServiceConfig::default()
    };
    let engines = (0..config.shards).map(|_| shard_table()).collect();
    let service = SearchService::new(config, engines).expect("valid service");
    for i in 0..32u128 {
        let record = Record::new(TernaryKey::binary(0x2000 + i, KEY_BITS), i as u64);
        service.insert_sync(record).expect("fits");
    }
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for i in 0..200u128 {
                    let key = SearchKey::new(0x2000 + (i % 32), KEY_BITS);
                    let outcome = service.search_sync(&key);
                    assert_eq!(outcome.hit.map(|h| h.data), Some((i % 32) as u64));
                }
            });
        }
    });
    let totals = service.snapshot().totals();
    assert_eq!(totals.rejected, 0);
    assert_eq!(totals.accepted, 32 + 4 * 200);
}

#[test]
fn shutdown_finishes_queued_work() {
    let config = ServiceConfig {
        shards: 1,
        queue_depth: 512,
        ..ServiceConfig::default()
    };
    let service = SearchService::new(config, vec![shard_table()]).expect("valid service");
    let record = Record::new(TernaryKey::binary(0xAB, KEY_BITS), 9);
    service.insert_sync(record).expect("fits");
    let tickets: Vec<_> = (0..64)
        .map(|_| {
            service
                .try_submit(ServiceOp::Search(SearchKey::new(0xAB, KEY_BITS)))
                .expect("queue has room")
        })
        .collect();
    service.shutdown();
    for ticket in tickets {
        // Graceful shutdown serves what was queued; nothing may hang.
        match ticket.wait().reply {
            ServiceReply::Search(outcome) => {
                assert_eq!(outcome.hit.map(|h| h.data), Some(9));
            }
            other => panic!("queued search answered with {other:?}"),
        }
    }
}

#[test]
fn writes_and_reads_interleave_in_submission_order_per_key() {
    // insert → search → delete → search on one key must observe program
    // order even though every step crosses the queue and worker thread.
    let service = SearchService::new(ServiceConfig::single_shard(), vec![shard_table()])
        .expect("valid service");
    for round in 0..50u64 {
        let value = 0x5000 + u128::from(round);
        let key = TernaryKey::binary(value, KEY_BITS);
        let probe = SearchKey::new(value, KEY_BITS);
        service
            .insert_sync(Record::new(key, round))
            .expect("table has room");
        assert_eq!(
            service.search_sync(&probe).hit.map(|h| h.data),
            Some(round),
            "insert not visible to the next search"
        );
        assert_eq!(service.delete_sync(&key), 1);
        assert!(
            service.search_sync(&probe).hit.is_none(),
            "delete not visible to the next search"
        );
    }
}
