//! Synthetic BGP routing tables (Sec. 4.1 substitution).
//!
//! The paper maps the RIPE RIS routing table of AS1103 (186,760 prefixes,
//! rrc00, 2006) onto CA-RAM. That dump is not redistributable here, so this
//! module generates synthetic tables that preserve the three properties the
//! experiments exercise:
//!
//! 1. the **prefix-length distribution** (Huston \[10\]: ≥98% of prefixes are
//!    at least 16 bits long, the mode is /24, the minimum is /8; short
//!    prefixes are rare in absolute terms but each duplicates into
//!    `2^min(R, 16-len)` buckets under bit-selection hashing — the source
//!    of the paper's ~6.4% duplicate count);
//! 2. the **deaggregation structure**: per-/16-block prefix counts are
//!    strongly dispersed (a few blocks are deaggregated into hundreds of
//!    /17–/24 more-specifics while most hold a handful). Under the paper's
//!    hash — bits taken from the first 16 address bits — a block lands
//!    whole in one bucket, so bucket loads inherit this dispersion. We
//!    model block sizes as lognormal with coefficient of variation
//!    [`BgpConfig::block_size_cv`]; the paper's own Table 2 overflow
//!    column pins the aggregate variance-to-mean ratio at ≈ 80 (see
//!    `EXPERIMENTS.md`), which CV ≈ 2 reproduces across all six designs.
//!
//! Real data can be substituted at any time via [`parse_table`].

use std::collections::HashSet;

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::prefix::Ipv4Prefix;

/// Approximate prefix-length distribution of a 2006 core routing table for
/// lengths ≥ 16 (fractions; normalized at use). Source: Huston \[10\] and
/// contemporary RIS snapshots.
const LONG_LENGTH_WEIGHTS: [(u8, f64); 17] = [
    (16, 0.065),
    (17, 0.025),
    (18, 0.040),
    (19, 0.050),
    (20, 0.055),
    (21, 0.045),
    (22, 0.065),
    (23, 0.060),
    (24, 0.520),
    (25, 0.004),
    (26, 0.004),
    (27, 0.003),
    (28, 0.003),
    (29, 0.003),
    (30, 0.002),
    (31, 0.0005),
    (32, 0.0005),
];

/// Absolute count model for short prefixes (8 ≤ len < 16) in a 186 K-entry
/// table, scaled linearly with table size.
const SHORT_LENGTH_COUNTS: [(u8, f64); 8] = [
    (8, 19.0),
    (9, 4.0),
    (10, 9.0),
    (11, 28.0),
    (12, 56.0),
    (13, 112.0),
    (14, 243.0),
    (15, 448.0),
];

/// Reference table size the short-prefix counts are calibrated at.
const REFERENCE_PREFIXES: f64 = 186_760.0;

/// Configuration of the synthetic BGP table generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BgpConfig {
    /// Number of unique prefixes to generate (the paper's table: 186,760).
    pub prefixes: usize,
    /// Number of distinct populated /16 blocks.
    pub blocks: usize,
    /// Coefficient of variation (σ/µ) of per-block prefix counts
    /// (lognormal). Larger = more deaggregation skew = more bucket
    /// overflow.
    pub block_size_cv: f64,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl Default for BgpConfig {
    fn default() -> Self {
        Self::as1103_like()
    }
}

impl BgpConfig {
    /// The calibrated AS1103-like configuration used by the Table 2
    /// reproduction (see `EXPERIMENTS.md` for the calibration run).
    #[must_use]
    pub fn as1103_like() -> Self {
        Self {
            prefixes: 186_760,
            blocks: 8_000,
            block_size_cv: 1.80,
            seed: 0x1103,
        }
    }

    /// The same shape at a reduced scale (for tests and quick runs).
    ///
    /// # Panics
    ///
    /// Panics if `prefixes` is zero.
    #[must_use]
    pub fn scaled(prefixes: usize) -> Self {
        assert!(prefixes > 0, "need at least one prefix");
        let full = Self::as1103_like();
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let blocks = ((full.blocks as f64) * (prefixes as f64 / full.prefixes as f64))
            .ceil()
            .max(16.0) as usize;
        Self {
            prefixes,
            blocks,
            ..full
        }
    }
}

/// Generates a synthetic routing table: unique prefixes, sorted by
/// (descending length, ascending address) — the LPM build order of Sec. 4.1.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero prefixes/blocks,
/// non-positive shape parameters, or a combination that cannot produce
/// enough unique prefixes).
#[must_use]
pub fn generate(config: &BgpConfig) -> Vec<Ipv4Prefix> {
    assert!(config.prefixes > 0, "need at least one prefix");
    assert!(config.blocks > 0, "need at least one block");
    assert!(
        config.block_size_cv > 0.0 && config.block_size_cv.is_finite(),
        "block-size CV must be positive"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // --- the populated /16 blocks and their target sizes -------------------
    let blocks: Vec<u16> = sample_distinct_u16(&mut rng, config.blocks);

    #[allow(clippy::cast_precision_loss)]
    let scale = config.prefixes as f64 / REFERENCE_PREFIXES;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let short_total: usize = SHORT_LENGTH_COUNTS
        .iter()
        .map(|&(_, c)| (c * scale).round() as usize)
        .sum();
    let long_total = config.prefixes.saturating_sub(short_total);

    // Block sizes: lognormal with the configured CV, scaled to the total.
    let sigma = (1.0 + config.block_size_cv * config.block_size_cv)
        .ln()
        .sqrt();
    let raw: Vec<f64> = (0..config.blocks)
        .map(|_| (sigma * gaussian(&mut rng) - sigma * sigma / 2.0).exp())
        .collect();
    let raw_sum: f64 = raw.iter().sum();
    #[allow(clippy::cast_precision_loss)]
    let long_total_f = long_total.max(config.blocks) as f64;
    let sizes: Vec<usize> = raw
        .into_iter()
        .map(|r| {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            {
                (r / raw_sum * long_total_f).round().max(1.0) as usize
            }
        })
        .collect();

    // --- generate long prefixes per block -----------------------------------
    let lengths: Vec<u8> = LONG_LENGTH_WEIGHTS.iter().map(|&(l, _)| l).collect();
    let length_picker = WeightedIndex::new(LONG_LENGTH_WEIGHTS.iter().map(|&(_, w)| w))
        .expect("weights are positive");
    let mut seen: HashSet<(u32, u8)> = HashSet::with_capacity(config.prefixes * 2);
    let mut out: Vec<Ipv4Prefix> = Vec::with_capacity(config.prefixes);
    for (block, &size) in blocks.iter().zip(&sizes) {
        let base = u32::from(*block) << 16;
        let mut placed = 0usize;
        let mut attempts = 0u64;
        while placed < size {
            attempts += 1;
            if attempts > 40 * size as u64 + 1024 {
                break; // block space exhausted (tiny hot block overlap)
            }
            let len = lengths[length_picker.sample(&mut rng)];
            let addr = base | (rng.gen::<u32>() & 0xFFFF);
            let p = Ipv4Prefix::truncating(addr, len);
            if seen.insert((p.addr(), p.len())) {
                out.push(p);
                placed += 1;
            }
        }
    }

    // --- short prefixes: aggregates of popular blocks ------------------------
    for &(len, count) in &SHORT_LENGTH_COUNTS {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let want = (count * scale).round() as usize;
        let mut placed = 0usize;
        let mut attempts = 0u64;
        while placed < want {
            attempts += 1;
            if attempts > 200 * want as u64 + 1024 {
                break; // the space of /8s etc. is simply exhausted
            }
            let block = blocks[rng.gen_range(0..blocks.len())];
            let p = Ipv4Prefix::truncating(u32::from(block) << 16, len);
            if seen.insert((p.addr(), p.len())) {
                out.push(p);
                placed += 1;
            }
        }
    }

    // --- trim or top up to the exact requested count -------------------------
    while out.len() > config.prefixes {
        out.pop();
    }
    let mut attempts = 0u64;
    while out.len() < config.prefixes {
        attempts += 1;
        assert!(
            attempts < (config.prefixes as u64).saturating_mul(200).max(1 << 20),
            "generator cannot find enough unique prefixes; config too tight"
        );
        let block = blocks[rng.gen_range(0..blocks.len())];
        let len = lengths[length_picker.sample(&mut rng)];
        let addr = (u32::from(block) << 16) | (rng.gen::<u32>() & 0xFFFF);
        let p = Ipv4Prefix::truncating(addr, len);
        if seen.insert((p.addr(), p.len())) {
            out.push(p);
        }
    }

    // Descending prefix length, then address: the LPM insertion order.
    out.sort_by(|a, b| b.len().cmp(&a.len()).then(a.addr().cmp(&b.addr())));
    out
}

/// Parses a routing table from text: one `a.b.c.d/len` per line, blank
/// lines and `#` comments ignored. Use this to run the experiments on a
/// real RIS/route-views dump.
///
/// # Errors
///
/// Returns the first offending line on parse failure.
pub fn parse_table(text: &str) -> Result<Vec<Ipv4Prefix>, crate::prefix::ParsePrefixError> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(line.parse()?);
    }
    Ok(out)
}

fn sample_distinct_u16(rng: &mut SmallRng, n: usize) -> Vec<u16> {
    assert!(n <= 65_536, "at most 65,536 distinct /16 blocks exist");
    // Partial Fisher-Yates over the 16-bit space.
    let mut all: Vec<u16> = (0..=u16::MAX).collect();
    for i in 0..n {
        let j = rng.gen_range(i..all.len());
        all.swap(i, j);
    }
    all.truncate(n);
    all
}

/// A standard normal sample (Box-Muller).
fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::length_histogram;

    fn small() -> Vec<Ipv4Prefix> {
        generate(&BgpConfig::scaled(20_000))
    }

    #[test]
    fn generates_requested_unique_count() {
        let table = small();
        assert_eq!(table.len(), 20_000);
        let mut set: Vec<(u32, u8)> = table.iter().map(|p| (p.addr(), p.len())).collect();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), 20_000, "prefixes must be unique");
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = generate(&BgpConfig::scaled(5_000));
        let b = generate(&BgpConfig::scaled(5_000));
        assert_eq!(a, b);
    }

    #[test]
    fn length_distribution_matches_huston() {
        let table = small();
        let h = length_histogram(&table);
        let total: u64 = h.iter().sum();
        // "over 98% of the prefixes ... are at least 16 bits long" [10].
        let ge16: u64 = h[16..].iter().sum();
        #[allow(clippy::cast_precision_loss)]
        let frac = ge16 as f64 / total as f64;
        assert!(frac > 0.98, "got {frac:.3}");
        // The minimum length is 8 (Sec. 4.1) and /24 dominates.
        assert_eq!(h[..8].iter().sum::<u64>(), 0);
        let max_len = (0..33).max_by_key(|&l| h[l]).unwrap();
        assert_eq!(max_len, 24);
    }

    #[test]
    fn sorted_for_lpm_build() {
        let table = small();
        for w in table.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
    }

    #[test]
    fn deaggregated_blocks_exist() {
        // The calibrated mixture must produce a population of hot /16
        // blocks holding >=100 more-specifics — the hot buckets of Table 2.
        let table = generate(&BgpConfig::as1103_like());
        let mut per_block = std::collections::HashMap::new();
        for p in &table {
            if p.len() >= 16 {
                *per_block.entry(p.addr() >> 16).or_insert(0u64) += 1;
            }
        }
        let hot = per_block.values().filter(|&&c| c >= 130).count();
        assert!(
            (100..800).contains(&hot),
            "expected a few hundred deaggregated blocks, got {hot}"
        );
        // And a heavy-tailed cold background.
        let max_cold = per_block.values().copied().max().unwrap_or(0);
        assert!(max_cold > 200);
    }

    #[test]
    fn duplicate_rate_matches_paper_band() {
        // Short prefixes (< /16) drive duplication: paper reports ~6.4%
        // additional entries under an 11-bit hash at positions 16..27.
        let table = generate(&BgpConfig::as1103_like());
        let r = 11u32;
        let dups: u64 = table
            .iter()
            .filter(|p| p.len() < 16)
            .map(|p| {
                let dc_hash_bits = (16 - u32::from(p.len())).min(r);
                (1u64 << dc_hash_bits) - 1
            })
            .sum();
        #[allow(clippy::cast_precision_loss)]
        let pct = 100.0 * dups as f64 / table.len() as f64;
        assert!((3.0..12.0).contains(&pct), "duplicate rate {pct:.1}%");
    }

    #[test]
    fn parse_table_round_trip() {
        let text = "# comment\n10.0.0.0/8\n\n192.168.0.0/16\n";
        let t = parse_table(text).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[1].to_string(), "192.168.0.0/16");
        assert!(parse_table("bogus/99").is_err());
    }

    #[test]
    fn scaled_config_shrinks_blocks() {
        let c = BgpConfig::scaled(1_000);
        assert!(c.blocks < BgpConfig::as1103_like().blocks);
        assert!(c.blocks >= 16);
    }
}
