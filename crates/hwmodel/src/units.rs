//! Newtype units for physical quantities used by the cost models.
//!
//! Every model in this crate returns values in explicit units so that callers
//! cannot accidentally mix, say, µm² with mm² ([C-NEWTYPE]). All units are
//! thin wrappers around `f64` with the arithmetic that is physically
//! meaningful for them (adding two areas is fine; adding an area to a power
//! is a compile error).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

macro_rules! unit {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Creates a new quantity from a raw value in this unit.
            ///
            /// # Panics
            ///
            /// Panics if `value` is negative or not finite; all quantities in
            /// this crate are physical magnitudes.
            #[must_use]
            pub fn new(value: f64) -> Self {
                assert!(
                    value.is_finite() && value >= 0.0,
                    concat!(stringify!($name), " must be finite and non-negative, got {}"),
                    value
                );
                Self(value)
            }

            /// Returns the raw value in this unit.
            #[must_use]
            pub fn value(self) -> f64 {
                self.0
            }

            /// The zero quantity.
            #[must_use]
            pub fn zero() -> Self {
                Self(0.0)
            }

            /// Returns the ratio `self / other` as a dimensionless number.
            ///
            /// # Panics
            ///
            /// Panics if `other` is zero.
            #[must_use]
            pub fn ratio_to(self, other: Self) -> f64 {
                assert!(other.0 != 0.0, "division by a zero quantity");
                self.0 / other.0
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self::new(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self::new(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self::new(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::zero(), Add::add)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}

unit!(
    /// An area in square micrometres (µm²).
    ///
    /// This is the natural unit for memory cells; convert to [`SquareMillimeters`]
    /// with [`Area::to_square_millimeters`](SquareMicrons::to_square_millimeters)
    /// for whole-device figures.
    SquareMicrons, "um^2"
);
unit!(
    /// An area in square millimetres (mm²), used for whole devices.
    SquareMillimeters, "mm^2"
);
unit!(
    /// A time duration in nanoseconds.
    Nanoseconds, "ns"
);
unit!(
    /// A clock frequency in megahertz.
    Megahertz, "MHz"
);
unit!(
    /// A power in milliwatts.
    Milliwatts, "mW"
);
unit!(
    /// An energy in femtojoules — the natural unit of per-cell search energy.
    Femtojoules, "fJ"
);
unit!(
    /// An energy in picojoules — the natural unit of per-access energy.
    Picojoules, "pJ"
);
unit!(
    /// A search throughput in million searches per second.
    MegaSearchesPerSecond, "Msearch/s"
);

impl SquareMicrons {
    /// Converts to square millimetres.
    #[must_use]
    pub fn to_square_millimeters(self) -> SquareMillimeters {
        SquareMillimeters::new(self.value() / 1.0e6)
    }
}

impl SquareMillimeters {
    /// Converts to square micrometres.
    #[must_use]
    pub fn to_square_microns(self) -> SquareMicrons {
        SquareMicrons::new(self.value() * 1.0e6)
    }
}

impl Femtojoules {
    /// Converts to picojoules.
    #[must_use]
    pub fn to_picojoules(self) -> Picojoules {
        Picojoules::new(self.value() / 1.0e3)
    }
}

impl Picojoules {
    /// Converts to femtojoules.
    #[must_use]
    pub fn to_femtojoules(self) -> Femtojoules {
        Femtojoules::new(self.value() * 1.0e3)
    }

    /// Average power dissipated when this energy is spent once per cycle of
    /// `clock`: `P = E × f`.
    #[must_use]
    pub fn at_rate(self, clock: Megahertz) -> Milliwatts {
        // pJ × MHz = 1e-12 J × 1e6 1/s = 1e-6 W = 1e-3 mW.
        Milliwatts::new(self.value() * clock.value() * 1.0e-3)
    }
}

impl Megahertz {
    /// The period of one clock cycle.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[must_use]
    pub fn period(self) -> Nanoseconds {
        assert!(
            self.value() > 0.0,
            "cannot take the period of a 0 MHz clock"
        );
        Nanoseconds::new(1.0e3 / self.value())
    }
}

impl Nanoseconds {
    /// The frequency whose period is this duration.
    ///
    /// # Panics
    ///
    /// Panics if the duration is zero.
    #[must_use]
    pub fn to_frequency(self) -> Megahertz {
        assert!(self.value() > 0.0, "cannot invert a 0 ns period");
        Megahertz::new(1.0e3 / self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_round_trip() {
        let a = SquareMicrons::new(2.5e6);
        assert!((a.to_square_millimeters().value() - 2.5).abs() < 1e-12);
        assert!((a.to_square_millimeters().to_square_microns().value() - 2.5e6).abs() < 1e-6);
    }

    #[test]
    fn energy_round_trip() {
        let e = Femtojoules::new(1500.0);
        assert!((e.to_picojoules().value() - 1.5).abs() < 1e-12);
        assert!((e.to_picojoules().to_femtojoules().value() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn power_from_energy_rate() {
        // 100 pJ per search at 200 MHz = 20 mW.
        let p = Picojoules::new(100.0).at_rate(Megahertz::new(200.0));
        assert!((p.value() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn period_inverts_frequency() {
        let f = Megahertz::new(200.0);
        assert!((f.period().value() - 5.0).abs() < 1e-12);
        assert!((f.period().to_frequency().value() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: SquareMicrons = [1.0, 2.0, 3.0].iter().map(|&v| SquareMicrons::new(v)).sum();
        assert!((total.value() - 6.0).abs() < 1e-12);
        assert!((total * 2.0).value() > total.value());
        assert!((total / 2.0).value() < total.value());
        let diff = total - SquareMicrons::new(1.0);
        assert!((diff.value() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_is_dimensionless() {
        let a = SquareMicrons::new(9.0);
        let b = SquareMicrons::new(0.75);
        assert!((a.ratio_to(b) - 12.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be finite and non-negative")]
    fn negative_quantity_rejected() {
        let _ = Nanoseconds::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite and non-negative")]
    fn subtraction_below_zero_rejected() {
        let _ = SquareMicrons::new(1.0) - SquareMicrons::new(2.0);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{:.1}", Milliwatts::new(60.84)), "60.8 mW");
        assert_eq!(format!("{}", SquareMicrons::new(2.0)), "2 um^2");
    }
}
