//! A functional ternary CAM (Sec. 2.2, Fig. 2).
//!
//! "CAM searches its entire memory to match the input data with the set of
//! stored data. When there are multiple entries that match the search key, a
//! priority encoder will choose the highest-priority entry." Priority is the
//! entry index: lower index wins. Each entry stores a ternary key and a data
//! word (modelling the separate data RAM a CAM deployment pairs with the
//! match array — here merged for convenience, the cost models account for
//! the split).

use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_hwmodel::{CamGeometry, CellKind};

/// A stored TCAM entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcamEntry {
    /// The ternary key.
    pub key: TernaryKey,
    /// Associated data (next hop, record id, …).
    pub data: u64,
}

/// The result of a TCAM search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcamMatch {
    /// Index (= priority; lower wins) of the winning entry.
    pub index: usize,
    /// The winning entry.
    pub entry: TcamEntry,
    /// Number of entries that matched (the priority encoder resolved them).
    pub match_count: usize,
}

/// A fixed-capacity ternary CAM with index-ordered priority.
#[derive(Debug, Clone)]
pub struct Tcam {
    key_bits: u32,
    slots: Vec<Option<TcamEntry>>,
}

impl Tcam {
    /// Creates an empty TCAM of `capacity` entries of `key_bits`-bit keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `key_bits` is 0 or > 128.
    #[must_use]
    pub fn new(capacity: usize, key_bits: u32) -> Self {
        assert!(capacity > 0, "a CAM needs at least one entry");
        assert!(key_bits > 0 && key_bits <= 128, "key width must be 1..=128");
        Self {
            key_bits,
            slots: vec![None; capacity],
        }
    }

    /// Total entry slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Key width in bits.
    #[must_use]
    pub fn key_bits(&self) -> u32 {
        self.key_bits
    }

    /// Number of valid entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether the TCAM holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Writes an entry at an explicit priority slot (hardware write port).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the key width mismatches.
    pub fn write(&mut self, index: usize, entry: TcamEntry) {
        assert!(index < self.slots.len(), "index {index} out of range");
        assert_eq!(
            entry.key.bits(),
            self.key_bits,
            "entry key width {} does not match the device width {}",
            entry.key.bits(),
            self.key_bits
        );
        self.slots[index] = Some(entry);
    }

    /// Appends an entry at the first free slot (lowest available priority
    /// position), returning its index, or `None` when the device is full.
    ///
    /// # Panics
    ///
    /// Panics if the key width mismatches the device width.
    pub fn push(&mut self, entry: TcamEntry) -> Option<usize> {
        let free = self.slots.iter().position(Option::is_none)?;
        self.write(free, entry);
        Some(free)
    }

    /// Invalidates every entry whose stored key exactly equals `key`
    /// (value, mask, and width), returning the number removed.
    pub fn remove_key(&mut self, key: &TernaryKey) -> u32 {
        let mut removed = 0u32;
        for slot in &mut self.slots {
            if slot.is_some_and(|e| e.key == *key) {
                *slot = None;
                removed += 1;
            }
        }
        removed
    }

    /// Invalidates the entry at `index`, returning it if present.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn erase(&mut self, index: usize) -> Option<TcamEntry> {
        assert!(index < self.slots.len(), "index {index} out of range");
        self.slots[index].take()
    }

    /// The entry at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn entry(&self, index: usize) -> Option<TcamEntry> {
        self.slots[index]
    }

    /// One search: every entry compares in parallel; the priority encoder
    /// returns the lowest-index match.
    ///
    /// # Panics
    ///
    /// Panics if the search key width mismatches the device width.
    #[must_use]
    pub fn search(&self, key: &SearchKey) -> Option<TcamMatch> {
        assert_eq!(
            key.bits(),
            self.key_bits,
            "search key width {} does not match the device width {}",
            key.bits(),
            self.key_bits
        );
        let mut winner: Option<(usize, TcamEntry)> = None;
        let mut match_count = 0usize;
        for (index, slot) in self.slots.iter().enumerate() {
            let Some(entry) = slot else { continue };
            if entry.key.matches(key) {
                match_count += 1;
                if winner.is_none() {
                    winner = Some((index, *entry));
                }
            }
        }
        winner.map(|(index, entry)| TcamMatch {
            index,
            entry,
            match_count,
        })
    }

    /// All matching entries in priority order (diagnostic; hardware exposes
    /// only the encoder output).
    #[must_use]
    pub fn search_all(&self, key: &SearchKey) -> Vec<TcamMatch> {
        let mut out = Vec::new();
        for (index, slot) in self.slots.iter().enumerate() {
            let Some(entry) = slot else { continue };
            if entry.key.matches(key) {
                out.push(TcamMatch {
                    index,
                    entry: *entry,
                    match_count: 0,
                });
            }
        }
        let n = out.len();
        for m in &mut out {
            m.match_count = n;
        }
        out
    }

    /// The device geometry for the cost models: `capacity` entries of
    /// `key_bits` ternary symbols built from `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not a TCAM cell.
    #[must_use]
    pub fn geometry(&self, cell: CellKind) -> CamGeometry {
        CamGeometry::new(self.slots.len() as u64, self.key_bits, cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefix(value: u128, len: u32) -> TernaryKey {
        let dc = if len == 32 {
            0
        } else {
            (1u128 << (32 - len)) - 1
        };
        TernaryKey::ternary(value, dc, 32)
    }

    #[test]
    fn empty_tcam_misses() {
        let t = Tcam::new(8, 32);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.search(&SearchKey::new(0, 32)).is_none());
    }

    #[test]
    fn write_search_erase() {
        let mut t = Tcam::new(8, 32);
        t.write(
            3,
            TcamEntry {
                key: prefix(0x0A00_0000, 8),
                data: 99,
            },
        );
        assert_eq!(t.len(), 1);
        let m = t.search(&SearchKey::new(0x0A01_0203, 32)).unwrap();
        assert_eq!(m.index, 3);
        assert_eq!(m.entry.data, 99);
        assert_eq!(m.match_count, 1);
        assert_eq!(t.erase(3).unwrap().data, 99);
        assert!(t.search(&SearchKey::new(0x0A01_0203, 32)).is_none());
        assert_eq!(t.erase(3), None);
    }

    #[test]
    fn priority_encoder_lpm() {
        // Sec. 4.1: LPM works when prefixes are sorted on prefix length.
        let mut t = Tcam::new(8, 32);
        t.write(
            0,
            TcamEntry {
                key: prefix(0x0A0B_0C00, 24),
                data: 24,
            },
        );
        t.write(
            1,
            TcamEntry {
                key: prefix(0x0A0B_0000, 16),
                data: 16,
            },
        );
        t.write(
            2,
            TcamEntry {
                key: prefix(0x0A00_0000, 8),
                data: 8,
            },
        );
        let m = t.search(&SearchKey::new(0x0A0B_0C0D, 32)).unwrap();
        assert_eq!(m.entry.data, 24);
        assert_eq!(m.match_count, 3);
        let m = t.search(&SearchKey::new(0x0A0B_FF00, 32)).unwrap();
        assert_eq!(m.entry.data, 16);
        let m = t.search(&SearchKey::new(0x0AFF_0000, 32)).unwrap();
        assert_eq!(m.entry.data, 8);
        assert!(t.search(&SearchKey::new(0x0B00_0000, 32)).is_none());
    }

    #[test]
    fn search_all_lists_every_match_in_priority_order() {
        let mut t = Tcam::new(4, 32);
        t.write(
            1,
            TcamEntry {
                key: prefix(0x0A0B_0000, 16),
                data: 16,
            },
        );
        t.write(
            2,
            TcamEntry {
                key: prefix(0x0A00_0000, 8),
                data: 8,
            },
        );
        let all = t.search_all(&SearchKey::new(0x0A0B_0001, 32));
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].index, 1);
        assert_eq!(all[1].index, 2);
        assert!(all.iter().all(|m| m.match_count == 2));
    }

    #[test]
    fn masked_search_key() {
        let mut t = Tcam::new(4, 16);
        t.write(
            0,
            TcamEntry {
                key: TernaryKey::binary(0xAB00, 16),
                data: 0,
            },
        );
        t.write(
            1,
            TcamEntry {
                key: TernaryKey::binary(0xAB01, 16),
                data: 1,
            },
        );
        // Search ABXX (low byte don't-care) matches both; encoder picks 0.
        let m = t.search(&SearchKey::with_mask(0xAB00, 0x00FF, 16)).unwrap();
        assert_eq!(m.index, 0);
        assert_eq!(m.match_count, 2);
    }

    #[test]
    fn geometry_for_cost_models() {
        let t = Tcam::new(186_760, 32);
        let g = t.geometry(CellKind::TcamDynamic6T);
        assert_eq!(g.total_cells(), 186_760 * 32);
    }

    #[test]
    #[should_panic(expected = "does not match the device width")]
    fn wrong_width_rejected() {
        let t = Tcam::new(4, 32);
        let _ = t.search(&SearchKey::new(0, 16));
    }
}
