//! Sequence-related helpers (`rand::seq`).

use crate::{RngCore, SampleRange};

/// Extension methods on slices: in-place shuffle and uniform choice.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_single(rng)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And it actually moved something.
        assert_ne!(v, sorted);
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = SmallRng::seed_from_u64(5);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [7u32, 8, 9];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }
}
