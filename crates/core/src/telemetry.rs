//! End-to-end telemetry: lock-free histograms, stage-level trace hooks,
//! a metrics registry, and machine-readable exports.
//!
//! The paper's evaluation is an observability exercise — AMAL,
//! probe-length distributions, Fig. 7 occupancy, bandwidth under queuing
//! — and this module is the layer that measures all of it from live
//! counters instead of analytic models:
//!
//! * [`histogram`] — power-of-two-bucketed [`Histogram`] /
//!   [`AtomicHistogram`] with the same snapshot/merge semantics as
//!   [`crate::stats::AtomicSearchStats`];
//! * [`trace`] — the zero-cost-when-disabled [`TelemetrySink`] trait, the
//!   pipeline [`Stage`] model, and the built-in sinks ([`HistogramSink`],
//!   [`TraceBuffer`], [`NullSink`]);
//! * [`registry`] — the [`MetricsRegistry`] aggregating per-slice,
//!   per-database, and per-engine scopes;
//! * [`export`] — schema-versioned JSON and Prometheus text renderers
//!   plus dependency-free validators for CI gating;
//! * [`span`] — per-request lifecycle traces ([`RequestTrace`]) with
//!   head sampling ([`TraceSampler`]) and tail retention ([`TraceStore`]);
//! * [`recorder`] — the lock-free overwrite-oldest [`FlightRecorder`]
//!   ring behind anomaly dumps;
//! * [`slo`] — rolling-window quantiles and error-budget burn rate
//!   ([`SloTracker`]) diffed out of cumulative histograms.
//!
//! Instrumented components ([`crate::table::CaRamTable`],
//! [`crate::subsystem::CaRamSubsystem`], the input-controller models) take
//! an `Arc<dyn TelemetrySink>`; with no sink installed the search hot
//! path pays one branch and nothing else.

pub mod export;
pub mod histogram;
pub mod recorder;
pub mod registry;
pub mod slo;
pub mod span;
pub mod trace;

pub use export::{
    parse_json, to_json, to_prometheus, validate_json, validate_prometheus, JsonValue, SCHEMA,
};
pub use histogram::{bucket_bounds, bucket_of, AtomicHistogram, Histogram, BUCKETS};
pub use recorder::FlightRecorder;
pub use registry::{MetricsRegistry, ScopeKind, ScopeMetrics};
pub use slo::{SloPolicy, SloReport, SloTracker};
pub use span::{RequestTrace, SpanEvent, SpanStage, TraceSampler, TraceStore};
pub use trace::{
    HistogramSink, NullSink, ProbeSummary, Stage, TelemetrySink, TelemetrySnapshot, TraceBuffer,
    TraceEvent,
};
