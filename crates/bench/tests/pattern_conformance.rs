//! Conformance of pattern-compiled tables across backends.
//!
//! The pattern compiler emits a `TableConfig` + index generator; this test
//! instantiates the core engine-conformance suite over tables built from
//! compiled plans — once on a raw `CaRamTable`, once wrapped as the sole
//! database of a `SubsystemEngine`, and against a `SortedTcam` baseline
//! loaded with the same lowered entries — so the compiled layouts obey the
//! full `SearchEngine` contract (insert/search/delete round-trips, batch ≡
//! serial ≡ parallel bit-equivalence, stats and occupancy accounting).

use ca_ram_bench::SubsystemEngine;
use ca_ram_cam::SortedTcam;
use ca_ram_core::engine::conformance::{check_engine, Probe};
use ca_ram_core::key::SearchKey;
use ca_ram_core::pattern::{compile, GeometryHint, Pattern, QueryPlan};
use ca_ram_workloads::dictionary;
use ca_ram_workloads::packet::{classifier_spec, ClassifierRule, FiveTuple, PortMatch};

/// Classifier rules that each lower to exactly one ternary entry (no port
/// ranges), pairwise disjoint (distinct src /16 networks), probed with a
/// member header of each. Every field the index generator samples (the top
/// bit of each field) is cared, so each record stores exactly one home copy
/// and `check_engine`'s occupancy accounting holds.
fn classifier_probes() -> Vec<Probe> {
    (0..12u32)
        .map(|i| {
            let rule = ClassifierRule {
                src: ((0x0A00_0000) | (i << 16), 16),
                dst: (0xC0A8_0000, 16),
                sport: PortMatch::Exact(u16::try_from(1000 + i).expect("small")),
                dport: PortMatch::Exact(443),
                proto: Some(6),
                action: u64::from(100 + i),
            };
            let spec = classifier_spec();
            let entries = spec.lower(&rule.to_pattern()).expect("rule lowers");
            assert_eq!(entries.len(), 1, "no-range rules lower to one entry");
            let member = FiveTuple {
                src: rule.src.0 | 0x1234,
                dst: rule.dst.0 | (0x0100 + i),
                sport: 1000 + u16::try_from(i).expect("small"),
                dport: 443,
                proto: 6,
            };
            assert!(rule.matches(&member));
            Probe {
                record: ca_ram_core::layout::Record::new(entries[0], rule.action),
                probe: SearchKey::new(member.pack(), 128),
            }
        })
        .collect()
}

fn classifier_misses() -> Vec<SearchKey> {
    // Headers outside every rule's src /16.
    (0..6u32)
        .map(|i| {
            SearchKey::new(
                FiveTuple {
                    src: 0x2C00_0000 | i,
                    dst: 0xC0A8_0001,
                    sport: 1000,
                    dport: 80,
                    proto: 6,
                }
                .pack(),
                128,
            )
        })
        .collect()
}

#[test]
fn compiled_five_tuple_table_passes_engine_conformance() {
    let plan = compile(&classifier_spec(), &GeometryHint::default()).expect("compiles");
    let mut table = plan.build_table().expect("builds");
    check_engine(&mut table, &classifier_probes(), &classifier_misses());
}

#[test]
fn compiled_five_tuple_subsystem_passes_engine_conformance() {
    let plan = compile(&classifier_spec(), &GeometryHint::default()).expect("compiles");
    let table = plan.build_table().expect("builds");
    let mut engine = SubsystemEngine::new(table);
    check_engine(&mut engine, &classifier_probes(), &classifier_misses());
}

#[test]
fn sorted_tcam_baseline_passes_conformance_on_lowered_entries() {
    // The CAM baseline stores the same lowered ternary entries; the
    // conformance contract must hold there too (priority = care count for
    // disjoint rules, so each probe still has one unambiguous owner).
    let mut tcam = SortedTcam::new(256, 128);
    check_engine(&mut tcam, &classifier_probes(), &classifier_misses());
}

#[test]
fn compiled_dictionary_table_passes_engine_conformance() {
    let plan =
        compile(&dictionary::dictionary_spec(8, 2), &GeometryHint::default()).expect("compiles");
    let mut table = plan.build_table().expect("builds");
    let words: Vec<String> = ["aardvark", "bassoon!", "cladding", "dispatch"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let probes: Vec<Probe> = words
        .iter()
        .enumerate()
        .map(|(i, w)| {
            Probe::exact(
                dictionary::pack_word(w),
                64,
                u64::try_from(i).expect("small"),
            )
        })
        .collect();
    let misses = vec![
        SearchKey::new(dictionary::pack_word("zzzzzzzz"), 64),
        SearchKey::new(dictionary::pack_word("aardvarj"), 64),
    ];
    check_engine(&mut table, &probes, &misses);

    // Beyond the exact contract: after reinserting, the compiled probe
    // ladder resolves a 1-substitution typo through QueryPlan::execute.
    for p in &probes {
        table.insert(p.record).expect("fits");
    }
    let ladder: QueryPlan = plan
        .lower_query(&Pattern::NearestMatch {
            value: dictionary::pack_word("aardvarj"),
            max_distance: 1,
        })
        .expect("ladder lowers");
    let outcome = ladder.execute(&table);
    assert_eq!(outcome.hit.map(|h| h.data), Some(0), "typo resolves");
}
