//! Error types for CA-RAM operations.

use core::fmt;

/// Errors returned by CA-RAM data-management operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CaRamError {
    /// An insert could not find a free slot within the probe limit: the
    /// record's home bucket and every bucket the probe sequence reaches are
    /// full. The paper's remedies: a better hash, more capacity, or a
    /// dedicated overflow area (Sec. 4 "Collision is a unique problem ...").
    TableFull {
        /// The record's home bucket.
        home_bucket: u64,
        /// Buckets examined before giving up.
        buckets_probed: u32,
    },
    /// A key width did not match the table's record layout.
    KeyWidthMismatch {
        /// Width expected by the layout.
        expected: u32,
        /// Width supplied by the caller.
        got: u32,
    },
    /// A ternary key was presented to a binary table.
    TernaryNotEnabled,
    /// A RAM-mode address fell outside the device.
    AddressOutOfRange {
        /// The offending word address.
        address: u64,
        /// Number of addressable words.
        words: u64,
    },
    /// Inconsistent construction parameters.
    BadConfig(String),
    /// A fixed-capacity device (e.g. a CAM baseline) has no free entry left.
    CapacityExhausted {
        /// Total entries the device can hold.
        capacity: u64,
    },
    /// The engine does not support this operation (e.g. inserting into a
    /// statically built software index).
    Unsupported(&'static str),
    /// A durability operation failed (see [`crate::storage`]). The kind
    /// classifies the failure so callers can distinguish, say, a torn file
    /// from a geometry mismatch; the detail names the offending file or
    /// record.
    Durability {
        /// Failure class.
        kind: DurabilityErrorKind,
        /// Human-readable specifics (path, offset, expected/got values).
        detail: String,
    },
}

/// Classification of [`CaRamError::Durability`] failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DurabilityErrorKind {
    /// The operating system refused a file operation.
    Io,
    /// A checksum, magic number, or framing invariant failed somewhere a
    /// crash cannot legally leave it (e.g. mid-log, a superblock).
    Corrupt,
    /// The on-disk format version is not one this build understands.
    FormatVersion,
    /// The on-disk geometry disagrees with the expected configuration.
    GeometryMismatch,
    /// The storage backend is unavailable on this build or target (e.g.
    /// mmap without the `storage` feature).
    Unsupported,
    /// WAL replay could not re-apply a logged operation to the rebuilt
    /// table (the log and the geometry disagree about capacity).
    ReplayFailed,
}

impl DurabilityErrorKind {
    /// Stable lowercase name, for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DurabilityErrorKind::Io => "io",
            DurabilityErrorKind::Corrupt => "corrupt",
            DurabilityErrorKind::FormatVersion => "format-version",
            DurabilityErrorKind::GeometryMismatch => "geometry-mismatch",
            DurabilityErrorKind::Unsupported => "unsupported",
            DurabilityErrorKind::ReplayFailed => "replay-failed",
        }
    }
}

impl fmt::Display for CaRamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaRamError::TableFull {
                home_bucket,
                buckets_probed,
            } => write!(
                f,
                "no free slot within {buckets_probed} bucket(s) of home bucket {home_bucket}"
            ),
            CaRamError::KeyWidthMismatch { expected, got } => {
                write!(
                    f,
                    "key width {got} does not match the layout width {expected}"
                )
            }
            CaRamError::TernaryNotEnabled => {
                write!(f, "ternary key presented to a binary table")
            }
            CaRamError::AddressOutOfRange { address, words } => {
                write!(f, "address {address} outside the device ({words} words)")
            }
            CaRamError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CaRamError::CapacityExhausted { capacity } => {
                write!(f, "device full ({capacity} entries)")
            }
            CaRamError::Unsupported(what) => write!(f, "operation not supported: {what}"),
            CaRamError::Durability { kind, detail } => {
                write!(f, "durability failure ({}): {detail}", kind.name())
            }
        }
    }
}

impl std::error::Error for CaRamError {}

/// Convenience alias for CA-RAM results.
pub type Result<T> = core::result::Result<T, CaRamError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CaRamError::TableFull {
            home_bucket: 17,
            buckets_probed: 4,
        };
        assert!(e.to_string().contains("home bucket 17"));
        let e = CaRamError::KeyWidthMismatch {
            expected: 32,
            got: 64,
        };
        assert!(e.to_string().contains("64"));
        assert!(CaRamError::AddressOutOfRange {
            address: 100,
            words: 10
        }
        .to_string()
        .contains("100"));
        assert!(!CaRamError::TernaryNotEnabled.to_string().is_empty());
        assert!(CaRamError::BadConfig("x".into()).to_string().contains('x'));
        assert!(CaRamError::CapacityExhausted { capacity: 8 }
            .to_string()
            .contains('8'));
        assert!(CaRamError::Unsupported("insert")
            .to_string()
            .contains("insert"));
        let e = CaRamError::Durability {
            kind: DurabilityErrorKind::Corrupt,
            detail: "wal-00000001.log offset 64".into(),
        };
        assert!(e.to_string().contains("corrupt"));
        assert!(e.to_string().contains("wal-00000001.log"));
    }

    #[test]
    fn durability_kind_names_are_distinct() {
        let kinds = [
            DurabilityErrorKind::Io,
            DurabilityErrorKind::Corrupt,
            DurabilityErrorKind::FormatVersion,
            DurabilityErrorKind::GeometryMismatch,
            DurabilityErrorKind::Unsupported,
            DurabilityErrorKind::ReplayFailed,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn error_trait_object() {
        fn takes_err(_: &(dyn std::error::Error + Send + Sync)) {}
        takes_err(&CaRamError::TernaryNotEnabled);
    }
}
