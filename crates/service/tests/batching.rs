//! Pins the end-to-end batching path: input-order replies, per-shard FIFO
//! against interleaved writes, all-or-nothing admission with rollback,
//! deadline shedding of partially-drained batches, and conservation when
//! batches race a shutdown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ca_ram_core::engine::{EngineOutcome, EngineReport, SearchEngine};
use ca_ram_core::error::Result;
use ca_ram_core::index::RangeSelect;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::table::{CaRamTable, TableConfig};
use ca_ram_service::{
    route_shard, AdmissionError, SearchService, ServiceConfig, ServiceOp, ServiceReply, ShedReason,
};

const KEY_BITS: u32 = 32;

fn table() -> Box<dyn SearchEngine> {
    let layout = RecordLayout::new(KEY_BITS, false, 16);
    let config = TableConfig::single_slice(6, 16 * layout.slot_bits(), layout);
    Box::new(CaRamTable::new(config, Box::new(RangeSelect::new(0, 6))).expect("valid config"))
}

/// An engine that stalls each search, so batch pickup timing is
/// controllable from the test.
struct SlowEngine {
    inner: Box<dyn SearchEngine>,
    delay: Duration,
    searches: Arc<AtomicU64>,
}

impl SearchEngine for SlowEngine {
    fn name(&self) -> &str {
        "slow-table"
    }
    fn key_bits(&self) -> u32 {
        self.inner.key_bits()
    }
    fn search(&self, key: &SearchKey) -> EngineOutcome {
        self.searches.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(self.delay);
        self.inner.search(key)
    }
    fn insert(&mut self, record: Record) -> Result<()> {
        self.inner.insert(record)
    }
    fn delete(&mut self, key: &TernaryKey) -> u32 {
        self.inner.delete(key)
    }
    fn occupancy(&self) -> EngineReport {
        self.inner.occupancy()
    }
}

/// The first key value ≥ `from` that routes to `shard` under `shards`-way
/// sharding.
fn value_on_shard(from: u128, shard: usize, shards: usize) -> u128 {
    (from..)
        .find(|v| route_shard(*v, shards) == shard)
        .expect("SplitMix64 hits every shard")
}

#[test]
fn batched_searches_answer_in_input_order() {
    let config = ServiceConfig {
        shards: 4,
        ..ServiceConfig::default()
    };
    let engines = (0..config.shards).map(|_| table()).collect();
    let service = SearchService::new(config, engines).expect("valid service");
    for i in 0..200u128 {
        service
            .insert_sync(Record::new(
                TernaryKey::binary(0x4000 + i, KEY_BITS),
                i as u64,
            ))
            .expect("fits");
    }
    // Interleave hits (even positions probe stored keys) and misses.
    let keys: Vec<SearchKey> = (0..256u128)
        .map(|i| {
            if i % 2 == 0 {
                SearchKey::new(0x4000 + (i / 2) % 200, KEY_BITS)
            } else {
                SearchKey::new(0x9_0000 + i, KEY_BITS)
            }
        })
        .collect();
    let completion = service
        .try_submit_batch(&keys)
        .expect("queues have room")
        .wait();
    assert_eq!(completion.replies.len(), keys.len());
    assert_eq!(completion.shed(), 0);
    for (i, reply) in completion.replies.iter().enumerate() {
        let ServiceReply::Search(outcome) = reply else {
            panic!("batch position {i} answered with {reply:?}");
        };
        if i % 2 == 0 {
            let expected = ((i as u128 / 2) % 200) as u64;
            assert_eq!(
                outcome.hit.map(|h| h.data),
                Some(expected),
                "batch position {i} lost its input-order alignment"
            );
        } else {
            assert!(outcome.hit.is_none(), "position {i} must miss");
        }
    }
    let totals = service.snapshot().totals();
    assert_eq!(totals.batch_keys, keys.len() as u64);
    assert!(
        totals.batch_entries >= 1 && totals.batch_entries <= 4,
        "one batch spans at most one ring entry per shard (got {})",
        totals.batch_entries
    );
}

#[test]
fn empty_batch_completes_immediately() {
    let service =
        SearchService::new(ServiceConfig::single_shard(), vec![table()]).expect("valid service");
    let completion = service
        .try_submit_batch(&[])
        .expect("nothing to queue")
        .wait();
    assert!(completion.replies.is_empty());
    assert_eq!(service.snapshot().totals().batch_entries, 0);
}

#[test]
fn batches_observe_preceding_writes_in_per_shard_fifo_order() {
    // insert → batch-probe → delete → batch-probe on one key, never waiting
    // on the write before submitting the probe: per-shard FIFO alone must
    // order them.
    let service =
        SearchService::new(ServiceConfig::single_shard(), vec![table()]).expect("valid service");
    for round in 0..100u64 {
        let value = 0x7000 + u128::from(round);
        let record = Record::new(TernaryKey::binary(value, KEY_BITS), round);
        let probe = [SearchKey::new(value, KEY_BITS)];
        let insert = service
            .try_submit(ServiceOp::Insert(record))
            .expect("queue has room");
        let after_insert = service.try_submit_batch(&probe).expect("queue has room");
        let delete = service
            .try_submit(ServiceOp::Delete(TernaryKey::binary(value, KEY_BITS)))
            .expect("queue has room");
        let after_delete = service.try_submit_batch(&probe).expect("queue has room");

        assert!(matches!(insert.wait().reply, ServiceReply::Insert(Ok(()))));
        let outcomes = after_insert.wait().outcomes();
        assert_eq!(
            outcomes[0].and_then(|o| o.hit.map(|h| h.data)),
            Some(round),
            "round {round}: batch submitted after the insert must observe it"
        );
        assert!(matches!(delete.wait().reply, ServiceReply::Delete(1)));
        let outcomes = after_delete.wait().outcomes();
        assert!(
            outcomes[0].is_some_and(|o| o.hit.is_none()),
            "round {round}: batch submitted after the delete must observe it"
        );
    }
}

#[test]
fn full_queue_refuses_the_whole_batch_and_rolls_back() {
    let searches = Arc::new(AtomicU64::new(0));
    let config = ServiceConfig {
        shards: 1,
        queue_depth: 1,
        batch_max: 1,
        ..ServiceConfig::single_shard()
    };
    let slow = Box::new(SlowEngine {
        inner: table(),
        delay: Duration::from_millis(40),
        searches: Arc::clone(&searches),
    });
    let service = SearchService::new(config, vec![slow]).expect("valid service");

    // Stall the worker, then fill the depth-1 queue with a single.
    let decoy = service
        .try_submit(ServiceOp::Search(SearchKey::new(0x1, KEY_BITS)))
        .expect("room");
    std::thread::sleep(Duration::from_millis(10)); // worker picks up the decoy
    let queued = service
        .try_submit(ServiceOp::Search(SearchKey::new(0x2, KEY_BITS)))
        .expect("room");
    let batch_keys = [SearchKey::new(0x3, KEY_BITS), SearchKey::new(0x4, KEY_BITS)];
    match service.try_submit_batch(&batch_keys) {
        Err(AdmissionError::QueueFull { shard, depth }) => {
            assert_eq!((shard, depth), (0, 1));
        }
        other => panic!("full queue must refuse the batch, got {other:?}"),
    }
    let _ = decoy.wait();
    let _ = queued.wait();
    // The refused reservation must have been rolled back: the now-empty
    // queue admits the same batch.
    let completion = service
        .try_submit_batch(&batch_keys)
        .expect("rollback freed the reservation")
        .wait();
    assert_eq!(completion.replies.len(), 2);
    assert_eq!(completion.shed(), 0);
    assert_eq!(service.snapshot().totals().rejected, 2);
}

#[test]
fn deadline_sheds_a_partially_drained_batch() {
    // Shard 1 is stalled; a two-shard batch with a short deadline gets its
    // fast half served and its stalled half shed — per-key outcomes, no
    // all-or-nothing at completion time.
    let searches = Arc::new(AtomicU64::new(0));
    let config = ServiceConfig {
        shards: 2,
        queue_depth: 64,
        batch_max: 1,
        ..ServiceConfig::default()
    };
    let slow = Box::new(SlowEngine {
        inner: table(),
        delay: Duration::from_millis(60),
        searches: Arc::clone(&searches),
    });
    let service = SearchService::new(config, vec![table(), slow]).expect("valid service");

    let fast_value = value_on_shard(0x100, 0, 2);
    let slow_value = value_on_shard(0x200, 1, 2);
    let decoy_value = value_on_shard(slow_value + 1, 1, 2);
    service
        .insert_sync(Record::new(TernaryKey::binary(fast_value, KEY_BITS), 42))
        .expect("fits");

    // Stall shard 1's worker with a decoy search.
    let decoy = service
        .try_submit(ServiceOp::Search(SearchKey::new(decoy_value, KEY_BITS)))
        .expect("room");
    std::thread::sleep(Duration::from_millis(10)); // worker picks up the decoy

    let keys = [
        SearchKey::new(fast_value, KEY_BITS),
        SearchKey::new(slow_value, KEY_BITS),
    ];
    let probes_before = searches.load(Ordering::Relaxed);
    let completion = service
        .try_submit_batch_with_deadline(&keys, Some(Instant::now() + Duration::from_millis(10)))
        .expect("queues have room")
        .wait();
    let _ = decoy.wait();

    let ServiceReply::Search(fast) = completion.replies[0] else {
        panic!("fast half answered with {:?}", completion.replies[0]);
    };
    assert_eq!(
        fast.hit.map(|h| h.data),
        Some(42),
        "the fast shard's half must serve normally"
    );
    assert_eq!(
        completion.replies[1],
        ServiceReply::Shed(ShedReason::DeadlineExpired),
        "the stalled shard's half must shed at pickup"
    );
    assert_eq!(completion.shed(), 1);
    assert_eq!(
        searches.load(Ordering::Relaxed),
        probes_before,
        "a shed sub-batch must never probe its engine"
    );
    assert_eq!(service.snapshot().totals().shed_deadline, 1);
}

#[test]
fn concurrent_shutdown_conserves_every_batch() {
    const THREADS: usize = 4;
    const BATCH: usize = 8;
    let config = ServiceConfig {
        shards: 2,
        ..ServiceConfig::default()
    };
    let engines = (0..config.shards).map(|_| table()).collect();
    let service = SearchService::new(config, engines).expect("valid service");
    for i in 0..64u128 {
        service
            .insert_sync(Record::new(
                TernaryKey::binary(0x8000 + i, KEY_BITS),
                i as u64,
            ))
            .expect("fits");
    }

    // Clients batch-submit until shutdown; every admitted batch must come
    // back with exactly BATCH replies, each a real answer or a shed.
    let mut totals = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|thread| {
                let service = &service;
                scope.spawn(move || {
                    let mut served = 0u64;
                    let mut shed = 0u64;
                    let mut batches = 0u64;
                    for round in 0.. {
                        let keys: Vec<SearchKey> = (0..BATCH)
                            .map(|i| {
                                SearchKey::new(
                                    0x8000 + ((thread + i * round) as u128 % 64),
                                    KEY_BITS,
                                )
                            })
                            .collect();
                        match service.try_submit_batch(&keys) {
                            Ok(ticket) => {
                                let completion = ticket.wait();
                                assert_eq!(
                                    completion.replies.len(),
                                    BATCH,
                                    "an admitted batch must answer every key"
                                );
                                for reply in &completion.replies {
                                    match reply {
                                        ServiceReply::Search(_) => served += 1,
                                        ServiceReply::Shed(ShedReason::Shutdown) => shed += 1,
                                        other => panic!("unexpected reply {other:?}"),
                                    }
                                }
                                batches += 1;
                            }
                            Err(AdmissionError::ShuttingDown) => break,
                            Err(AdmissionError::QueueFull { .. }) => std::thread::yield_now(),
                        }
                    }
                    (served, shed, batches)
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        service.begin_shutdown();
        for handle in handles {
            totals.push(handle.join().expect("client panicked"));
        }
    });
    service.shutdown();

    let (served, shed, batches) = totals
        .iter()
        .fold((0, 0, 0), |(a, b, c), (s, h, n)| (a + s, b + h, c + n));
    assert_eq!(
        served + shed,
        batches * BATCH as u64,
        "every admitted key must resolve to exactly one reply"
    );
    assert!(batches > 0, "the race window admitted at least one batch");
}

/// Hammers the admission/close race: a submitter that passes the closed
/// check just before `begin_shutdown` may push its entry after the worker
/// saw an empty ring. Every `Ok` ticket must still complete — callers
/// block on `wait()` *before* `shutdown()` runs, so an orphaned entry
/// would wedge this test, not just lose a reply.
#[test]
fn shutdown_race_never_orphans_an_admitted_ticket() {
    const ROUNDS: usize = 100;
    const CLIENTS: usize = 3;
    for _ in 0..ROUNDS {
        let config = ServiceConfig {
            shards: 1,
            ..ServiceConfig::default()
        };
        let service = SearchService::new(config, vec![table()]).expect("valid service");
        std::thread::scope(|scope| {
            for client in 0..CLIENTS {
                let service = &service;
                scope.spawn(move || {
                    let key = SearchKey::new(client as u128, KEY_BITS);
                    loop {
                        match service.try_submit(ServiceOp::Search(key)) {
                            // Admitted: the reply (answer or shutdown shed)
                            // must arrive without SearchService::shutdown.
                            Ok(ticket) => match ticket.wait().reply {
                                ServiceReply::Search(_)
                                | ServiceReply::Shed(ShedReason::Shutdown) => {}
                                other => panic!("unexpected reply {other:?}"),
                            },
                            Err(AdmissionError::ShuttingDown) => break,
                            Err(AdmissionError::QueueFull { .. }) => std::thread::yield_now(),
                        }
                    }
                });
            }
            let service = &service;
            scope.spawn(move || {
                // No sleep: closing while admission is hot maximizes the
                // window where a submitter already passed the closed check.
                std::thread::yield_now();
                service.begin_shutdown();
            });
        });
        service.shutdown();
    }
}
