//! Serving-layer load sweep: measures the sharded [`SearchService`]'s
//! capacity and latency under open-loop offered load, compares the measured
//! distribution against the controller queue model's prediction for the
//! same configuration, and emits `BENCH_service.json`.
//!
//! Method:
//!   1. **Calibrate** — a closed-loop run with one client per shard pins
//!      the zero-queueing service latency; dividing its p50 by the model's
//!      `nmem + 1` service cycles yields the wall-clock length of one model
//!      cycle, tying the two time bases together without using any
//!      open-loop measurement the sweep is about to grade. A second,
//!      in-process calibration drives an identical shard-sized table
//!      directly through `search_batch` to pin `serial_keys_per_sec` — the
//!      engine bandwidth the serving layer is graded against.
//!   2. **Find the ceiling** — a windowed batched flood
//!      (`ServiceClient::flood_batched`: one ring entry per shard per
//!      batch) measures saturation capacity on the lock-free path; an
//!      unpaced per-key flood is also recorded for comparison.
//!   3. **Sweep** — paced open-loop points from well under the closed-loop
//!      rate up to 3x the flood ceiling. Below the knee the measured
//!      p50/p99 should track `simulate_latency` for the matching
//!      [`QueueModelConfig`]; past it, the bounded queue must reject at
//!      admission rather than buffer without limit.
//!
//! Observability riders: `--trace-period` turns on request-lifecycle
//! tracing (1 in N admissions, 0 = off); an interleaved A/B flood pair
//! measures the tracing overhead at 1/256 sampling on the same service
//! (gated < 5% under `--smoke`); every sweep row reports the ladder
//! transitions and SLO window it provoked; and a forced shed storm on a
//! dedicated service dumps `BENCH_flight.json`, gated on exact request
//! conservation and ≥ 90% span coverage of every retained trace.
//!
//! Usage: `serve_bench [--records N] [--lookups N] [--shards N]
//! [--queue-depth N] [--batch-max N] [--flood-batch N] [--flood-window N]
//! [--capacity-floor F] [--trace-period N] [--seed N] [--out PATH]
//! [--flight-out PATH] [--smoke]`
//!
//! `--smoke` shrinks the workload to CI scale and turns the sanity
//! assertions (request conservation, zero shedding at low load, rejection
//! past saturation, telemetry export validity, the tracing-overhead bound,
//! and the capacity-ratio floor: batched flood ≥ `--capacity-floor` ×
//! `min(shards, cores)` × `serial_keys_per_sec`) into hard failures.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use ca_ram_bench::{ensure, exact_match_workload, write_text_atomic, Cli, Result};
use ca_ram_core::controller::{simulate_latency, LatencyReport, QueueModelConfig};
use ca_ram_core::engine::SearchEngine;
use ca_ram_core::index::RangeSelect;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::pattern::QueryPlan;
use ca_ram_core::probe::ProbePolicy;
use ca_ram_core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};
use ca_ram_core::telemetry::{to_json, validate_json, MetricsRegistry};
use ca_ram_service::{
    OpenLoopReport, SearchService, ServiceClient, ServiceConfig, ServiceOp, ServiceReply,
    FLIGHT_SCHEMA,
};

/// Model service occupancy per request, in cycles (`nmem`); the service
/// latency ladder is `nmem` busy cycles plus one match cycle.
const NMEM: u32 = 6;
/// Model port width (requests admitted per cycle).
const ACCEPTS_PER_CYCLE: u32 = 4;
/// Cap on requests fed to the cycle-level model per sweep point.
const MODEL_REQUESTS_MAX: usize = 20_000;
/// Record slots per table row.
const SLOTS_PER_ROW: u32 = 8;

/// One measured sweep point with its model prediction.
struct SweepPoint {
    /// Target offered rate, requests/s.
    target_rps: f64,
    /// What the open-loop client observed.
    measured: OpenLoopReport,
    /// `simulate_latency` at the same offered rate, converted to
    /// microseconds via the calibrated cycle length.
    model_p50_us: f64,
    model_p99_us: f64,
    model_throughput: f64,
    /// Degradation-ladder transitions this point provoked (drained from
    /// the service after the measurement).
    ladder_transitions: usize,
    /// SLO window evaluated over this point: p99 and error-budget burn.
    slo_p99_us: u64,
    slo_burn_rate: f64,
    slo_breached: bool,
}

fn shard_table(per_shard_records: usize) -> Result<CaRamTable> {
    let layout = RecordLayout::new(64, false, 64);
    // 3x headroom over a uniform split absorbs routing imbalance, so every
    // insert lands before the probe sequence exhausts.
    let buckets = (per_shard_records * 3)
        .div_ceil(SLOTS_PER_ROW as usize)
        .max(16);
    let rows_log2 = buckets.next_power_of_two().trailing_zeros();
    let config = TableConfig {
        rows_log2,
        row_bits: SLOTS_PER_ROW * layout.slot_bits(),
        layout,
        arrangement: Arrangement::Horizontal(1),
        probe: ProbePolicy::Linear,
        overflow: OverflowPolicy::Probe {
            max_steps: u32::MAX,
        },
    };
    Ok(CaRamTable::new(
        config,
        Box::new(RangeSelect::new(0, rows_log2)),
    )?)
}

/// Runs `simulate_latency` for `config` at `offered_rps`, feeding the
/// shard each trace key routes to, and returns the report in model cycles.
fn model_at(
    service: &SearchService,
    config: QueueModelConfig,
    offered_rps: f64,
    cycle_secs: f64,
    trace: &[SearchKey],
) -> Result<LatencyReport> {
    // Offered rate -> cycles between arrivals, as a rational num/den.
    let cycles_per_request = 1.0 / (offered_rps * cycle_secs);
    const DEN: u64 = 1024;
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    #[allow(clippy::cast_possible_truncation)]
    let num = ((cycles_per_request * DEN as f64).round() as u64).max(1);
    let requests = trace
        .iter()
        .take(MODEL_REQUESTS_MAX)
        .map(|k| u32::try_from(service.shard_of_value(k.value())).expect("few shards"));
    Ok(simulate_latency(config, num, DEN, requests)?)
}

#[allow(clippy::cast_precision_loss)]
fn cycles_to_us(cycles: f64, cycle_secs: f64) -> f64 {
    cycles * cycle_secs * 1e6
}

/// Measures one shard-sized engine's serial `search_batch` bandwidth
/// in-process (keys/s): the denominator of the serving-efficiency ratio.
/// Uses its own table so the service engines stay untouched.
#[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
fn serial_keys_per_sec(
    per_shard_records: usize,
    pairs: &[(u64, u64)],
    trace: &[SearchKey],
) -> Result<f64> {
    let mut table = shard_table(per_shard_records)?;
    let keep: std::collections::HashSet<u64> = pairs
        .iter()
        .take(per_shard_records)
        .map(|&(key, _)| key)
        .collect();
    for &(key, value) in pairs.iter().take(per_shard_records) {
        table.insert(Record::new(TernaryKey::binary(u128::from(key), 64), value))?;
    }
    // Probe with trace keys that exist in this table so the hit rate (and
    // probe depth) matches the serving workload, not a miss-heavy variant.
    let probe: Vec<SearchKey> = trace
        .iter()
        .filter(|k| keep.contains(&(k.value() as u64)))
        .copied()
        .collect();
    ensure(
        probe.len() >= 256,
        "serial calibration needs more trace keys",
    )?;
    let start = std::time::Instant::now();
    let mut searched = 0usize;
    let mut outcomes = Vec::new();
    while searched < trace.len() || start.elapsed().as_millis() < 50 {
        ca_ram_core::engine::SearchEngine::search_batch_into(&table, &probe, &mut outcomes);
        searched += probe.len();
    }
    Ok(searched as f64 / start.elapsed().as_secs_f64())
}

/// Everything the capacity section of the report needs.
struct CapacityReport {
    closed_rps: f64,
    flood_rps: f64,
    flood_single_rps: f64,
    serial_keys_per_sec: f64,
    effective_workers: usize,
    capacity_ratio: f64,
    shard_requests: Vec<u64>,
    routing_max_min_ratio: f64,
    /// Interleaved A/B flood pair: best throughput with 1/256 trace
    /// sampling vs. tracing disabled, on the same service.
    traced_flood_rps: f64,
    untraced_flood_rps: f64,
    tracing_overhead: f64,
}

#[allow(clippy::cast_precision_loss)]
fn report_json(
    records: usize,
    config: &ServiceConfig,
    capacity: &CapacityReport,
    cycle_ns: f64,
    trace_period: u64,
    points: &[SweepPoint],
) -> String {
    let mut json = String::from("{\n  \"benchmark\": \"service\",\n");
    let _ = write!(
        json,
        "  \"records\": {records},\n  \"shards\": {},\n  \"queue_depth\": {},\n  \
         \"batch_max\": {},\n  \"nmem\": {NMEM},\n  \
         \"closed_loop_rps\": {:.1},\n  \"flood_capacity_rps\": {:.1},\n  \
         \"flood_single_rps\": {:.1},\n  \"serial_keys_per_sec\": {:.1},\n  \
         \"effective_workers\": {},\n  \"capacity_ratio\": {:.4},\n  \
         \"calibrated_cycle_ns\": {cycle_ns:.2},\n",
        config.shards,
        config.queue_depth,
        config.batch_max,
        capacity.closed_rps,
        capacity.flood_rps,
        capacity.flood_single_rps,
        capacity.serial_keys_per_sec,
        capacity.effective_workers,
        capacity.capacity_ratio,
    );
    let _ = write!(
        json,
        "  \"shard_requests\": [{}],\n  \"routing_max_min_ratio\": {:.4},\n",
        capacity
            .shard_requests
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        capacity.routing_max_min_ratio,
    );
    let _ = write!(
        json,
        "  \"trace_period\": {trace_period},\n  \
         \"tracing_overhead\": {{\"traced_flood_rps\": {:.1}, \
         \"untraced_flood_rps\": {:.1}, \"overhead\": {:.4}}},\n",
        capacity.traced_flood_rps, capacity.untraced_flood_rps, capacity.tracing_overhead,
    );
    json.push_str("  \"sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        let m = &p.measured;
        let _ = writeln!(
            json,
            "    {{\"target_rps\": {:.1}, \"offered_rps\": {:.1}, \"achieved_rps\": {:.1}, \
             \"offered\": {}, \"completed\": {}, \"rejected\": {}, \"shed\": {}, \
             \"coalesced\": {}, \"p50_us\": {}, \"p99_us\": {}, \
             \"queue_wait_p50_us\": {}, \"queue_wait_p99_us\": {}, \
             \"model_p50_us\": {:.2}, \"model_p99_us\": {:.2}, \
             \"model_throughput_per_cycle\": {:.5}, \
             \"ladder_transitions\": {}, \"slo_p99_us\": {}, \
             \"slo_burn_rate\": {:.4}, \"slo_breached\": {}}}{}",
            p.target_rps,
            m.offered_rps,
            m.achieved_rps,
            m.offered,
            m.completed,
            m.rejected,
            m.shed,
            m.coalesced,
            m.latency.p50_us,
            m.latency.p99_us,
            m.queue_wait.p50_us,
            m.queue_wait.p99_us,
            p.model_p50_us,
            p.model_p99_us,
            p.model_throughput,
            p.ladder_transitions,
            p.slo_p99_us,
            p.slo_burn_rate,
            p.slo_breached,
            if i + 1 == points.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}\n");
    json
}

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn main() -> Result<()> {
    let cli = Cli::from_env();
    let smoke = cli.flag("smoke");
    let records = cli.parse("records", if smoke { 4_000 } else { 20_000 })?;
    let lookups = cli.parse("lookups", if smoke { 8_000 } else { 40_000 })?;
    let shards = cli.parse("shards", 4usize)?;
    let queue_depth = cli.parse("queue-depth", 256usize)?;
    let batch_max = cli.parse("batch-max", 64usize)?;
    let flood_batch = cli.parse("flood-batch", 256usize)?;
    let flood_window = cli.parse("flood-window", 8usize)?;
    // Default floor: the batched flood must reach ≥ 35% of the engine
    // bandwidth the available cores could deliver — i.e. within ~3x of the
    // serial rate per effective worker, which holds with margin even when
    // client and workers time-share one core. Raise it on bigger machines.
    let capacity_floor = cli.parse("capacity-floor", 0.35f64)?;
    // 1-in-N request-lifecycle trace sampling for the sweep (0 = off);
    // the overhead A/B pair always compares 1/256 against disabled.
    let trace_period = cli.parse("trace-period", 256u64)?;
    let seed = cli.parse("seed", 0x5E27u64)?;
    let out = cli.parse("out", "BENCH_service.json".to_string())?;
    let flight_out = cli.parse("flight-out", "BENCH_flight.json".to_string())?;
    ensure(records > 0, "--records must be > 0")?;
    ensure(
        lookups >= 2_000,
        "--lookups must be >= 2000 for stable gates",
    )?;
    ensure(shards > 0, "--shards must be > 0")?;

    let config = ServiceConfig {
        shards,
        queue_depth,
        batch_max,
        trace_sample_period: trace_period,
        ..ServiceConfig::default()
    };
    let workload = exact_match_workload(records, lookups, seed);
    let engines = (0..shards)
        .map(|_| {
            shard_table(records.div_ceil(shards)).map(|t| Box::new(t) as Box<dyn SearchEngine>)
        })
        .collect::<Result<Vec<_>>>()?;
    let service = SearchService::new(config, engines)?;
    for &(key, value) in &workload.pairs {
        service.insert_sync(Record::new(TernaryKey::binary(u128::from(key), 64), value))?;
    }
    let trace: Vec<SearchKey> = workload
        .trace
        .iter()
        .map(|&i| SearchKey::new(u128::from(workload.keys[i]), 64))
        .collect();
    let client = ServiceClient::new(&service);

    println!("serve_bench: {records} records across {shards} shards, {lookups} lookups/point");

    // -- Calibrate: closed loop, one client per shard, minimal queueing.
    let closed = client.closed_loop(&trace, shards, (lookups / shards).max(500));
    let cycle_secs = (closed.latency.p50_us as f64 * 1e-6) / f64::from(NMEM + 1);
    println!(
        "closed loop: {:.0} req/s, p50 {} us -> model cycle {:.1} ns",
        closed.achieved_rps,
        closed.latency.p50_us,
        cycle_secs * 1e9
    );
    ensure(
        cycle_secs > 0.0,
        "calibration degenerate: closed-loop p50 was below timer resolution",
    )?;

    // -- Calibrate the engine itself: serial batch bandwidth in-process.
    let serial_rate = serial_keys_per_sec(records.div_ceil(shards), &workload.pairs, &trace)?;
    // The capacity gate scales by how many shard workers can actually run
    // concurrently — on a box with fewer cores than shards, the workers
    // time-share and `shards × serial` is unreachable by construction.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let effective_workers = shards.min(cores);
    println!(
        "serial engine: {:.0} keys/s; {effective_workers} of {shards} workers can run concurrently",
        serial_rate
    );

    // -- Ceiling: windowed batched flood on the lock-free path, plus the
    //    per-key flood for comparison. The flood trace is the lookup trace
    //    repeated to at least 32k keys so the measurement window outlasts
    //    scheduler jitter.
    let mut flood_trace = trace.clone();
    while flood_trace.len() < 32_000 {
        flood_trace.extend_from_slice(&trace);
    }
    let flood = client.flood_batched(&flood_trace, flood_batch, flood_window);
    println!(
        "batched flood ({flood_batch}/batch, window {flood_window}): {:.0} req/s achieved, \
         {} shed of {}",
        flood.achieved_rps, flood.shed, flood.offered
    );
    let flood_single = client.open_loop(&trace, f64::INFINITY);
    println!(
        "per-key flood: {:.0} req/s achieved, {} rejected of {}",
        flood_single.achieved_rps, flood_single.rejected, flood_single.offered
    );
    let capacity_ratio = flood.achieved_rps / (serial_rate * effective_workers as f64).max(1e-9);
    println!(
        "capacity ratio: {:.2} of {effective_workers} x serial (floor {capacity_floor})",
        capacity_ratio
    );

    // -- Tracing overhead: interleaved A/B floods on the same service,
    //    best-of-N per arm so scheduler noise cancels. The traced arm
    //    samples 1 in 256 admissions — the production setting the <5%
    //    bound is claimed for — regardless of the sweep's --trace-period.
    let overhead_rounds = 3;
    let mut traced_flood_rps = 0f64;
    let mut untraced_flood_rps = 0f64;
    for _ in 0..overhead_rounds {
        service.set_trace_period(256);
        let traced = client.flood_batched(&flood_trace, flood_batch, flood_window);
        traced_flood_rps = traced_flood_rps.max(traced.achieved_rps);
        service.set_trace_period(0);
        let untraced = client.flood_batched(&flood_trace, flood_batch, flood_window);
        untraced_flood_rps = untraced_flood_rps.max(untraced.achieved_rps);
    }
    service.set_trace_period(trace_period);
    let tracing_overhead = 1.0 - traced_flood_rps / untraced_flood_rps.max(1e-9);
    println!(
        "tracing overhead (1/256 sampling, best of {overhead_rounds}): \
         {traced_flood_rps:.0} traced vs {untraced_flood_rps:.0} untraced req/s \
         ({:+.2}%)",
        tracing_overhead * 100.0
    );

    // -- Sweep: under the closed-loop knee up to 3x the flood ceiling.
    let mut targets = vec![
        0.2 * closed.achieved_rps,
        0.5 * closed.achieved_rps,
        1.0 * closed.achieved_rps,
    ];
    if !smoke {
        targets.push(0.5 * flood.achieved_rps);
        targets.push(1.0 * flood.achieved_rps);
    }
    targets.push(3.0 * flood.achieved_rps);
    targets.retain(|t| *t > 0.0);
    targets.sort_by(f64::total_cmp);
    targets.dedup();

    let model_config = config.queue_model(NMEM, ACCEPTS_PER_CYCLE);
    model_config.validate()?;
    // Flush ladder transitions and the SLO window the calibration floods
    // provoked, so each sweep row reports only its own.
    let _ = service.take_ladder_transitions();
    let _ = service.slo_tick();
    let mut points = Vec::with_capacity(targets.len());
    for target_rps in targets {
        let measured = client.open_loop(&trace, target_rps);
        let transitions = service.take_ladder_transitions();
        let slo = service.slo_tick();
        let model = model_at(&service, model_config, target_rps, cycle_secs, &trace)?;
        println!(
            "offered {:>9.0} req/s: p50 {:>6} us (model {:>8.1}), p99 {:>6} us (model {:>8.1}), \
             rejected {:>5}, shed {:>4}, ladder {:>3}, burn {:>6.2}",
            target_rps,
            measured.latency.p50_us,
            cycles_to_us(model.p50_cycles as f64, cycle_secs),
            measured.latency.p99_us,
            cycles_to_us(model.p99_cycles as f64, cycle_secs),
            measured.rejected,
            measured.shed,
            transitions.len(),
            slo.burn_rate,
        );
        points.push(SweepPoint {
            target_rps,
            measured,
            model_p50_us: cycles_to_us(model.p50_cycles as f64, cycle_secs),
            model_p99_us: cycles_to_us(model.p99_cycles as f64, cycle_secs),
            model_throughput: model.throughput,
            ladder_transitions: transitions.len(),
            slo_p99_us: slo.p99_us,
            slo_burn_rate: slo.burn_rate,
            slo_breached: slo.breached,
        });
    }

    // -- In-process telemetry export must validate.
    let mut registry = MetricsRegistry::new();
    service.export_metrics(&mut registry, "serve_bench");
    let telemetry = to_json(&registry);
    let scopes = validate_json(&telemetry)
        .map_err(|e| ca_ram_bench::BenchError::Arg(format!("telemetry export invalid: {e}")))?;
    ensure(scopes > shards, "telemetry export missing per-shard scopes")?;
    println!("telemetry export: {scopes} scopes valid");

    // -- Routing balance: requests per shard, hottest over coldest.
    let snapshot = service.snapshot();
    let shard_requests: Vec<u64> = snapshot.shards.iter().map(|s| s.accepted).collect();
    let max_requests = shard_requests.iter().copied().max().unwrap_or(0);
    let min_requests = shard_requests.iter().copied().min().unwrap_or(0);
    let routing_max_min_ratio = if min_requests > 0 {
        max_requests as f64 / min_requests as f64
    } else {
        f64::INFINITY
    };
    let totals = snapshot.totals();
    println!(
        "routing balance: {shard_requests:?} requests/shard (max/min {routing_max_min_ratio:.2}); \
         {} parks / {} unparks, {} batch entries carrying {} keys",
        totals.parks, totals.unparks, totals.batch_entries, totals.batch_keys
    );

    // -- Flight recorder: force a shed storm on a dedicated fully-traced
    //    service, dump the flight ring, and gate the dump: client-observed
    //    terminals must partition the admitted set exactly (conservation)
    //    and every retained trace's spans must explain >= 90% of its
    //    end-to-end latency.
    let storm_config = ServiceConfig {
        shards: 1,
        queue_depth: 256,
        trace_sample_period: 1,
        ..ServiceConfig::default()
    };
    let storm = SearchService::new(
        storm_config,
        vec![Box::new(shard_table(records.div_ceil(shards))?) as Box<dyn SearchEngine>],
    )?;
    let mut storm_client_completed = 0u64;
    for &(key, value) in workload.pairs.iter().take(1_000) {
        storm.insert_sync(Record::new(TernaryKey::binary(u128::from(key), 64), value))?;
        storm_client_completed += 1;
    }
    for key in trace.iter().take(256) {
        let _ = storm.search_sync(key);
        storm_client_completed += 1;
    }
    // Already-expired deadlines: every admitted request sheds at pickup.
    let expired = Instant::now() - Duration::from_millis(5);
    let mut storm_tickets = Vec::new();
    let mut storm_client_rejected = 0u64;
    for &key in trace.iter().take(512) {
        match storm.try_submit_with_deadline(ServiceOp::Search(key), Some(expired)) {
            Ok(ticket) => storm_tickets.push(ticket),
            Err(_) => storm_client_rejected += 1,
        }
    }
    let mut storm_client_shed = 0u64;
    for ticket in storm_tickets {
        match ticket.wait().reply {
            ServiceReply::Shed(_) => storm_client_shed += 1,
            _ => storm_client_completed += 1,
        }
    }
    let storm_slo = storm.slo_tick();
    let dump = storm.flight_json("forced shed storm");
    let storm_totals = storm.snapshot().totals();
    ensure(storm_client_shed > 0, "the forced storm must shed")?;
    ensure(
        dump.contains(FLIGHT_SCHEMA),
        "flight dump missing schema tag",
    )?;
    // Conservation, cross-checked against what the clients saw: completed
    // + shed + rejected == admitted, with each term measured client-side
    // and the counter side derived independently.
    ensure(
        storm_client_completed
            == storm_totals.accepted - storm_totals.shed_deadline - storm_totals.shed_shutdown,
        "flight conservation: client completions disagree with the counters",
    )?;
    ensure(
        storm_client_shed == storm_totals.shed_deadline + storm_totals.shed_shutdown,
        "flight conservation: client sheds disagree with the counters",
    )?;
    ensure(
        storm_client_rejected == storm_totals.rejected,
        "flight conservation: client rejects disagree with the counters",
    )?;
    let storm_traces = storm.retained_traces();
    ensure(
        !storm_traces.is_empty(),
        "a fully-sampled storm must retain traces",
    )?;
    for trace in &storm_traces {
        trace
            .validate()
            .map_err(|e| ca_ram_bench::BenchError::Arg(format!("flight trace invalid: {e}")))?;
        ensure(
            trace.span_coverage() >= 0.90,
            "trace spans must explain >= 90% of end-to-end latency",
        )?;
    }
    storm.shutdown();
    write_text_atomic(&flight_out, &dump)?;
    println!(
        "flight dump: {} traces retained, {} shed / {} completed / {} rejected, \
         slo burn {:.2} -> wrote {flight_out}",
        storm_traces.len(),
        storm_client_shed,
        storm_client_completed,
        storm_client_rejected,
        storm_slo.burn_rate
    );

    // -- Sanity gates: always-on conservation, the rest hard under --smoke.
    for p in &points {
        let m = &p.measured;
        ensure(
            m.completed + m.rejected + m.shed == m.offered,
            "request conservation violated: completed + rejected + shed != offered",
        )?;
    }
    let low = &points[0];
    let high = points.last().expect("sweep is non-empty");
    if smoke {
        ensure(
            low.measured.rejected == 0 && low.measured.shed == 0,
            "low-load point must neither reject nor shed",
        )?;
        ensure(
            low.measured.completed == low.measured.offered,
            "low-load point must complete every request",
        )?;
        ensure(
            high.measured.rejected > 0,
            "past saturation the bounded queue must reject at admission",
        )?;
        // The queue is bounded, so overload throughput cannot exceed the
        // measured ceiling by more than measurement noise.
        ensure(
            high.measured.achieved_rps <= flood.achieved_rps * 2.0,
            "overload throughput exceeds the saturation ceiling",
        )?;
        // The model and the measurement share a calibrated time base; at
        // low load they must agree to well within two orders of magnitude
        // (scheduler noise on the measured side dwarfs finer bounds in CI).
        let p50_ratio = low.measured.latency.p50_us as f64 / low.model_p50_us.max(1e-9);
        ensure(
            (0.05..=20.0).contains(&p50_ratio),
            "low-load measured p50 does not track the queue model",
        )?;
        // Capacity-ratio floor: the serving layer may not throw away more
        // than (1 - floor) of the engine bandwidth the machine can reach.
        ensure(
            capacity_ratio >= capacity_floor,
            "batched flood capacity fell below the serving-efficiency floor",
        )?;
        ensure(
            routing_max_min_ratio.is_finite() && routing_max_min_ratio < 2.0,
            "SplitMix64 routing balance degenerated (max/min >= 2)",
        )?;
        // The tracing tax at the production sampling rate stays under 5%
        // of flood throughput (the PR-3 discipline: observability must
        // pay for itself on the hot path).
        ensure(
            traced_flood_rps >= 0.95 * untraced_flood_rps,
            "1/256 trace sampling cost more than 5% of flood throughput",
        )?;
        // Overload must show up on the degradation ladder: the 3x-flood
        // point rejects, so its drains transition to the reject rung.
        ensure(
            high.ladder_transitions > 0,
            "the overload point must provoke ladder transitions",
        )?;
        // Compiled query plans ride the same admission path as plain
        // searches: a two-probe plan (guaranteed miss, then a stored key)
        // must resolve through the service with accesses summed over both
        // probes — the serving-side contract of the pattern compiler's
        // multi-probe ladders.
        let absent = (0u64..)
            .find(|v| workload.keys.binary_search(v).is_err())
            .map(u128::from)
            .expect("a 64-bit value outside the workload exists");
        let stored = trace[0];
        let plan = QueryPlan::new(vec![SearchKey::new(absent, 64), stored]);
        let planned = service.search_plan_sync(&plan);
        let direct = service.search_sync(&stored);
        ensure(
            planned.hit == direct.hit,
            "pattern plan resolved to a different hit than the direct search",
        )?;
        ensure(
            planned.memory_accesses >= direct.memory_accesses,
            "pattern plan must account for the missing probe's accesses",
        )?;
        println!(
            "pattern plan round-trip: 2 probes, hit data {:?}, {} accesses",
            planned.hit.map(|h| h.data),
            planned.memory_accesses
        );
        println!(
            "smoke gates passed (low-load p50 measured/model = {p50_ratio:.2}, \
             capacity ratio {capacity_ratio:.2} >= {capacity_floor})"
        );
    }

    let capacity = CapacityReport {
        closed_rps: closed.achieved_rps,
        flood_rps: flood.achieved_rps,
        flood_single_rps: flood_single.achieved_rps,
        serial_keys_per_sec: serial_rate,
        effective_workers,
        capacity_ratio,
        shard_requests,
        routing_max_min_ratio,
        traced_flood_rps,
        untraced_flood_rps,
        tracing_overhead,
    };
    let json = report_json(
        records,
        &config,
        &capacity,
        cycle_secs * 1e9,
        trace_period,
        &points,
    );
    write_text_atomic(&out, &json)?;
    println!("wrote {out}");
    Ok(())
}
