//! The [`MetricsRegistry`]: a named aggregation point for every metric the
//! repo produces — per-slice, per-database, and per-engine — feeding the
//! JSON and Prometheus exporters in [`super::export`].
//!
//! The registry is deliberately schema-free at this layer: a scope is a
//! `(kind, name)` pair holding ordered lists of counters, gauges, and
//! histograms. Components publish whatever they measure; the exporters
//! impose the wire schema. This keeps the registry usable by the six CAM
//! baselines and softsearch (which have no native sinks — their metrics
//! come from [`crate::engine::EngineOutcome`] streams) as well as the
//! deeply instrumented CA-RAM table.

use crate::engine::EngineOutcome;
use crate::stats::SearchStats;

use super::histogram::Histogram;
use super::trace::TelemetrySnapshot;

/// What a scope describes — exported as the `kind` label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScopeKind {
    /// A whole search engine (CA-RAM design, CAM baseline, softsearch).
    Engine,
    /// One physical slice of a CA-RAM table.
    Slice,
    /// One database inside a multi-database subsystem.
    Database,
    /// The subsystem input controller.
    Controller,
    /// A whole serving frontend (shard router + admission control).
    Service,
    /// One engine shard behind a serving frontend.
    Shard,
    /// A rolling-window SLO evaluation (latency targets, burn rate).
    Slo,
    /// A flight recorder's ring state (events recorded / overwritten).
    Recorder,
}

impl ScopeKind {
    /// Every kind the schema knows — the exporter's closed vocabulary,
    /// enforced by [`super::export::validate_json`].
    pub const ALL: [ScopeKind; 8] = [
        ScopeKind::Engine,
        ScopeKind::Slice,
        ScopeKind::Database,
        ScopeKind::Controller,
        ScopeKind::Service,
        ScopeKind::Shard,
        ScopeKind::Slo,
        ScopeKind::Recorder,
    ];

    /// Stable lowercase name used in exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScopeKind::Engine => "engine",
            ScopeKind::Slice => "slice",
            ScopeKind::Database => "database",
            ScopeKind::Controller => "controller",
            ScopeKind::Service => "service",
            ScopeKind::Shard => "shard",
            ScopeKind::Slo => "slo",
            ScopeKind::Recorder => "recorder",
        }
    }

    /// The kind for an exported `kind` label, if it is in the schema.
    #[must_use]
    pub fn from_name(name: &str) -> Option<ScopeKind> {
        ScopeKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// All metrics published under one `(kind, name)` scope.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeMetrics {
    /// What this scope describes.
    pub kind: ScopeKind,
    /// Unique name within the kind (engine label, slice index, …).
    pub name: String,
    /// Monotonic event counts, in publication order.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time measurements (rates, factors, means).
    pub gauges: Vec<(String, f64)>,
    /// Named distributions.
    pub histograms: Vec<(String, Histogram)>,
}

impl ScopeMetrics {
    fn new(kind: ScopeKind, name: &str) -> Self {
        Self {
            kind,
            name: name.to_string(),
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Sets counter `name` to `value`, replacing any prior value.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        if let Some(slot) = self.counters.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.counters.push((name.to_string(), value));
        }
    }

    /// Sets gauge `name` to `value`, replacing any prior value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        if let Some(slot) = self.gauges.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.gauges.push((name.to_string(), value));
        }
    }

    /// Sets histogram `name` to `h`, replacing any prior value.
    pub fn set_histogram(&mut self, name: &str, h: Histogram) {
        if let Some(slot) = self.histograms.iter_mut().find(|(n, _)| n == name) {
            slot.1 = h;
        } else {
            self.histograms.push((name.to_string(), h));
        }
    }

    /// Looks up a counter by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Publishes flat search counters plus their derived gauges.
    pub fn record_search_stats(&mut self, stats: &SearchStats) {
        self.set_counter("searches", stats.searches);
        self.set_counter("hits", stats.hits);
        self.set_counter("memory_accesses", stats.memory_accesses);
        self.set_gauge("hit_rate", stats.hit_rate());
        self.set_gauge("measured_amal", stats.measured_amal());
    }
}

/// An ordered collection of metric scopes, ready for export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    scopes: Vec<ScopeMetrics>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The scope for `(kind, name)`, created on first use. Scopes keep
    /// their creation order in exports.
    pub fn scope_mut(&mut self, kind: ScopeKind, name: &str) -> &mut ScopeMetrics {
        let i = self
            .scopes
            .iter()
            .position(|s| s.kind == kind && s.name == name)
            .unwrap_or_else(|| {
                self.scopes.push(ScopeMetrics::new(kind, name));
                self.scopes.len() - 1
            });
        &mut self.scopes[i]
    }

    /// All scopes, in creation order.
    #[must_use]
    pub fn scopes(&self) -> &[ScopeMetrics] {
        &self.scopes
    }

    /// Looks up a scope by kind and name.
    #[must_use]
    pub fn scope(&self, kind: ScopeKind, name: &str) -> Option<&ScopeMetrics> {
        self.scopes
            .iter()
            .find(|s| s.kind == kind && s.name == name)
    }

    /// Publishes a full [`TelemetrySnapshot`] under an engine scope: the
    /// flat counters plus every non-empty distribution and stage count.
    pub fn record_snapshot(&mut self, name: &str, snap: &TelemetrySnapshot) {
        let scope = self.scope_mut(ScopeKind::Engine, name);
        scope.record_search_stats(&snap.stats);
        for (hist_name, hist) in [
            ("probe_length", &snap.probe_length),
            ("row_fetches", &snap.row_fetches),
            ("match_popcount", &snap.match_popcount),
            ("insert_occupancy", &snap.insert_occupancy),
            ("queue_depth", &snap.queue_depth),
            ("queue_wait", &snap.queue_wait),
        ] {
            if !hist.is_empty() {
                scope.set_histogram(hist_name, hist.clone());
            }
        }
        for (stage, &count) in super::trace::Stage::ALL.iter().zip(&snap.stage_counts) {
            if count > 0 {
                scope.set_counter(&format!("stage_{}", stage.name()), count);
            }
        }
    }

    /// Publishes per-engine metrics derived from a stream of
    /// [`EngineOutcome`]s — the generic instrumentation path for engines
    /// with no native sink (the CAM baselines, softsearch). Builds the
    /// flat counters plus a row-fetch distribution from the per-search
    /// `memory_accesses`.
    pub fn record_outcomes(&mut self, name: &str, outcomes: &[EngineOutcome]) {
        let mut stats = SearchStats::new();
        let mut fetches = Histogram::new();
        for outcome in outcomes {
            stats.record(outcome.hit.is_some(), outcome.memory_accesses);
            fetches.record(u64::from(outcome.memory_accesses));
        }
        let scope = self.scope_mut(ScopeKind::Engine, name);
        scope.record_search_stats(&stats);
        scope.set_histogram("row_fetches", fetches);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineHit;
    use crate::key::TernaryKey;

    #[test]
    fn kind_names_round_trip_and_close_the_vocabulary() {
        for kind in ScopeKind::ALL {
            assert_eq!(ScopeKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(ScopeKind::from_name("slo"), Some(ScopeKind::Slo));
        assert_eq!(ScopeKind::from_name("recorder"), Some(ScopeKind::Recorder));
        assert_eq!(ScopeKind::from_name("widget"), None);
        assert_eq!(ScopeKind::from_name("Engine"), None, "names are lowercase");
    }

    #[test]
    fn scope_get_or_create_preserves_order() {
        let mut reg = MetricsRegistry::new();
        reg.scope_mut(ScopeKind::Engine, "a").set_counter("x", 1);
        reg.scope_mut(ScopeKind::Slice, "0").set_counter("x", 2);
        reg.scope_mut(ScopeKind::Engine, "a").set_counter("x", 3);
        assert_eq!(reg.scopes().len(), 2);
        assert_eq!(reg.scopes()[0].counter("x"), Some(3));
        assert_eq!(
            reg.scope(ScopeKind::Slice, "0").unwrap().counter("x"),
            Some(2)
        );
        assert!(reg.scope(ScopeKind::Database, "a").is_none());
    }

    #[test]
    fn set_replaces_in_place() {
        let mut scope = ScopeMetrics::new(ScopeKind::Engine, "e");
        scope.set_gauge("g", 1.0);
        scope.set_gauge("g", 2.0);
        assert_eq!(scope.gauges.len(), 1);
        assert_eq!(scope.gauge("g"), Some(2.0));
        let mut h = Histogram::new();
        h.record(1);
        scope.set_histogram("h", h.clone());
        scope.set_histogram("h", h.clone());
        assert_eq!(scope.histograms.len(), 1);
        assert_eq!(scope.histogram("h"), Some(&h));
        assert!(scope.histogram("missing").is_none());
    }

    #[test]
    fn search_stats_publish_counters_and_gauges() {
        let mut stats = SearchStats::new();
        stats.record(true, 2);
        stats.record(false, 4);
        let mut scope = ScopeMetrics::new(ScopeKind::Engine, "e");
        scope.record_search_stats(&stats);
        assert_eq!(scope.counter("searches"), Some(2));
        assert_eq!(scope.counter("hits"), Some(1));
        assert_eq!(scope.counter("memory_accesses"), Some(6));
        assert_eq!(scope.gauge("hit_rate"), Some(0.5));
        assert_eq!(scope.gauge("measured_amal"), Some(3.0));
    }

    #[test]
    fn outcomes_build_stats_and_fetch_histogram() {
        let outcomes = vec![
            EngineOutcome {
                hit: Some(EngineHit {
                    key: TernaryKey::binary(7, 32),
                    data: 7,
                }),
                memory_accesses: 1,
            },
            EngineOutcome {
                hit: None,
                memory_accesses: 3,
            },
        ];
        let mut reg = MetricsRegistry::new();
        reg.record_outcomes("tcam", &outcomes);
        let scope = reg.scope(ScopeKind::Engine, "tcam").unwrap();
        assert_eq!(scope.counter("searches"), Some(2));
        assert_eq!(scope.counter("hits"), Some(1));
        let fetches = scope.histogram("row_fetches").unwrap();
        assert_eq!(fetches.count(), 2);
        assert_eq!(fetches.sum(), 4);
    }

    #[test]
    fn snapshot_publishes_nonempty_series_only() {
        use super::super::trace::{HistogramSink, ProbeSummary, Stage, TelemetrySink};
        let sink = HistogramSink::deep();
        sink.stage(Stage::Match, 1);
        sink.search_complete(&ProbeSummary {
            hit: true,
            row_fetches: 1,
            probe_length: 0,
            homes: 1,
        });
        let mut reg = MetricsRegistry::new();
        reg.record_snapshot("caram", &sink.snapshot());
        let scope = reg.scope(ScopeKind::Engine, "caram").unwrap();
        assert!(scope.histogram("probe_length").is_some());
        assert!(scope.histogram("match_popcount").is_some());
        assert!(scope.histogram("queue_depth").is_none());
        assert_eq!(scope.counter("stage_match"), Some(1));
        assert_eq!(scope.counter("stage_hash"), None);
    }
}
