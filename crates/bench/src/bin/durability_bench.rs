//! Durability overhead and recovery benchmark: prices the write-ahead
//! log against the in-memory baseline and measures how fast a table
//! comes back after a crash.
//!
//! Method: the same insert stream runs through (a) a plain heap-backed
//! [`ca_ram_core::table::CaRamTable`] (the baseline the paper's substrate
//! assumes), (b) a [`DurableTable`] committing per operation, and (c)
//! durable tables
//! group-committing every N operations — the shard drain's batching
//! discipline — under both `SyncPolicy::Flush` and `SyncPolicy::Sync`.
//! The batch=256 Flush table is then used to time the two recovery
//! paths: a pure WAL-tail replay and a checkpoint-then-snapshot-restore
//! cycle. A bounded crash-injection sweep (every record boundary plus a
//! torn intra-record sample) rides along so the bench doubles as a
//! durability smoke test, and the search path is re-measured through the
//! durable wrapper to show the read side stays on the heap hot path.
//!
//! Usage: `durability_bench [--records N] [--lookups N] [--seed N]
//! [--out PATH] [--smoke]`
//!
//! `--smoke` shrinks the workload to CI scale and turns the sanity
//! gates (recovered contents, bounded batched-write overhead, read-path
//! parity, a green crash sweep) into hard failures.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use ca_ram_bench::fleet::durable_spec;
use ca_ram_bench::{ensure, exact_match_workload, write_text_atomic, Cli, Result};
use ca_ram_core::engine::SearchEngine;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::oracle::Op;
use ca_ram_core::probe::ProbePolicy;
use ca_ram_core::storage::durable::unique_temp_dir;
use ca_ram_core::storage::{
    crash_sweep, CrashSweepOptions, CutGranularity, DurableOptions, DurableTable, IndexSpec,
    SyncPolicy, TableSpec,
};
use ca_ram_core::table::{Arrangement, OverflowPolicy, TableConfig};

/// Record slots per table row (matches `serve_bench`'s shard geometry).
const SLOTS_PER_ROW: u32 = 8;

/// A table spec sized so `records` binary 64-bit keys insert without
/// exhausting the probe sequence (3x headroom over a uniform split).
fn sized_spec(records: usize) -> TableSpec {
    let layout = RecordLayout::new(64, false, 64);
    let buckets = (records * 3).div_ceil(SLOTS_PER_ROW as usize).max(16);
    let rows_log2 = buckets.next_power_of_two().trailing_zeros();
    TableSpec {
        config: TableConfig {
            rows_log2,
            row_bits: SLOTS_PER_ROW * layout.slot_bits(),
            layout,
            arrangement: Arrangement::Horizontal(1),
            probe: ProbePolicy::Linear,
            overflow: OverflowPolicy::Probe {
                max_steps: u32::MAX,
            },
        },
        index: IndexSpec::RangeSelect {
            low: 0,
            count: rows_log2,
        },
    }
}

/// One write-mode measurement.
struct Mode {
    name: &'static str,
    sync: &'static str,
    commit_batch: usize,
    inserts_per_sec: f64,
    /// Throughput relative to the heap baseline (1.0 = free durability).
    vs_heap: f64,
}

/// Inserts `pairs` into a fresh durable table at `dir`, committing every
/// `batch` operations, and returns (inserts/s, the table).
#[allow(clippy::cast_precision_loss)]
fn durable_insert_rate(
    dir: &Path,
    spec: &TableSpec,
    opts: DurableOptions,
    batch: usize,
    pairs: &[(u64, u64)],
) -> Result<(f64, DurableTable)> {
    let mut table = DurableTable::create(dir, spec, opts)?;
    let start = Instant::now();
    for (i, &(key, value)) in pairs.iter().enumerate() {
        table.insert(Record::new(TernaryKey::binary(u128::from(key), 64), value))?;
        if batch > 0 && (i + 1) % batch == 0 {
            table.commit()?;
        }
    }
    table.commit()?;
    Ok((pairs.len() as f64 / start.elapsed().as_secs_f64(), table))
}

/// Measures `search_batch_into` throughput (keys/s) over `probe`.
#[allow(clippy::cast_precision_loss)]
fn search_rate(engine: &dyn SearchEngine, probe: &[SearchKey]) -> f64 {
    let mut outcomes = Vec::new();
    let start = Instant::now();
    let mut searched = 0usize;
    while searched < 200_000 || start.elapsed().as_millis() < 50 {
        engine.search_batch_into(probe, &mut outcomes);
        searched += probe.len();
    }
    searched as f64 / start.elapsed().as_secs_f64()
}

/// The op stream the crash-injection smoke sweeps: interleaved inserts,
/// deletes, and updates over 32-bit keys, dense enough that every cut
/// boundary lands between operations with visible effects.
fn crash_stream() -> Vec<Op> {
    let bits = 32u32;
    let mut ops = Vec::new();
    for i in 0..120u64 {
        let key = TernaryKey::binary(u128::from(i * 3 + 1), bits);
        ops.push(Op::Insert(Record::new(key, i)));
        if i % 5 == 4 {
            let victim = TernaryKey::binary(u128::from((i - 2) * 3 + 1), bits);
            ops.push(Op::Delete(victim));
        }
        if i % 7 == 6 {
            ops.push(Op::Update {
                key: TernaryKey::binary(u128::from((i - 1) * 3 + 1), bits),
                data: i ^ 0xDEAD,
            });
        }
    }
    ops
}

struct TempDirs(Vec<PathBuf>);

impl TempDirs {
    fn next(&mut self, tag: &str) -> PathBuf {
        let dir = unique_temp_dir(tag);
        self.0.push(dir.clone());
        dir
    }
}

impl Drop for TempDirs {
    fn drop(&mut self) {
        for dir in &self.0 {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn main() -> Result<()> {
    let cli = Cli::from_env();
    let smoke = cli.flag("smoke");
    let records = cli.parse("records", if smoke { 4_000 } else { 20_000 })?;
    let lookups = cli.parse("lookups", if smoke { 4_000 } else { 20_000 })?;
    let seed = cli.parse("seed", 0xD07Au64)?;
    let out = cli.parse("out", "BENCH_durability.json".to_string())?;
    ensure(records >= 512, "--records must be >= 512")?;

    let spec = sized_spec(records);
    let workload = exact_match_workload(records, lookups, seed);
    let probe: Vec<SearchKey> = workload
        .trace
        .iter()
        .map(|&i| SearchKey::new(u128::from(workload.keys[i]), 64))
        .collect();
    let mut dirs = TempDirs(Vec::new());

    println!("durability_bench: {records} records, seed {seed:#x}");

    // -- Baseline: the heap-backed table the paper's substrate assumes.
    let mut heap = spec.build()?;
    let heap_rate = {
        let start = Instant::now();
        for &(key, value) in &workload.pairs {
            heap.insert(Record::new(TernaryKey::binary(u128::from(key), 64), value))?;
        }
        workload.pairs.len() as f64 / start.elapsed().as_secs_f64()
    };
    println!("heap insert: {heap_rate:.0}/s");

    // -- Durable write modes. Sync mode pays an fsync per commit, so it
    //    only runs group-committed; per-op fsync is priced by wal tests.
    let flush = DurableOptions {
        sync: SyncPolicy::Flush,
        auto_commit: false,
        ..DurableOptions::default()
    };
    let sync = DurableOptions {
        sync: SyncPolicy::Sync,
        ..flush.clone()
    };
    let mut modes: Vec<Mode> = vec![Mode {
        name: "heap",
        sync: "none",
        commit_batch: 0,
        inserts_per_sec: heap_rate,
        vs_heap: 1.0,
    }];
    let mut keep: Option<(PathBuf, DurableTable)> = None;
    let plan: &[(&'static str, &'static str, DurableOptions, usize)] = &[
        ("durable-per-op", "flush", flush.clone(), 1),
        ("durable-batch-64", "flush", flush.clone(), 64),
        ("durable-batch-256", "flush", flush.clone(), 256),
        ("durable-batch-256-fsync", "sync", sync, 256),
    ];
    for (name, sync_name, opts, batch) in plan.iter().cloned() {
        let dir = dirs.next(name);
        let (rate, table) = durable_insert_rate(&dir, &spec, opts, batch, &workload.pairs)?;
        println!(
            "{name}: {rate:.0}/s ({:.1}% of heap)",
            rate / heap_rate * 100.0
        );
        modes.push(Mode {
            name,
            sync: sync_name,
            commit_batch: batch,
            inserts_per_sec: rate,
            vs_heap: rate / heap_rate,
        });
        if name == "durable-batch-256" {
            keep = Some((dir, table));
        }
    }
    let (dur_dir, dur_table) = keep.expect("batch-256 mode ran");

    // -- Read path: searches through the durable wrapper delegate to the
    //    same in-memory table, so throughput must match the heap engine.
    let heap_search = search_rate(&heap, &probe);
    let durable_search = search_rate(&dur_table, &probe);
    let search_ratio = durable_search / heap_search.max(1e-9);
    println!(
        "search: heap {heap_search:.0} keys/s, durable {durable_search:.0} keys/s \
         (ratio {search_ratio:.2})"
    );

    // -- Recovery path A: drop the writer and replay the full WAL tail.
    drop(dur_table);
    let replay_start = Instant::now();
    let mut reopened = DurableTable::open(&dur_dir, flush.clone())?;
    let replay_secs = replay_start.elapsed().as_secs_f64();
    let replayed = reopened.recovery().replayed_records;
    let wal_replay_per_sec = replayed as f64 / replay_secs.max(1e-9);
    ensure(
        reopened.records().len() == workload.pairs.len(),
        "WAL replay lost records",
    )?;
    println!("recovery (WAL replay): {replayed} records in {replay_secs:.3}s");

    // -- Checkpoint, then recovery path B: snapshot restore.
    let ckpt_start = Instant::now();
    reopened.checkpoint()?;
    let checkpoint_secs = ckpt_start.elapsed().as_secs_f64();
    let snapshot_bytes: u64 = std::fs::read_dir(&dur_dir)
        .map(|it| {
            it.filter_map(std::result::Result::ok)
                .filter(|e| {
                    e.path()
                        .file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("snap-"))
                })
                .filter_map(|e| e.metadata().ok().map(|m| m.len()))
                .sum()
        })
        .unwrap_or(0);
    drop(reopened);
    let restore_start = Instant::now();
    let restored = DurableTable::open(&dur_dir, flush)?;
    let restore_secs = restore_start.elapsed().as_secs_f64();
    let snap_records = restored.recovery().snapshot_records;
    let snapshot_restore_per_sec = snap_records as f64 / restore_secs.max(1e-9);
    ensure(
        restored.records().len() == workload.pairs.len(),
        "snapshot restore lost records",
    )?;
    println!(
        "checkpoint: {checkpoint_secs:.3}s ({snapshot_bytes} snapshot bytes); \
         recovery (snapshot restore): {snap_records} records in {restore_secs:.3}s"
    );
    drop(restored);

    // -- Optional: file-backed arrays (mmap superblock path), rebuilt and
    //    flushed through a checkpoint.
    #[cfg(feature = "mmap")]
    let file_arrays_rate = {
        let dir = dirs.next("durable-file-arrays");
        let opts = DurableOptions {
            sync: SyncPolicy::Flush,
            auto_commit: false,
            file_arrays: true,
            ..DurableOptions::default()
        };
        let (rate, mut table) = durable_insert_rate(&dir, &spec, opts, 256, &workload.pairs)?;
        table.checkpoint()?;
        println!(
            "durable-file-arrays (batch 256 + checkpoint flush): {rate:.0}/s \
             ({:.1}% of heap)",
            rate / heap_rate * 100.0
        );
        rate
    };
    #[cfg(not(feature = "mmap"))]
    let file_arrays_rate = 0.0f64;

    // -- Crash-injection smoke: every record boundary of a mixed stream,
    //    with a mid-stream checkpoint, must recover to the model.
    let ops = crash_stream();
    let sweep = crash_sweep(
        "durability_bench",
        &|bits| durable_spec(bits, 26),
        32,
        &ops,
        &CrashSweepOptions {
            granularity: CutGranularity::Records { intra_samples: 1 },
            max_ops: ops.len(),
            checkpoint_at: Some(ops.len() / 2),
            probes_per_cut: 8,
        },
    )?;
    println!(
        "crash sweep: {} cuts ({} torn), {} probes — all recovered to the model",
        sweep.cuts_tested, sweep.torn_cuts, sweep.probes_checked
    );

    // -- Smoke gates: contents already checked above; here the bounds.
    if smoke {
        let batched = modes
            .iter()
            .find(|m| m.name == "durable-batch-256")
            .expect("mode ran");
        ensure(
            batched.vs_heap >= 0.15,
            "group-committed durable inserts fell below 15% of heap throughput",
        )?;
        ensure(
            search_ratio >= 0.5,
            "durable search path must stay on the heap hot path",
        )?;
        ensure(sweep.cuts_tested > 0, "crash sweep tested no cuts")?;
        ensure(sweep.torn_cuts > 0, "crash sweep never tore a record")?;
        println!(
            "smoke gates passed (batched overhead {:.2}x heap, search ratio {search_ratio:.2})",
            batched.vs_heap
        );
    }

    // -- Report.
    let mut json = String::from("{\n  \"benchmark\": \"durability\",\n");
    let _ = write!(
        json,
        "  \"records\": {records},\n  \"seed\": {seed},\n  \
         \"heap_inserts_per_sec\": {heap_rate:.1},\n"
    );
    json.push_str("  \"modes\": [\n");
    for (i, m) in modes.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"sync\": \"{}\", \"commit_batch\": {}, \
             \"inserts_per_sec\": {:.1}, \"vs_heap\": {:.4}}}{}",
            m.name,
            m.sync,
            m.commit_batch,
            m.inserts_per_sec,
            m.vs_heap,
            if i + 1 == modes.len() { "" } else { "," },
        );
    }
    json.push_str("  ],\n");
    let _ = write!(
        json,
        "  \"file_arrays_inserts_per_sec\": {file_arrays_rate:.1},\n  \
         \"search\": {{\"heap_keys_per_sec\": {heap_search:.1}, \
         \"durable_keys_per_sec\": {durable_search:.1}, \"ratio\": {search_ratio:.4}}},\n  \
         \"checkpoint\": {{\"elapsed_ms\": {:.2}, \"snapshot_bytes\": {snapshot_bytes}}},\n  \
         \"recovery\": {{\"wal_replay_records_per_sec\": {wal_replay_per_sec:.1}, \
         \"snapshot_restore_records_per_sec\": {snapshot_restore_per_sec:.1}}},\n  \
         \"crash_sweep\": {{\"ops_logged\": {}, \"cuts_tested\": {}, \"torn_cuts\": {}, \
         \"probes_checked\": {}}}\n",
        checkpoint_secs * 1e3,
        sweep.ops_logged,
        sweep.cuts_tested,
        sweep.torn_cuts,
        sweep.probes_checked,
    );
    json.push_str("}\n");
    write_text_atomic(&out, &json)?;
    println!("wrote {out}");
    Ok(())
}
