//! # ca-ram-bench
//!
//! The reproduction harness for the CA-RAM paper's evaluation: shared
//! experiment definitions (the Table 2 and Table 3 design points), builders
//! that map the synthetic workloads onto `CaRamTable`s, and small CLI
//! helpers. One binary per table/figure lives in `src/bin/`:
//!
//! | binary | artifact |
//! |--------|----------|
//! | `table1` | match-processor synthesis (Table 1) |
//! | `table2` | IP-lookup designs A–F (Table 2) |
//! | `table3` | trigram designs A–D (Table 3) |
//! | `fig6`   | cell-size and power comparison (Fig. 6) |
//! | `fig7`   | trigram bucket-occupancy histogram (Fig. 7) |
//! | `fig8`   | application-level area/power (Fig. 8) |
//! | `bandwidth` | Sec. 3.4 bandwidth formula vs cycle simulation |
//! | `software_baseline` | Sec. 4.1 software lookup cost |
//! | `repro_all` | everything above in sequence |

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::module_name_repetitions)]

pub mod designs;

use std::env;

/// Returns the value following `--name` on the command line, if present.
#[must_use]
pub fn arg_value(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let args: Vec<String> = env::args().collect();
    args.iter()
        .position(|a| *a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses `--name <value>` as `T`, falling back to `default`.
///
/// # Panics
///
/// Panics (with a usage message) if the value is present but unparsable.
#[must_use]
pub fn arg_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    match arg_value(name) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("--{name} expects a {} value", std::any::type_name::<T>())),
    }
}

/// Prints a rule-of-dashes separator sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}
