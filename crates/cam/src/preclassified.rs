//! Pre-classified CAM (Motomura et al. \[21\], Schultz & Gulak \[28\];
//! Sec. 5.1).
//!
//! "Their CAM array is divided into 16 categories, and matching actions are
//! confined to a single category given a search key. The target category is
//! determined by first looking up in a control-code CAM (C2CAM), which
//! stores indexes for the available categories. Their CAM structure
//! achieves higher capacity by time-sharing a common match logic among the
//! 16 categories."
//!
//! [`PreclassifiedCam`] models that organization: a small, fully
//! associative control-code CAM maps a *control code* (a designated key
//! field) to a category; only the selected category's entries are compared,
//! by match logic time-shared across categories. The per-search activity —
//! the figure of merit the scheme improves — is reported with every search.

use ca_ram_core::bits::low_mask;
use ca_ram_core::key::SearchKey;

/// A stored entry: full key + data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreclassifiedEntry {
    /// The stored key (exact match; the scheme targets dictionary lookup).
    pub key: u128,
    /// Associated data.
    pub data: u64,
}

/// Result of a pre-classified search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreclassifiedMatch {
    /// The winning entry, if any.
    pub hit: Option<PreclassifiedEntry>,
    /// Category the control-code CAM selected (`None` = unknown code,
    /// instant miss without touching the main array).
    pub category: Option<u32>,
    /// Entries actually compared (the time-shared match-logic activity).
    pub entries_compared: usize,
}

/// A CAM whose array is partitioned into categories selected by a
/// control-code field of the key.
#[derive(Debug)]
pub struct PreclassifiedCam {
    key_bits: u32,
    code_low: u32,
    code_bits: u32,
    /// Control-code CAM: code -> category index.
    c2cam: Vec<(u64, u32)>,
    categories: Vec<Vec<PreclassifiedEntry>>,
    category_capacity: usize,
}

impl PreclassifiedCam {
    /// Creates a device with `categories` categories of `category_capacity`
    /// entries; the control code is the key field `[code_low, code_low +
    /// code_bits)`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry or a code field outside the key.
    #[must_use]
    pub fn new(
        categories: u32,
        category_capacity: usize,
        key_bits: u32,
        code_low: u32,
        code_bits: u32,
    ) -> Self {
        assert!(categories > 0, "need at least one category");
        assert!(category_capacity > 0, "categories need capacity");
        assert!(key_bits > 0 && key_bits <= 128, "key width must be 1..=128");
        assert!(
            code_bits > 0 && code_bits <= 32 && code_low + code_bits <= key_bits,
            "control-code field out of range"
        );
        Self {
            key_bits,
            code_low,
            code_bits,
            c2cam: Vec::with_capacity(categories as usize),
            categories: vec![Vec::new(); categories as usize],
            category_capacity,
        }
    }

    /// Key width in bits.
    #[must_use]
    pub fn key_bits(&self) -> u32 {
        self.key_bits
    }

    /// Total entry slots across all categories.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.categories.len() * self.category_capacity
    }

    /// Total stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.categories.iter().map(Vec::len).sum()
    }

    /// Whether the device is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.categories.iter().all(Vec::is_empty)
    }

    fn code_of(&self, key: u128) -> u64 {
        #[allow(clippy::cast_possible_truncation)]
        {
            ((key >> self.code_low) & low_mask(self.code_bits)) as u64
        }
    }

    fn category_of(&self, code: u64) -> Option<u32> {
        self.c2cam
            .iter()
            .find(|(c, _)| *c == code)
            .map(|(_, cat)| *cat)
    }

    /// Inserts an entry; the control-code CAM learns new codes on demand,
    /// assigning them to the least-loaded category.
    ///
    /// Returns the category used, or `None` when the control-code CAM is
    /// out of categories to assign or the category is full.
    ///
    /// # Panics
    ///
    /// Panics if the key has bits above the device width.
    pub fn insert(&mut self, key: u128, data: u64) -> Option<u32> {
        assert!(
            self.key_bits == 128 || key < (1u128 << self.key_bits),
            "key has bits above the device width"
        );
        let code = self.code_of(key);
        let category = if let Some(c) = self.category_of(code) {
            c
        } else {
            if self.c2cam.len() >= self.categories.len() {
                return None;
            }
            // Assign the new code to the least-loaded category without a
            // code yet; fall back to the least-loaded overall.
            let used: Vec<u32> = self.c2cam.iter().map(|(_, c)| *c).collect();
            #[allow(clippy::cast_possible_truncation)]
            let cat = (0..self.categories.len() as u32)
                .filter(|c| !used.contains(c))
                .min_by_key(|&c| self.categories[c as usize].len())
                .unwrap_or(0);
            self.c2cam.push((code, cat));
            cat
        };
        let bucket = &mut self.categories[category as usize];
        if bucket.len() >= self.category_capacity {
            return None;
        }
        bucket.push(PreclassifiedEntry { key, data });
        Some(category)
    }

    /// Removes every entry storing `key` from its category, returning the
    /// number removed. The category's control code stays learned.
    pub fn remove(&mut self, key: u128) -> u32 {
        let code = self.code_of(key);
        let Some(category) = self.category_of(code) else {
            return 0;
        };
        let bucket = &mut self.categories[category as usize];
        let before = bucket.len();
        bucket.retain(|e| e.key != key);
        u32::try_from(before - bucket.len()).unwrap_or(u32::MAX)
    }

    /// Two-phase search: the C2CAM picks the category, then only that
    /// category's entries are compared.
    ///
    /// # Panics
    ///
    /// Panics on a width mismatch or a masked search key (the scheme is an
    /// exact-match dictionary CAM).
    #[must_use]
    pub fn search(&self, key: &SearchKey) -> PreclassifiedMatch {
        assert_eq!(key.bits(), self.key_bits, "search key width mismatch");
        assert!(!key.is_masked(), "pre-classified CAM is exact-match");
        let code = self.code_of(key.value());
        let Some(category) = self.category_of(code) else {
            return PreclassifiedMatch {
                hit: None,
                category: None,
                entries_compared: 0,
            };
        };
        let entries = &self.categories[category as usize];
        let hit = entries.iter().find(|e| e.key == key.value()).copied();
        PreclassifiedMatch {
            hit,
            category: Some(category),
            entries_compared: entries.len(),
        }
    }

    /// Worst-case fraction of the array activated per search — the
    /// capacity-efficiency figure of the scheme (1/categories when codes
    /// spread evenly).
    #[must_use]
    pub fn worst_activated_fraction(&self) -> f64 {
        let total = self.len();
        if total == 0 {
            return 0.0;
        }
        let biggest = self.categories.iter().map(Vec::len).max().unwrap_or(0);
        #[allow(clippy::cast_precision_loss)]
        {
            biggest as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> PreclassifiedCam {
        // 16 categories, code = top 8 bits of a 32-bit key.
        PreclassifiedCam::new(16, 64, 32, 24, 8)
    }

    #[test]
    fn insert_and_search() {
        let mut d = device();
        assert!(d.is_empty());
        d.insert(0xAA00_0001, 1).unwrap();
        d.insert(0xAA00_0002, 2).unwrap();
        d.insert(0xBB00_0001, 3).unwrap();
        assert_eq!(d.len(), 3);
        let m = d.search(&SearchKey::new(0xAA00_0002, 32));
        assert_eq!(m.hit.unwrap().data, 2);
        // Only the AA category was compared: 2 entries, not 3.
        assert_eq!(m.entries_compared, 2);
        assert!(m.category.is_some());
    }

    #[test]
    fn unknown_code_misses_without_array_activity() {
        let mut d = device();
        d.insert(0xAA00_0001, 1).unwrap();
        let m = d.search(&SearchKey::new(0xCC00_0001, 32));
        assert_eq!(m.hit, None);
        assert_eq!(m.category, None);
        assert_eq!(m.entries_compared, 0, "the C2CAM filtered the miss");
    }

    #[test]
    fn same_code_different_key_misses_in_category() {
        let mut d = device();
        d.insert(0xAA00_0001, 1).unwrap();
        let m = d.search(&SearchKey::new(0xAA00_0009, 32));
        assert_eq!(m.hit, None);
        assert_eq!(m.entries_compared, 1, "the category was searched");
    }

    #[test]
    fn category_capacity_and_code_exhaustion() {
        let mut d = PreclassifiedCam::new(2, 2, 16, 12, 4);
        assert!(d.insert(0x1000, 0).is_some());
        assert!(d.insert(0x1001, 0).is_some());
        assert!(d.insert(0x1002, 0).is_none(), "category full");
        assert!(d.insert(0x2000, 0).is_some());
        assert!(d.insert(0x3000, 0).is_none(), "out of categories");
    }

    #[test]
    fn activity_fraction_drops_with_spread_codes() {
        let mut d = device();
        for code in 0..16u128 {
            for i in 0..4u128 {
                d.insert((code << 24) | i, 0).unwrap();
            }
        }
        let f = d.worst_activated_fraction();
        assert!((f - 1.0 / 16.0).abs() < 1e-9, "got {f}");
    }

    #[test]
    #[should_panic(expected = "exact-match")]
    fn masked_search_rejected() {
        let d = device();
        let _ = d.search(&SearchKey::with_mask(0, 1, 32));
    }
}
