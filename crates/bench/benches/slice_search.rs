//! Criterion bench: CA-RAM table search throughput (simulator host speed).

use ca_ram_bench::designs::{
    build_ip_table, build_trigram_table, ip_designs, load_prefixes, load_trigrams, trigram_designs,
};
use ca_ram_core::key::SearchKey;
use ca_ram_workloads::bgp::{generate, BgpConfig};
use ca_ram_workloads::trigram::{generate as gen_tri, pack_text_key, TrigramConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_ip_search(c: &mut Criterion) {
    let prefixes = generate(&BgpConfig::scaled(20_000));
    let mut table = build_ip_table(&ip_designs()[0]);
    load_prefixes(&mut table, &prefixes, &vec![1.0; prefixes.len()]);
    let mut rng = SmallRng::seed_from_u64(1);
    let keys: Vec<SearchKey> = (0..1024)
        .map(|_| {
            let p = prefixes[rng.gen_range(0..prefixes.len())];
            SearchKey::new(u128::from(p.random_member(&mut rng)), 32)
        })
        .collect();
    let mut i = 0;
    c.bench_function("ip_lpm_search_20k", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(table.search(&keys[i]))
        });
    });
}

fn bench_trigram_search(c: &mut Criterion) {
    let entries = gen_tri(&TrigramConfig {
        entries: 20_000,
        vocabulary: 5_000,
        ..TrigramConfig::sphinx_like()
    });
    let mut table = build_trigram_table(&trigram_designs()[0]);
    load_trigrams(&mut table, &entries);
    let keys: Vec<SearchKey> = entries
        .iter()
        .take(1024)
        .map(|s| SearchKey::new(pack_text_key(s), 128))
        .collect();
    let mut i = 0;
    c.bench_function("trigram_exact_search_20k", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(table.search(&keys[i]))
        });
    });
}

criterion_group!(benches, bench_ip_search, bench_trigram_search);
criterion_main!(benches);
