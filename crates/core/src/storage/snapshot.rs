//! Checkpoint snapshots: a full logical image of the table, written
//! atomically so a crash leaves either the previous checkpoint or the new
//! one — never a torn file.
//!
//! A snapshot holds the *logical* record set (one entry per inserted
//! record, in insertion order), not the physical slice bytes: replaying
//! the records through an empty table rebuilds occupancy, auxiliary
//! fields, and overflow state with the table's own placement code. The
//! file is named `snap-<next_segment:08>.img`; WAL segments with index ≥
//! `next_segment` apply on top of it, older segments are garbage.
//!
//! Write protocol (the fsync points, see DESIGN.md sec 16): write to
//! `*.tmp`, `fsync` the file, rename over the final name, then `fsync`
//! the directory so the rename itself survives.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use super::{
    corrupt, crc32, dur_err, io_err, put_u128, put_u32, put_u64, ByteReader, TableSpec,
    FORMAT_VERSION,
};
use crate::error::{DurabilityErrorKind, Result};
use crate::key::TernaryKey;
use crate::layout::Record;

const SNAPSHOT_MAGIC: &[u8; 8] = b"CARAMSNP";
const FLAG_FULL_SCAN: u8 = 1;
const FLAG_SORTED_SEEN: u8 = 1 << 1;

/// A checkpoint image: everything recovery needs besides the WAL tail.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// WAL segments with index ≥ this apply on top of the snapshot.
    pub next_segment: u64,
    /// Total records logged before the snapshot (monotone across the
    /// table's lifetime; informational).
    pub ops_logged: u64,
    /// Whether the table had entered full-scan mode (a delete happened).
    pub full_scan: bool,
    /// Whether any `insert_sorted` was logged — if so, physical placement
    /// was priority-significant and the restored table must full-scan.
    pub sorted_seen: bool,
    /// The spec the table was running under at checkpoint time (may
    /// differ from the creation spec after a reconfigure).
    pub spec: TableSpec,
    /// The logical record set in insertion order.
    pub records: Vec<Record>,
}

/// The file name of the snapshot covering segments below `next_segment`.
#[must_use]
pub fn snapshot_file_name(next_segment: u64) -> String {
    format!("snap-{next_segment:08}.img")
}

/// Parses `snap-<next_segment:08>.img`.
#[must_use]
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snap-")?.strip_suffix(".img")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

impl Snapshot {
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64 + self.records.len() * 44);
        put_u64(&mut body, self.next_segment);
        put_u64(&mut body, self.ops_logged);
        let mut flags = 0u8;
        if self.full_scan {
            flags |= FLAG_FULL_SCAN;
        }
        if self.sorted_seen {
            flags |= FLAG_SORTED_SEEN;
        }
        body.push(flags);
        let spec = self.spec.encode();
        #[allow(clippy::cast_possible_truncation)] // specs are tiny
        put_u32(&mut body, spec.len() as u32);
        body.extend_from_slice(&spec);
        put_u64(&mut body, self.records.len() as u64);
        for rec in &self.records {
            put_u32(&mut body, rec.key.bits());
            put_u128(&mut body, rec.key.value());
            put_u128(&mut body, rec.key.dont_care());
            put_u64(&mut body, rec.data);
        }
        let mut out = Vec::with_capacity(16 + body.len());
        out.extend_from_slice(SNAPSHOT_MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u32(&mut out, crc32(&body));
        out.extend_from_slice(&body);
        out
    }

    fn decode(bytes: &[u8], name: &str) -> Result<Self> {
        if bytes.len() < 16 || &bytes[..8] != SNAPSHOT_MAGIC {
            return Err(corrupt(format!("{name}: bad snapshot magic")));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(dur_err(
                DurabilityErrorKind::FormatVersion,
                format!("{name}: snapshot version {version}, this build reads {FORMAT_VERSION}"),
            ));
        }
        let stored_crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let body = &bytes[16..];
        if crc32(body) != stored_crc {
            return Err(corrupt(format!("{name}: snapshot checksum mismatch")));
        }
        let mut r = ByteReader::new(body, "snapshot");
        let next_segment = r.u64()?;
        let ops_logged = r.u64()?;
        let flags = r.u8()?;
        if flags & !(FLAG_FULL_SCAN | FLAG_SORTED_SEEN) != 0 {
            return Err(corrupt(format!(
                "{name}: unknown snapshot flags {flags:#x}"
            )));
        }
        let spec_len = r.u32()? as usize;
        let spec = TableSpec::decode(r.bytes(spec_len)?)?;
        let count = r.u64()?;
        let count = usize::try_from(count)
            .map_err(|_| corrupt(format!("{name}: snapshot claims {count} records")))?;
        if count.saturating_mul(44) > body.len() {
            return Err(corrupt(format!("{name}: snapshot claims {count} records")));
        }
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            let bits = r.u32()?;
            let value = r.u128()?;
            let dont_care = r.u128()?;
            let data = r.u64()?;
            if bits == 0 || bits > 128 {
                return Err(corrupt(format!("{name}: record key width {bits}")));
            }
            let mask = if bits == 128 {
                u128::MAX
            } else {
                (1u128 << bits) - 1
            };
            if value & !mask != 0 || dont_care & !mask != 0 {
                return Err(corrupt(format!("{name}: record key overflows its width")));
            }
            records.push(Record::new(
                TernaryKey::ternary(value, dont_care, bits),
                data,
            ));
        }
        r.finish()?;
        Ok(Self {
            next_segment,
            ops_logged,
            full_scan: flags & FLAG_FULL_SCAN != 0,
            sorted_seen: flags & FLAG_SORTED_SEEN != 0,
            spec,
            records,
        })
    }

    /// Writes the snapshot into `dir` atomically (tmp + fsync + rename +
    /// directory fsync) and returns the final path.
    ///
    /// # Errors
    ///
    /// [`DurabilityErrorKind::Io`] on any file operation failure.
    pub fn write(&self, dir: &Path) -> Result<PathBuf> {
        let final_path = dir.join(snapshot_file_name(self.next_segment));
        let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(self.next_segment)));
        let bytes = self.encode();
        {
            let mut f = File::create(&tmp_path).map_err(|e| io_err("create", &tmp_path, &e))?;
            f.write_all(&bytes)
                .map_err(|e| io_err("write", &tmp_path, &e))?;
            f.sync_all().map_err(|e| io_err("sync", &tmp_path, &e))?;
        }
        std::fs::rename(&tmp_path, &final_path)
            .map_err(|e| io_err("rename snapshot into", dir, &e))?;
        // Make the rename itself durable. Directory fsync is a Linux-ism;
        // where it fails the rename is still atomic, so ignore errors.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(final_path)
    }

    /// Reads and validates the snapshot at `path`.
    ///
    /// # Errors
    ///
    /// [`DurabilityErrorKind::Io`] on read failure, `Corrupt` /
    /// `FormatVersion` on damage.
    pub fn read(path: &Path) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| io_err("read", path, &e))?;
        Self::decode(&bytes, &path.display().to_string())
    }
}

/// Lists the snapshots in `dir`, sorted by `next_segment`. `*.tmp`
/// leftovers from a crashed checkpoint are ignored (and are safe to
/// delete).
///
/// # Errors
///
/// [`DurabilityErrorKind::Io`] when the directory cannot be read.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("read dir", dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir entry in", dir, &e))?;
        if let Some(idx) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            out.push((idx, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(idx, _)| *idx);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RecordLayout;
    use crate::probe::ProbePolicy;
    use crate::storage::IndexSpec;
    use crate::table::{Arrangement, OverflowPolicy, TableConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("ca_ram_snap_{tag}_{}_{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn sample() -> Snapshot {
        Snapshot {
            next_segment: 3,
            ops_logged: 41,
            full_scan: true,
            sorted_seen: false,
            spec: TableSpec {
                config: TableConfig {
                    rows_log2: 4,
                    row_bits: 512,
                    layout: RecordLayout::new(32, true, 32),
                    arrangement: Arrangement::Horizontal(1),
                    probe: ProbePolicy::Linear,
                    overflow: OverflowPolicy::Probe { max_steps: 4 },
                },
                index: IndexSpec::RangeSelect { low: 28, count: 4 },
            },
            records: vec![
                Record::new(TernaryKey::binary(0xCAFE, 32), 1),
                Record::new(TernaryKey::ternary(0xAB00, 0xFF, 32), 2),
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let dir = temp_dir("roundtrip");
        let snap = sample();
        let path = snap.write(&dir).expect("write");
        assert_eq!(
            path.file_name().unwrap().to_str(),
            Some("snap-00000003.img")
        );
        let back = Snapshot::read(&path).expect("read");
        assert_eq!(back.next_segment, snap.next_segment);
        assert_eq!(back.ops_logged, snap.ops_logged);
        assert_eq!(back.full_scan, snap.full_scan);
        assert_eq!(back.sorted_seen, snap.sorted_seen);
        assert_eq!(back.records, snap.records);
        assert_eq!(back.spec.encode(), snap.spec.encode());
        let listed = list_snapshots(&dir).expect("list");
        assert_eq!(listed, vec![(3, path)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damage_is_typed_never_a_panic() {
        let dir = temp_dir("damage");
        let snap = sample();
        let path = snap.write(&dir).expect("write");
        let good = std::fs::read(&path).expect("read");
        // Every truncation fails cleanly.
        for cut in 0..good.len() {
            assert!(Snapshot::decode(&good[..cut], "t").is_err(), "cut {cut}");
        }
        // Every single-byte flip fails cleanly (the CRC covers the body,
        // the magic/version checks cover the head).
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(Snapshot::decode(&bad, "t").is_err(), "flip at {i}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tmp_files_are_ignored() {
        let dir = temp_dir("tmp");
        sample().write(&dir).expect("write");
        std::fs::write(dir.join("snap-00000009.img.tmp"), b"junk").expect("junk");
        let listed = list_snapshots(&dir).expect("list");
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].0, 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
