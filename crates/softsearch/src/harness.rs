//! Measurement harness: runs a lookup workload over a software index and a
//! simulated cache hierarchy and reports the paper's motivating numbers —
//! loads per lookup, where they hit, and what they cost.

use crate::cache::Hierarchy;
use crate::structures::SoftIndex;

/// Measured cost of a software search workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCostReport {
    /// Name of the structure measured.
    pub structure: &'static str,
    /// Lookups performed.
    pub lookups: u64,
    /// Mean loads (pointer dereferences / element reads) per lookup.
    pub avg_loads: f64,
    /// Mean *main-memory* accesses per lookup — the number the paper
    /// contrasts with CA-RAM's ≈1 (Sec. 4.1: software needs "at least 4 to
    /// 6 memory accesses").
    pub avg_memory_accesses: f64,
    /// L1 hit rate over the workload.
    pub l1_hit_rate: f64,
    /// L2 hit rate over the workload.
    pub l2_hit_rate: f64,
    /// Mean load latency in cycles (2/15/200 model).
    pub avg_latency_cycles: f64,
}

/// Runs `trace` (indices into `keys`) against `index`, with a warm-up pass
/// so the caches reach steady state before measurement.
///
/// # Panics
///
/// Panics if the trace references a key index out of range or a lookup
/// misses (the harness measures successful-search cost, as the paper does).
pub fn measure(
    index: &dyn SoftIndex,
    keys: &[u64],
    trace: &[usize],
    mem: &mut Hierarchy,
) -> SearchCostReport {
    assert!(!trace.is_empty(), "empty trace");
    // Warm-up: one pass of the trace (capped) to populate the caches.
    for &i in trace.iter().take(10_000) {
        let _ = index.lookup(keys[i], mem);
    }
    mem.stats = crate::cache::AccessStats::default();

    let mut total_loads: u64 = 0;
    for &i in trace {
        let got = index.lookup(keys[i], mem);
        assert!(got.value.is_some(), "trace key {i} not found");
        total_loads += u64::from(got.loads);
    }
    let s = mem.stats;
    #[allow(clippy::cast_precision_loss)]
    let n = trace.len() as f64;
    #[allow(clippy::cast_precision_loss)]
    SearchCostReport {
        structure: index.name(),
        lookups: trace.len() as u64,
        avg_loads: total_loads as f64 / n,
        avg_memory_accesses: s.memory_accesses as f64 / n,
        l1_hit_rate: s.l1_hits as f64 / s.accesses as f64,
        l2_hit_rate: s.l2_hits as f64 / s.accesses as f64,
        avg_latency_cycles: s.avg_latency_cycles(),
    }
}

/// As [`measure`], but drives the index through
/// [`SoftIndex::lookup_batch`] in `batch`-sized chunks of the trace — the
/// software-side mirror of `CaRamTable::search_batch`. Because the cache
/// hierarchy is shared mutable state, the access stream (and therefore the
/// report) is identical to [`measure`]'s for any batch size.
///
/// # Panics
///
/// Panics if `batch` is zero, the trace is empty or references a key index
/// out of range, or a lookup misses.
pub fn measure_batched(
    index: &dyn SoftIndex,
    keys: &[u64],
    trace: &[usize],
    mem: &mut Hierarchy,
    batch: usize,
) -> SearchCostReport {
    assert!(!trace.is_empty(), "empty trace");
    assert!(batch > 0, "zero batch size");
    for &i in trace.iter().take(10_000) {
        let _ = index.lookup(keys[i], mem);
    }
    mem.stats = crate::cache::AccessStats::default();

    let mut total_loads: u64 = 0;
    let mut batch_keys = Vec::with_capacity(batch);
    let mut results = Vec::with_capacity(batch);
    for chunk in trace.chunks(batch) {
        batch_keys.clear();
        batch_keys.extend(chunk.iter().map(|&i| keys[i]));
        results.clear();
        index.lookup_batch(&batch_keys, mem, &mut results);
        for (got, &i) in results.iter().zip(chunk) {
            assert!(got.value.is_some(), "trace key {i} not found");
            total_loads += u64::from(got.loads);
        }
    }
    let s = mem.stats;
    #[allow(clippy::cast_precision_loss)]
    let n = trace.len() as f64;
    #[allow(clippy::cast_precision_loss)]
    SearchCostReport {
        structure: index.name(),
        lookups: trace.len() as u64,
        avg_loads: total_loads as f64 / n,
        avg_memory_accesses: s.memory_accesses as f64 / n,
        l1_hit_rate: s.l1_hits as f64 / s.accesses as f64,
        l2_hit_rate: s.l2_hits as f64 / s.accesses as f64,
        avg_latency_cycles: s.avg_latency_cycles(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::{Arena, BinarySearchTree, ChainedHash, SortedArray};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn workload(n: usize) -> (Vec<u64>, Vec<(u64, u64)>, Vec<usize>) {
        use rand::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut keys: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut pairs: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k ^ 1)).collect();
        // Shuffle the build order: inserting sorted keys degenerates the
        // unbalanced BST into a list (O(n) lookups, O(n^2) build).
        pairs.shuffle(&mut rng);
        let trace: Vec<usize> = (0..20_000).map(|_| rng.gen_range(0..keys.len())).collect();
        (keys, pairs, trace)
    }

    #[test]
    fn large_chained_hash_needs_multiple_memory_accesses() {
        // The motivating claim: software hashing over a big table costs
        // several DRAM accesses per lookup once the caches stop helping.
        let (keys, pairs, trace) = workload(2_000_000);
        let mut arena = Arena::new(0);
        let table = ChainedHash::build(&pairs, 19, &mut arena); // ~4/chain
        let mut mem = Hierarchy::typical();
        let r = measure(&table, &keys, &trace, &mut mem);
        assert!(
            r.avg_memory_accesses > 1.5,
            "avg memory accesses {:.2}",
            r.avg_memory_accesses
        );
        assert!(r.avg_loads > 2.0);
        assert!(r.avg_latency_cycles > 50.0);
    }

    #[test]
    fn tree_costs_more_memory_accesses_than_hash() {
        let (keys, pairs, trace) = workload(500_000);
        let mut arena = Arena::new(0);
        let hash = ChainedHash::build(&pairs, 18, &mut arena);
        let tree = BinarySearchTree::build(&pairs, &mut arena);
        let mut mem = Hierarchy::typical();
        let rh = measure(&hash, &keys, &trace, &mut mem);
        mem.reset();
        let rt = measure(&tree, &keys, &trace, &mut mem);
        assert!(rt.avg_memory_accesses > rh.avg_memory_accesses);
        assert!(rt.avg_loads > rh.avg_loads);
    }

    #[test]
    fn small_table_stays_in_cache() {
        let (keys, pairs, trace) = workload(1_000);
        let mut arena = Arena::new(0);
        let table = SortedArray::build(&pairs, &mut arena);
        let mut mem = Hierarchy::typical();
        let r = measure(&table, &keys, &trace, &mut mem);
        assert!(r.avg_memory_accesses < 0.1, "{:.3}", r.avg_memory_accesses);
        assert!(r.l1_hit_rate + r.l2_hit_rate > 0.95);
    }

    #[test]
    fn batched_measurement_equals_per_key_measurement() {
        let (keys, pairs, trace) = workload(50_000);
        let mut arena = Arena::new(0);
        let table = ChainedHash::build(&pairs, 14, &mut arena);
        let mut mem = Hierarchy::typical();
        let serial = measure(&table, &keys, &trace, &mut mem);
        for batch in [1, 7, 256, trace.len()] {
            mem.reset();
            let batched = measure_batched(&table, &keys, &trace, &mut mem, batch);
            assert_eq!(batched, serial, "batch={batch}");
        }
    }

    #[test]
    fn report_fields_are_consistent() {
        let (keys, pairs, trace) = workload(10_000);
        let mut arena = Arena::new(0);
        let table = ChainedHash::build(&pairs, 12, &mut arena);
        let mut mem = Hierarchy::typical();
        let r = measure(&table, &keys, &trace, &mut mem);
        assert_eq!(r.lookups, trace.len() as u64);
        let rates = r.l1_hit_rate + r.l2_hit_rate;
        assert!((0.0..=1.0 + 1e-9).contains(&rates));
        assert!(r.avg_loads >= 1.0);
        assert_eq!(r.structure, "chained hash");
    }
}
