//! A back-off N-gram language model (Sec. 4.2).
//!
//! "Sphinx uses a conventional unigram, bigram, and trigram back-off
//! model. The accuracy and speed of acoustic and language models rely
//! heavily on searching a large database." This module generates a
//! synthetic back-off model over word *ids* and provides the reference
//! scoring rule, so a decoder can be driven against CA-RAM-resident N-gram
//! stores and validated exactly:
//!
//! ```text
//! P(w3 | w1 w2) = trigram(w1 w2 w3)                        if present
//!               = backoff(w1 w2) + bigram(w2 w3)           else if present
//!               = backoff(w1 w2) + backoff(w2) + unigram(w3)  otherwise
//! ```
//!
//! (log-domain; back-off weights are added). Scores are stored as
//! fixed-point negative log-probabilities in the data field, which fits
//! CA-RAM's store-data-with-key layout (Sec. 3.2).

use std::collections::{HashMap, HashSet};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Bits per word id in packed N-gram keys (vocabulary ≤ 2^20).
pub const WORD_BITS: u32 = 20;

/// Packs up to three word ids into an N-gram key (later words in lower
/// bits; order tagged by the key width at the table level).
///
/// # Panics
///
/// Panics if a word id exceeds [`WORD_BITS`] bits.
#[must_use]
pub fn pack_ngram(words: &[u32]) -> u128 {
    assert!(
        (1..=3).contains(&words.len()),
        "N-grams of order 1..=3 only"
    );
    let mut key = 0u128;
    for &w in words {
        assert!(w < (1 << WORD_BITS), "word id {w} exceeds {WORD_BITS} bits");
        key = (key << WORD_BITS) | u128::from(w);
    }
    key
}

/// A fixed-point score: negative log-probability × 1000, as a table payload.
pub type Score = u32;

/// A synthetic back-off LM.
#[derive(Debug, Clone)]
pub struct BackoffLm {
    vocabulary: u32,
    unigrams: HashMap<u32, (Score, Score)>, // word -> (score, backoff)
    bigrams: HashMap<u64, (Score, Score)>,  // (w1,w2) -> (score, backoff)
    trigrams: HashMap<u128, Score>,         // (w1,w2,w3) -> score
}

/// Configuration for the synthetic LM generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NgramConfig {
    /// Vocabulary size (the paper's system: ~60,000 words).
    pub vocabulary: u32,
    /// Bigram entries.
    pub bigrams: usize,
    /// Trigram entries.
    pub trigrams: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NgramConfig {
    fn default() -> Self {
        Self {
            vocabulary: 5_000,
            bigrams: 40_000,
            trigrams: 120_000,
            seed: 0x1264,
        }
    }
}

impl BackoffLm {
    /// Generates a deterministic synthetic model. Every trigram's bigram
    /// suffix context exists as a bigram (as real ARPA models guarantee).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration.
    #[must_use]
    pub fn generate(config: &NgramConfig) -> Self {
        assert!(config.vocabulary > 2, "vocabulary too small");
        assert!(
            config.vocabulary < (1 << WORD_BITS),
            "vocabulary exceeds the word-id width"
        );
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut score = |hi: u32| rng.gen_range(500..hi);

        let unigrams: HashMap<u32, (Score, Score)> = (0..config.vocabulary)
            .map(|w| (w, (score(12_000), score(4_000))))
            .collect();

        let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xB16);
        let mut bigrams = HashMap::with_capacity(config.bigrams * 2);
        let mut seen = HashSet::new();
        while bigrams.len() < config.bigrams {
            let w1 = rng.gen_range(0..config.vocabulary);
            let w2 = rng.gen_range(0..config.vocabulary);
            let k = (u64::from(w1) << WORD_BITS) | u64::from(w2);
            if seen.insert(k) {
                bigrams.insert(k, (rng.gen_range(500..9_000), rng.gen_range(500..3_000)));
            }
        }
        // Trigrams extend existing bigram contexts.
        let contexts: Vec<u64> = bigrams.keys().copied().collect();
        let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x741);
        let mut trigrams = HashMap::with_capacity(config.trigrams * 2);
        let mut seen = HashSet::new();
        let mut attempts = 0u64;
        while trigrams.len() < config.trigrams {
            attempts += 1;
            assert!(
                attempts < config.trigrams as u64 * 100 + 1024,
                "cannot generate enough unique trigrams"
            );
            let ctx = contexts[rng.gen_range(0..contexts.len())];
            let w3 = rng.gen_range(0..config.vocabulary);
            let k = (u128::from(ctx) << WORD_BITS) | u128::from(w3);
            if seen.insert(k) {
                trigrams.insert(k, rng.gen_range(500..6_000));
            }
        }
        Self {
            vocabulary: config.vocabulary,
            unigrams,
            bigrams,
            trigrams,
        }
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocabulary(&self) -> u32 {
        self.vocabulary
    }

    /// Unigram entries as `(packed key, score, backoff)`.
    pub fn unigram_entries(&self) -> impl Iterator<Item = (u128, Score, Score)> + '_ {
        self.unigrams
            .iter()
            .map(|(&w, &(s, b))| (u128::from(w), s, b))
    }

    /// Bigram entries as `(packed key, score, backoff)`.
    pub fn bigram_entries(&self) -> impl Iterator<Item = (u128, Score, Score)> + '_ {
        self.bigrams
            .iter()
            .map(|(&k, &(s, b))| (u128::from(k), s, b))
    }

    /// Trigram entries as `(packed key, score)`.
    pub fn trigram_entries(&self) -> impl Iterator<Item = (u128, Score)> + '_ {
        self.trigrams.iter().map(|(&k, &s)| (k, s))
    }

    /// Number of entries per order `(unigrams, bigrams, trigrams)`.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.unigrams.len(), self.bigrams.len(), self.trigrams.len())
    }

    /// Words with a trigram continuing the context `(w1, w2)` — what a
    /// decoder's lexicon pruning would propose first.
    #[must_use]
    pub fn continuations(&self, w1: u32, w2: u32) -> Vec<u32> {
        let ctx = (u128::from(w1) << (2 * WORD_BITS)) | (u128::from(w2) << WORD_BITS);
        let mask = !((1u128 << WORD_BITS) - 1);
        let mut out: Vec<u32> = self
            .trigrams
            .keys()
            .filter(|&&k| k & mask == ctx)
            .map(|&k| {
                #[allow(clippy::cast_possible_truncation)]
                {
                    (k & ((1 << WORD_BITS) - 1)) as u32
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Words with a bigram continuing `w2` — the coarser pruning tier.
    #[must_use]
    pub fn bigram_continuations(&self, w2: u32) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .bigrams
            .keys()
            .filter(|&&k| (k >> WORD_BITS) == u64::from(w2))
            .map(|&k| {
                #[allow(clippy::cast_possible_truncation)]
                {
                    (k & ((1 << WORD_BITS) - 1)) as u32
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// The reference back-off score of `w3` after context `(w1, w2)`, plus
    /// the number of N-gram lookups the back-off chain performed — the
    /// search traffic a decoder generates.
    ///
    /// # Panics
    ///
    /// Panics if a word id is outside the vocabulary.
    #[must_use]
    pub fn score(&self, w1: u32, w2: u32, w3: u32) -> (Score, u32) {
        for w in [w1, w2, w3] {
            assert!(w < self.vocabulary, "word id {w} outside the vocabulary");
        }
        let tri_key =
            (u128::from(w1) << (2 * WORD_BITS)) | (u128::from(w2) << WORD_BITS) | u128::from(w3);
        if let Some(&s) = self.trigrams.get(&tri_key) {
            return (s, 1);
        }
        let ctx12 = (u64::from(w1) << WORD_BITS) | u64::from(w2);
        let ctx_backoff = self.bigrams.get(&ctx12).map_or(0, |&(_, b)| b);
        let bi_key = (u64::from(w2) << WORD_BITS) | u64::from(w3);
        if let Some(&(s, _)) = self.bigrams.get(&bi_key) {
            // Lookups: trigram miss, bigram(ctx) for backoff, bigram hit.
            return (ctx_backoff + s, 3);
        }
        let word_backoff = self.unigrams.get(&w2).map_or(0, |&(_, b)| b);
        let (uni, _) = self.unigrams[&w3];
        // Lookups: trigram miss, bigram(ctx), bigram miss, unigram(w2),
        // unigram(w3).
        (ctx_backoff + word_backoff + uni, 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lm() -> BackoffLm {
        BackoffLm::generate(&NgramConfig {
            vocabulary: 300,
            bigrams: 2_000,
            trigrams: 5_000,
            ..NgramConfig::default()
        })
    }

    #[test]
    fn generation_counts_and_determinism() {
        let a = lm();
        assert_eq!(a.counts(), (300, 2_000, 5_000));
        let b = lm();
        assert_eq!(a.counts(), b.counts());
        let (s1, _) = a.score(1, 2, 3);
        let (s2, _) = b.score(1, 2, 3);
        assert_eq!(s1, s2);
    }

    #[test]
    fn trigram_hit_takes_one_lookup() {
        let m = lm();
        let (&key, &score) = m.trigrams.iter().next().expect("non-empty");
        #[allow(clippy::cast_possible_truncation)]
        let (w1, w2, w3) = (
            ((key >> (2 * WORD_BITS)) & 0xF_FFFF) as u32,
            ((key >> WORD_BITS) & 0xF_FFFF) as u32,
            (key & 0xF_FFFF) as u32,
        );
        let (s, lookups) = m.score(w1, w2, w3);
        assert_eq!(s, score);
        assert_eq!(lookups, 1);
    }

    #[test]
    fn backoff_chain_lengths() {
        let m = lm();
        // Exhaustively classify a sample of contexts: lookups must be
        // exactly 1 (trigram), 3 (bigram), or 5 (unigram).
        let mut seen = std::collections::HashSet::new();
        for w1 in 0..20 {
            for w2 in 0..20 {
                for w3 in 0..5 {
                    let (_, lookups) = m.score(w1, w2, w3);
                    assert!(matches!(lookups, 1 | 3 | 5));
                    seen.insert(lookups);
                }
            }
        }
        assert!(seen.contains(&5), "unigram fallback must occur");
    }

    #[test]
    fn backoff_weights_accumulate() {
        let m = lm();
        // Find a (w1,w2) context WITH a bigram entry and a w3 such that
        // neither trigram nor bigram(w2,w3) exists: the score must be
        // backoff(w1,w2) + backoff(w2) + unigram(w3).
        let (&ctx, &(_, b12)) = m.bigrams.iter().next().expect("non-empty");
        #[allow(clippy::cast_possible_truncation)]
        let (w1, w2) = ((ctx >> WORD_BITS) as u32, (ctx & 0xF_FFFF) as u32);
        let w3 = (0..m.vocabulary())
            .find(|&w| {
                let tri = (u128::from(ctx) << WORD_BITS) | u128::from(w);
                let bi = (u64::from(w2) << WORD_BITS) | u64::from(w);
                !m.trigrams.contains_key(&tri) && !m.bigrams.contains_key(&bi)
            })
            .expect("sparse model has gaps");
        let (s, lookups) = m.score(w1, w2, w3);
        let (uni, _) = m.unigrams[&w3];
        let (_, b2) = m.unigrams[&w2];
        assert_eq!(s, b12 + b2 + uni);
        assert_eq!(lookups, 5);
    }

    #[test]
    fn pack_orders() {
        assert_eq!(pack_ngram(&[7]), 7);
        assert_eq!(pack_ngram(&[1, 2]), (1 << 20) | 2);
        assert_eq!(pack_ngram(&[1, 2, 3]), (1u128 << 40) | (2 << 20) | 3);
    }

    #[test]
    #[should_panic(expected = "exceeds 20 bits")]
    fn oversized_word_rejected() {
        let _ = pack_ngram(&[1 << 20]);
    }
}
