//! A physical CA-RAM slice: memory array + auxiliary fields + match
//! processors (Fig. 3).
//!
//! The slice exposes bucket/slot-level operations; hash-based placement,
//! probing, and multi-slice arrangements live one level up in
//! [`crate::subsystem`]. Each row carries an auxiliary field (Sec. 3.1)
//! holding the slot-validity bitmap and the *reach* — how far the extended
//! search effort must go when the bucket has overflowed.

use crate::array::MemoryArray;
use crate::key::SearchKey;
use crate::layout::{Record, RecordLayout};
use crate::matchproc::{wins_tie_break, MatchProcessorBank, RowMatch};
use crate::storage::StorageBackend;

/// Per-row auxiliary field (Sec. 3.1: overflow status and slot occupancy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuxField {
    /// Slot-validity bitmap: bit `i` set iff slot `i` holds a record.
    pub valid: u128,
    /// How many buckets past this one a lookup must examine to cover every
    /// record whose home is this bucket (0 = no overflow).
    pub reach: u32,
}

/// A physical CA-RAM slice.
#[derive(Debug, Clone)]
pub struct CaRamSlice {
    layout: RecordLayout,
    array: MemoryArray,
    aux: Vec<AuxField>,
    bank: MatchProcessorBank,
    slots_per_row: u32,
}

impl CaRamSlice {
    /// Creates a zeroed slice of `2^rows_log2` rows of `row_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `rows_log2` exceeds 40, if a row holds no slots, or if a
    /// row holds more than 128 slots (the auxiliary bitmap width).
    #[must_use]
    pub fn new(rows_log2: u32, row_bits: u32, layout: RecordLayout) -> Self {
        Self::with_backend(rows_log2, row_bits, layout, &StorageBackend::Heap)
            .expect("heap backend cannot fail")
    }

    /// Creates a slice whose memory array lives on the given storage
    /// backend (see [`MemoryArray::with_backend`]). The auxiliary fields
    /// (validity bitmaps, reach) always live on the heap: the durable
    /// source of truth for occupancy is the write-ahead log, not the
    /// array file.
    ///
    /// # Errors
    ///
    /// Any [`crate::error::CaRamError::Durability`] error from opening the
    /// backing file.
    ///
    /// # Panics
    ///
    /// Panics if `rows_log2` exceeds 40, if a row holds no slots, or if a
    /// row holds more than 128 slots (the auxiliary bitmap width).
    pub fn with_backend(
        rows_log2: u32,
        row_bits: u32,
        layout: RecordLayout,
        backend: &StorageBackend,
    ) -> crate::error::Result<Self> {
        assert!(rows_log2 <= 40, "2^{rows_log2} rows is beyond any device");
        let rows = 1u64 << rows_log2;
        let slots_per_row = layout.slots_per_row(row_bits);
        assert!(
            slots_per_row <= 128,
            "{slots_per_row} slots per row exceeds the 128-slot auxiliary bitmap"
        );
        Ok(Self {
            layout,
            array: MemoryArray::with_backend(rows, row_bits, backend)?,
            aux: vec![AuxField::default(); usize::try_from(rows).expect("checked above")],
            bank: MatchProcessorBank::new(layout),
            slots_per_row,
        })
    }

    /// Flushes a file-backed array durably to disk; a no-op on the heap
    /// backend.
    ///
    /// # Errors
    ///
    /// Any [`crate::error::CaRamError::Durability`] error from the sync.
    pub fn flush(&mut self) -> crate::error::Result<()> {
        self.array.flush()
    }

    /// Number of rows (buckets).
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.array.rows()
    }

    /// Bits per row (`C`).
    #[must_use]
    pub fn row_bits(&self) -> u32 {
        self.array.row_bits()
    }

    /// Record slots per row (`S`).
    #[must_use]
    pub fn slots_per_row(&self) -> u32 {
        self.slots_per_row
    }

    /// The record layout.
    #[must_use]
    pub fn layout(&self) -> &RecordLayout {
        &self.layout
    }

    /// The underlying memory array (RAM-mode view, Sec. 3.2).
    #[must_use]
    pub fn array(&self) -> &MemoryArray {
        &self.array
    }

    /// The compare kernel this slice's match processors captured at
    /// construction (see [`crate::kernel`]).
    #[must_use]
    pub fn kernel(&self) -> crate::kernel::Kernel {
        self.bank.kernel()
    }

    /// Hints the prefetcher to pull `row` into cache ahead of a
    /// [`CaRamSlice::search_bucket`] on it. Advisory; out-of-range rows
    /// are ignored.
    #[inline]
    pub fn prefetch_row(&self, row: u64) {
        self.array.prefetch_row(row);
        // The auxiliary word (valid bitmap + reach) is read before the row
        // words on every search; pull its line in with the same hint.
        self.prefetch_aux(row);
    }

    /// Hints the prefetcher at just the auxiliary word of `row` — enough
    /// for the empty-row early-out of [`CaRamSlice::search_bucket`], at a
    /// single line of prefetch traffic. Out-of-range rows are ignored.
    #[inline]
    pub fn prefetch_aux(&self, row: u64) {
        if let Ok(i) = usize::try_from(row) {
            if let Some(aux) = self.aux.get(i) {
                crate::array::prefetch_ref(aux);
            }
        }
    }

    /// Mutable RAM-mode view. Writing through this view does **not** update
    /// the auxiliary fields; it models the raw memory-copy database
    /// construction path of Sec. 3.2, after which the caller re-derives
    /// validity via [`CaRamSlice::set_aux`].
    pub fn array_mut(&mut self) -> &mut MemoryArray {
        &mut self.array
    }

    #[allow(clippy::unused_self)] // reads naturally as slice geometry helper
    fn aux_index(&self, row: u64) -> usize {
        usize::try_from(row).expect("row bounds checked by MemoryArray")
    }

    /// The auxiliary field of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[must_use]
    pub fn aux(&self, row: u64) -> AuxField {
        assert!(row < self.rows(), "row {row} out of range");
        self.aux[self.aux_index(row)]
    }

    /// Overwrites the auxiliary field of `row` (used by RAM-mode database
    /// construction and by tests).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn set_aux(&mut self, row: u64, aux: AuxField) {
        assert!(row < self.rows(), "row {row} out of range");
        let i = self.aux_index(row);
        self.aux[i] = aux;
    }

    /// Number of valid records in `row`.
    #[must_use]
    pub fn occupancy(&self, row: u64) -> u32 {
        self.aux(row).valid.count_ones()
    }

    /// Whether `row` has no free slot.
    #[must_use]
    pub fn is_full(&self, row: u64) -> bool {
        self.occupancy(row) == self.slots_per_row
    }

    /// Lowest-numbered free slot of `row`, if any. Records are appended in
    /// slot order so that insertion order defines match priority
    /// (the LPM placement discipline of Sec. 4.1).
    #[must_use]
    pub fn free_slot(&self, row: u64) -> Option<u32> {
        let valid = self.aux(row).valid;
        let slot = (!valid).trailing_zeros();
        (slot < self.slots_per_row).then_some(slot)
    }

    /// Writes `record` into `(row, slot)` and marks the slot valid.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range or the record does not fit the
    /// layout.
    pub fn write_record(&mut self, row: u64, slot: u32, record: &Record) {
        assert!(slot < self.slots_per_row, "slot {slot} out of range");
        self.layout
            .encode_slot(self.array.row_mut(row), slot, record);
        let i = self.aux_index(row);
        self.aux[i].valid |= 1 << slot;
    }

    /// Appends `record` at the first free slot of `row`.
    /// Returns the slot used, or `None` if the row is full.
    pub fn append_record(&mut self, row: u64, record: &Record) -> Option<u32> {
        let slot = self.free_slot(row)?;
        self.write_record(row, slot, record);
        Some(slot)
    }

    /// Reads the record at `(row, slot)`, or `None` if the slot is invalid.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    #[must_use]
    pub fn read_record(&self, row: u64, slot: u32) -> Option<Record> {
        assert!(slot < self.slots_per_row, "slot {slot} out of range");
        (self.aux(row).valid >> slot & 1 == 1)
            .then(|| self.layout.decode_slot(self.array.row(row), slot))
    }

    /// Invalidates `(row, slot)` and zeroes the stored bits. Returns the
    /// removed record, or `None` if the slot was already invalid.
    pub fn invalidate(&mut self, row: u64, slot: u32) -> Option<Record> {
        let record = self.read_record(row, slot)?;
        self.layout.clear_slot(self.array.row_mut(row), slot);
        let i = self.aux_index(row);
        self.aux[i].valid &= !(1 << slot);
        Some(record)
    }

    /// All valid records of `row` in slot (priority) order.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[must_use]
    pub fn bucket_records(&self, row: u64) -> Vec<(u32, Record)> {
        let valid = self.aux(row).valid;
        let words = self.array.row(row);
        (0..self.slots_per_row)
            .filter(|&s| valid >> s & 1 == 1)
            .map(|s| (s, self.layout.decode_slot(words, s)))
            .collect()
    }

    /// Rewrites `row` to hold exactly `records`, in order, compacted from
    /// slot 0. The reach field is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `records` exceeds the row capacity.
    pub fn rewrite_bucket(&mut self, row: u64, records: &[Record]) {
        assert!(
            records.len() <= self.slots_per_row as usize,
            "{} records exceed the {}-slot bucket",
            records.len(),
            self.slots_per_row
        );
        let words = self.array.row_mut(row);
        words.fill(0);
        for (slot, record) in records.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            self.layout.encode_slot(words, slot as u32, record);
        }
        let i = self.aux_index(row);
        self.aux[i].valid = if records.is_empty() {
            0
        } else {
            crate::bits::low_mask(u32::try_from(records.len()).expect("<=128"))
        };
    }

    /// One hardware search step: fetch `row` and run the match processors.
    #[must_use]
    pub fn match_bucket(&self, row: u64, search: &SearchKey) -> RowMatch {
        self.bank.match_row(
            self.array.row(row),
            self.aux(row).valid,
            self.slots_per_row,
            search,
        )
    }

    /// Best-of-bucket variant of [`CaRamSlice::search_bucket`]: decodes
    /// every matching slot of `row` and returns the one with the most care
    /// bits (lowest slot on ties). Slot order stops encoding priority once
    /// a delete punches a hole and a later insert backfills it, so
    /// full-reach (post-delete) scans must compare matches instead of
    /// taking the first.
    #[must_use]
    pub fn search_bucket_best(&self, row: u64, search: &SearchKey) -> Option<(u32, Record)> {
        let words = self.array.row(row);
        let m = self
            .bank
            .match_row(words, self.aux(row).valid, self.slots_per_row, search);
        Self::best_of_vector(&self.bank, words, m.match_vector)
    }

    /// Picks the max-care record among the set bits of `match_vector`,
    /// via the one shared [`wins_tie_break`] predicate (slots are visited
    /// in ascending order, so on equal care the lowest slot keeps its
    /// seat).
    fn best_of_vector(
        bank: &MatchProcessorBank,
        words: &[u64],
        mut match_vector: u128,
    ) -> Option<(u32, Record)> {
        let mut best: Option<(u32, Record)> = None;
        while match_vector != 0 {
            let slot = match_vector.trailing_zeros();
            match_vector &= match_vector - 1;
            let record = bank.extract(words, slot);
            if wins_tie_break(&record, best.as_ref().map(|(_, b)| b)) {
                best = Some((slot, record));
            }
        }
        best
    }

    /// Fetch + match + extract: the winning `(slot, record)` of `row`.
    #[must_use]
    #[inline]
    pub fn search_bucket(&self, row: u64, search: &SearchKey) -> Option<(u32, Record)> {
        let valid = self.aux(row).valid;
        if valid == 0 {
            // An empty row cannot fire a match line; skip the row fetch
            // entirely. Matters for horizontal arrangements, where a miss
            // walks every slice of the logical bucket and the later
            // slices are usually empty.
            debug_assert_eq!(search.bits(), self.layout.key_bits());
            return None;
        }
        self.bank
            .search_row(self.array.row(row), valid, self.slots_per_row, search)
    }

    /// Decode-all reference version of [`CaRamSlice::search_bucket`]: every
    /// valid slot is fully deserialized before comparison (see
    /// [`MatchProcessorBank::match_row_decode_all`]). Kept as the oracle and
    /// perf baseline for the direct stored-bit compare.
    #[must_use]
    pub fn search_bucket_baseline(&self, row: u64, search: &SearchKey) -> Option<(u32, Record)> {
        let words = self.array.row(row);
        let m =
            self.bank
                .match_row_decode_all(words, self.aux(row).valid, self.slots_per_row, search);
        m.first_match
            .map(|slot| (slot, self.bank.extract(words, slot)))
    }

    /// Decode-all twin of [`CaRamSlice::search_bucket_best`], backing the
    /// baseline search's full-reach mode.
    #[must_use]
    pub fn search_bucket_baseline_best(
        &self,
        row: u64,
        search: &SearchKey,
    ) -> Option<(u32, Record)> {
        let words = self.array.row(row);
        let m =
            self.bank
                .match_row_decode_all(words, self.aux(row).valid, self.slots_per_row, search);
        Self::best_of_vector(&self.bank, words, m.match_vector)
    }

    /// Raises the reach of `row` to at least `reach`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn raise_reach(&mut self, row: u64, reach: u32) {
        assert!(row < self.rows(), "row {row} out of range");
        let i = self.aux_index(row);
        if self.aux[i].reach < reach {
            self.aux[i].reach = reach;
        }
    }

    /// Total valid records in the slice.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.aux
            .iter()
            .map(|a| u64::from(a.valid.count_ones()))
            .sum()
    }

    /// Clears all records and auxiliary state.
    pub fn clear(&mut self) {
        self.array.clear();
        self.aux.fill(AuxField::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::TernaryKey;

    fn slice() -> CaRamSlice {
        // 16 rows, 4 slots of (16-bit key + 8-bit data) per row.
        CaRamSlice::new(4, 96, RecordLayout::new(16, false, 8))
    }

    fn rec(value: u128, data: u64) -> Record {
        Record::new(TernaryKey::binary(value, 16), data)
    }

    #[test]
    fn geometry() {
        let s = slice();
        assert_eq!(s.rows(), 16);
        assert_eq!(s.slots_per_row(), 4);
        assert_eq!(s.row_bits(), 96);
    }

    #[test]
    fn append_fills_slots_in_order() {
        let mut s = slice();
        assert_eq!(s.append_record(3, &rec(0x10, 1)), Some(0));
        assert_eq!(s.append_record(3, &rec(0x20, 2)), Some(1));
        assert_eq!(s.append_record(3, &rec(0x30, 3)), Some(2));
        assert_eq!(s.append_record(3, &rec(0x40, 4)), Some(3));
        assert_eq!(s.append_record(3, &rec(0x50, 5)), None);
        assert!(s.is_full(3));
        assert_eq!(s.occupancy(3), 4);
        assert_eq!(s.record_count(), 4);
    }

    #[test]
    fn read_and_invalidate() {
        let mut s = slice();
        s.append_record(1, &rec(0xAB, 9));
        assert_eq!(s.read_record(1, 0).unwrap().data, 9);
        assert_eq!(s.read_record(1, 1), None);
        let removed = s.invalidate(1, 0).unwrap();
        assert_eq!(removed.key.value(), 0xAB);
        assert_eq!(s.read_record(1, 0), None);
        assert_eq!(s.invalidate(1, 0), None);
        assert_eq!(s.occupancy(1), 0);
    }

    #[test]
    fn append_reuses_freed_slot() {
        let mut s = slice();
        s.append_record(0, &rec(1, 0));
        s.append_record(0, &rec(2, 0));
        s.invalidate(0, 0);
        assert_eq!(s.append_record(0, &rec(3, 0)), Some(0));
    }

    #[test]
    fn search_bucket_respects_validity_and_priority() {
        let mut s = slice();
        s.append_record(2, &rec(0x77, 1));
        s.append_record(2, &rec(0x77, 2)); // duplicate key, lower priority
        let (slot, r) = s.search_bucket(2, &SearchKey::new(0x77, 16)).unwrap();
        assert_eq!((slot, r.data), (0, 1));
        s.invalidate(2, 0);
        let (slot, r) = s.search_bucket(2, &SearchKey::new(0x77, 16)).unwrap();
        assert_eq!((slot, r.data), (1, 2));
        let m = s.match_bucket(2, &SearchKey::new(0x78, 16));
        assert_eq!(m.first_match, None);
    }

    #[test]
    fn rewrite_bucket_compacts() {
        let mut s = slice();
        s.append_record(5, &rec(1, 1));
        s.append_record(5, &rec(2, 2));
        s.invalidate(5, 0);
        let records: Vec<Record> = s.bucket_records(5).into_iter().map(|(_, r)| r).collect();
        s.rewrite_bucket(5, &records);
        assert_eq!(s.read_record(5, 0).unwrap().data, 2);
        assert_eq!(s.occupancy(5), 1);
    }

    #[test]
    fn reach_is_monotonic() {
        let mut s = slice();
        s.raise_reach(7, 2);
        s.raise_reach(7, 1);
        assert_eq!(s.aux(7).reach, 2);
        s.raise_reach(7, 5);
        assert_eq!(s.aux(7).reach, 5);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = slice();
        s.append_record(0, &rec(1, 1));
        s.raise_reach(0, 3);
        s.clear();
        assert_eq!(s.record_count(), 0);
        assert_eq!(s.aux(0), AuxField::default());
        assert_eq!(s.read_record(0, 0), None);
    }

    #[test]
    fn ram_mode_write_then_aux_rebuild() {
        // Sec. 3.2: a pre-hashed database is copied in via RAM mode, then
        // validity is installed.
        let layout = RecordLayout::new(16, false, 8);
        let mut s = CaRamSlice::new(2, 96, layout);
        let mut row = vec![0u64; 2];
        layout.encode_slot(&mut row, 0, &rec(0xF00D, 7));
        s.array_mut().row_mut(1).copy_from_slice(&row);
        // Not yet visible to search:
        assert!(s.search_bucket(1, &SearchKey::new(0xF00D, 16)).is_none());
        s.set_aux(
            1,
            AuxField {
                valid: 0b1,
                reach: 0,
            },
        );
        let (_, r) = s.search_bucket(1, &SearchKey::new(0xF00D, 16)).unwrap();
        assert_eq!(r.data, 7);
    }

    #[test]
    #[should_panic(expected = "slot 4 out of range")]
    fn out_of_range_slot_rejected() {
        let mut s = slice();
        s.write_record(0, 4, &rec(0, 0));
    }
}
