//! RAM mode and the memory-mapped subsystem interface (Sec. 3.2).
//!
//! Shows the three faces of a CA-RAM memory subsystem:
//! 1. RAM mode — addressable scratch-pad storage and database construction
//!    by raw memory copy;
//! 2. CAM mode through memory-mapped request/result ports;
//! 3. multiple independent databases behind one subsystem.
//!
//! Run with: `cargo run --example scratchpad`

use ca_ram::core::index::RangeSelect;
use ca_ram::core::key::{SearchKey, TernaryKey};
use ca_ram::core::layout::{Record, RecordLayout};
use ca_ram::core::slice::AuxField;
use ca_ram::core::subsystem::CaRamSubsystem;
use ca_ram::core::table::{CaRamTable, TableConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layout = RecordLayout::new(16, false, 16);
    let mk_table = || {
        CaRamTable::new(
            TableConfig::single_slice(6, 8 * layout.slot_bits(), layout),
            Box::new(RangeSelect::new(0, 6)),
        )
        .expect("valid config")
    };

    let mut sub = CaRamSubsystem::new();
    let routing = sub.add_database("routing", mk_table());
    let scratch = sub.add_database("scratch", mk_table());
    println!("subsystem with {} databases", sub.database_count());

    // --- 1. RAM mode: scratch-pad use --------------------------------------
    // "the available memory capacity in CA-RAM can be treated as on-chip
    // memory space for various general uses."
    let words = sub.ram_words(scratch);
    for addr in 0..words.min(16) {
        sub.ram_write(scratch, addr, addr * 3)?;
    }
    println!(
        "scratch-pad: wrote {} words, word[5] = {}",
        words.min(16),
        sub.ram_read(scratch, 5)?
    );

    // --- 1b. RAM mode: database construction by memory copy ----------------
    // Build one bucket's image in "DRAM" and copy it in, then install the
    // occupancy metadata — the DMA construction path of Sec. 3.2.
    let bucket: u64 = 9;
    let row_words = sub.table(routing).slices()[0].array().row_words() as usize;
    let mut row_image = vec![0u64; row_words];
    layout.encode_slot(
        &mut row_image,
        0,
        &Record::new(TernaryKey::binary(0x0009, 16), 900),
    );
    layout.encode_slot(
        &mut row_image,
        1,
        &Record::new(TernaryKey::binary(0x0109, 16), 901),
    );
    {
        let table = sub.table_mut(routing);
        table.slices_mut()[0]
            .array_mut()
            .row_mut(bucket)
            .copy_from_slice(&row_image);
        table.slices_mut()[0].set_aux(
            bucket,
            AuxField {
                valid: 0b11,
                reach: 0,
            },
        );
    }
    println!("copied a pre-hashed bucket image into bucket {bucket}");

    // --- 2. CAM mode through memory-mapped ports ---------------------------
    // "to submit a request, an application will issue a store instruction
    // at the port address, passing the search key as the store data."
    let req = sub.request_port(routing);
    let res = sub.result_port(routing);
    println!("routing request port at {req:#010x}, result port at {res:#010x}");
    sub.store_request(req, SearchKey::new(0x0109, 16))?;
    sub.store_request(req, SearchKey::new(0x0FFF, 16))?;
    sub.pump(); // the input controller drains the queue
    while let Some(result) = sub.load_result(res)? {
        match result.outcome.hit {
            Some(h) => println!("  result: hit, data = {}", h.record.data),
            None => println!("  result: miss"),
        }
    }

    // --- 3. database isolation ----------------------------------------------
    let other = sub.search(scratch, &SearchKey::new(0x0109, 16));
    println!(
        "same key on the scratch database: {:?} (databases are isolated)",
        other.hit.map(|h| h.record.data)
    );
    Ok(())
}
