//! Criterion bench: TCAM search (the O(w·n) full scan the hardware does in
//! parallel, serialized by the simulator) vs a CA-RAM lookup on the same
//! routing table — the simulator-side analogue of the paper's comparison.

use ca_ram_bench::designs::{build_ip_table, ip_designs, load_prefixes};
use ca_ram_cam::{SortedTcam, Tcam, TcamEntry};
use ca_ram_core::key::SearchKey;
use ca_ram_workloads::bgp::{generate, BgpConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_tcam_vs_caram(c: &mut Criterion) {
    let prefixes = generate(&BgpConfig::scaled(4_000));
    let mut rng = SmallRng::seed_from_u64(2);
    let keys: Vec<SearchKey> = (0..512)
        .map(|_| {
            let p = prefixes[rng.gen_range(0..prefixes.len())];
            SearchKey::new(u128::from(p.random_member(&mut rng)), 32)
        })
        .collect();

    let mut tcam = Tcam::new(prefixes.len(), 32);
    for (i, p) in prefixes.iter().enumerate() {
        tcam.write(
            i,
            TcamEntry {
                key: p.to_ternary_key(),
                data: u64::from(p.len()),
            },
        );
    }
    let mut i = 0;
    c.bench_function("tcam_search_4k", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(tcam.search(&keys[i]))
        });
    });

    let mut caram = build_ip_table(&ip_designs()[3]);
    load_prefixes(&mut caram, &prefixes, &vec![1.0; prefixes.len()]);
    let mut j = 0;
    c.bench_function("caram_search_4k", |b| {
        b.iter(|| {
            j = (j + 1) % keys.len();
            black_box(caram.search(&keys[j]))
        });
    });

    let mut sorted = SortedTcam::new(prefixes.len(), 32);
    let mut k = 0;
    c.bench_function("sorted_tcam_insert", |b| {
        b.iter(|| {
            if sorted.len() == prefixes.len() {
                // Drain and start over outside the timing-sensitive path.
                sorted = SortedTcam::new(prefixes.len(), 32);
            }
            let p = &prefixes[k % prefixes.len()];
            k += 1;
            black_box(sorted.insert(p.to_ternary_key(), 0))
        });
    });
}

criterion_group!(benches, bench_tcam_vs_caram);
criterion_main!(benches);
