//! Sampling strategies (`prop::sample`).

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

/// Uniform choice from a fixed list of values.
///
/// # Panics
///
/// Panics if `options` is empty.
#[must_use]
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        self.options
            .choose(rng)
            .expect("select options are non-empty")
            .clone()
    }
}
