//! The whole service re-packaged as a [`SearchEngine`], so the conformance
//! suite and the differential fuzzer can drive the full concurrent path —
//! router, bounded queue, worker thread, batcher — through the ordinary
//! trait surface and compare it against the oracle `ReferenceModel`.

use ca_ram_core::engine::{EngineOutcome, EngineReport, SearchEngine};
use ca_ram_core::error::Result;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::Record;

use crate::config::ServiceConfig;
use crate::request::{AdmissionError, ServiceReply};
use crate::service::SearchService;

/// A [`SearchService`] behind the [`SearchEngine`] trait.
///
/// Every trait call is a synchronous round trip through the real serving
/// path (admission → queue → worker → engine → completion), so trait-driven
/// tests exercise the same machinery concurrent clients do. Per-shard FIFO
/// ordering makes the sequential trait semantics exact.
///
/// Multi-shard instances are only routing-consistent for exact-match
/// workloads; [`ServiceEngine::single_shard`] is the configuration the
/// fuzzer and conformance suites use, valid for ternary/LPM traffic too.
pub struct ServiceEngine {
    service: SearchService,
    label: String,
}

impl ServiceEngine {
    /// Wraps `engines` in a service with `config` and serves them.
    ///
    /// # Errors
    ///
    /// As [`SearchService::new`].
    pub fn new(config: ServiceConfig, engines: Vec<Box<dyn SearchEngine>>) -> Result<Self> {
        let label = format!("service[{}]x{}", engines[0].name(), engines.len());
        let service = SearchService::new(config, engines)?;
        Ok(Self { service, label })
    }

    /// One shard, no deadline: the deterministic configuration differential
    /// fuzzing drives.
    ///
    /// # Errors
    ///
    /// As [`SearchService::new`].
    pub fn single_shard(engine: Box<dyn SearchEngine>) -> Result<Self> {
        Self::new(ServiceConfig::single_shard(), vec![engine])
    }

    /// The service under the adapter, e.g. for snapshots.
    #[must_use]
    pub fn service(&self) -> &SearchService {
        &self.service
    }
}

impl SearchEngine for ServiceEngine {
    fn name(&self) -> &str {
        &self.label
    }

    fn key_bits(&self) -> u32 {
        self.service.key_bits()
    }

    fn search(&self, key: &SearchKey) -> EngineOutcome {
        self.service.search_sync(key)
    }

    fn insert(&mut self, record: Record) -> Result<()> {
        self.service.insert_sync(record)
    }

    fn insert_sorted(&mut self, record: Record) -> Result<()> {
        self.service.insert_sorted_sync(record)
    }

    fn delete(&mut self, key: &TernaryKey) -> u32 {
        self.service.delete_sync(key)
    }

    fn occupancy(&self) -> EngineReport {
        self.service.occupancy()
    }

    fn search_batch(&self, keys: &[SearchKey]) -> Vec<EngineOutcome> {
        // Drive the real batched path: one submission, one ring entry per
        // involved shard, one completion. No deadline — like the sync
        // surface, the trait contract is every key gets a real answer.
        let completion = loop {
            match self.service.try_submit_batch_with_deadline(keys, None) {
                Ok(ticket) => break ticket.wait(),
                Err(AdmissionError::QueueFull { .. }) => std::thread::yield_now(),
                Err(AdmissionError::ShuttingDown) => panic!("service shutting down"),
            }
        };
        completion
            .replies
            .into_iter()
            .map(|reply| match reply {
                ServiceReply::Search(outcome) => outcome,
                other => panic!("batch search answered with {other:?}"),
            })
            .collect()
    }
}

impl std::fmt::Debug for ServiceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceEngine")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}
