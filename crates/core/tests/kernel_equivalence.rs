//! Kernel equivalence property tests: the scalar compare kernel, every
//! SIMD kernel the host supports, and the decode-all oracle must agree
//! bit for bit on [`MatchProcessorBank::match_row`] and
//! [`MatchProcessorBank::first_match`] over random buckets.
//!
//! The suite sweeps every key size from 1 to 16 bytes across all three
//! row classes (word-per-slot, two-word binary, and the generic
//! bit-addressed fallback), with ternary don't-care runs chosen to end
//! exactly at, just before, and just after the 64-bit lane boundary —
//! the shapes where a lane-split compare can drop or duplicate a care
//! bit. Invalid slots are filled with garbage words, so the tests also
//! pin the contract that lane kernels may compute match bits for
//! invalid slots but callers mask them with the occupancy bitmap.
//!
//! Banks are pinned to a kernel via [`MatchProcessorBank::with_kernel`],
//! so no process-global kernel override is involved and the tests are
//! race-free under the parallel test runner.

use ca_ram_core::bits::low_mask;
use ca_ram_core::kernel;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::{Record, RecordLayout};
use ca_ram_core::matchproc::MatchProcessorBank;
use ca_ram_core::Kernel;
use proptest::prelude::*;

/// Slots per test bucket: one more than the lane kernels' 16-slot
/// early-exit group, so `first_match` crosses a group boundary.
const SLOTS: u32 = 17;

/// The layouts to cross-check for a given key width, covering every row
/// class the geometry admits:
///
/// * ternary generic (`2·kb + 16` stored bits — never word aligned),
/// * ternary word-per-slot when `2·kb ≤ 64` (the Table 2 IP shape),
/// * binary word-per-slot when `kb ≤ 64`,
/// * binary two-word slots when `64 ≤ kb ≤ 128` (the trigram shape).
fn layouts_for(key_bits: u32) -> Vec<RecordLayout> {
    let mut layouts = vec![RecordLayout::new(key_bits, true, 16)];
    if 2 * key_bits <= 64 {
        layouts.push(RecordLayout::new(key_bits, true, 64 - 2 * key_bits));
    }
    if key_bits <= 64 {
        layouts.push(RecordLayout::new(key_bits, false, 64 - key_bits));
    }
    if key_bits >= 64 {
        layouts.push(RecordLayout::new(key_bits, false, 128 - key_bits));
    }
    layouts
}

/// Maps a raw byte to a don't-care run length concentrated on the
/// boundary family: empty, a single bit, runs ending just before / at /
/// just after the 64-bit lane edge, one bit short of full, and full
/// width. Everything a lane-split compare can get wrong lives here.
fn boundary_dc_len(raw: u8, key_bits: u32) -> u32 {
    match raw % 8 {
        0 => 0,
        1 => 1.min(key_bits),
        2 => (key_bits / 2).min(key_bits),
        3 => 63.min(key_bits),
        4 => 64.min(key_bits),
        5 => 65.min(key_bits),
        6 => key_bits.saturating_sub(1),
        _ => key_bits,
    }
}

/// Fills a bucket with garbage, encodes `records` into their slots, and
/// returns the row words plus the occupancy bitmap.
fn build_bucket(
    layout: &RecordLayout,
    records: &[(u32, Record)],
    garbage: u64,
) -> (Vec<u64>, u128) {
    let bits = layout.slot_bits() * SLOTS;
    let words = (bits as usize).div_ceil(64);
    // Invalid slots carry pseudo-random garbage: the lane kernels compare
    // them anyway and the occupancy mask must discard whatever they say.
    let mut row: Vec<u64> = (0..words as u64)
        .map(|i| {
            garbage
                .rotate_left(u32::try_from(i % 63).unwrap())
                .wrapping_mul(i | 1)
        })
        .collect();
    let mut valid: u128 = 0;
    for (slot, record) in records {
        layout.encode_slot(&mut row, *slot, record);
        valid |= 1 << slot;
    }
    (row, valid)
}

/// The equivalence check proper: for each probe, every available kernel's
/// `match_row` / `first_match` must equal the scalar kernel's and the
/// decode-all oracle's answers.
fn check_kernels(
    layout: RecordLayout,
    raw_records: &[(u128, u8)],
    probes: &[SearchKey],
    row: &[u64],
    valid: u128,
) -> Result<(), TestCaseError> {
    let scalar = MatchProcessorBank::with_kernel(layout, Kernel::Scalar);
    let banks: Vec<MatchProcessorBank> = kernel::available()
        .into_iter()
        .map(|k| MatchProcessorBank::with_kernel(layout, k))
        .collect();
    for probe in probes {
        let oracle = scalar.match_row_decode_all(row, valid, SLOTS, probe);
        for bank in &banks {
            let got = bank.match_row(row, valid, SLOTS, probe);
            prop_assert_eq!(
                got,
                oracle,
                "match_row diverged from oracle: kernel {} layout {:?} probe {:?} records {:?}",
                bank.kernel().name(),
                layout,
                probe,
                raw_records
            );
            prop_assert_eq!(
                bank.first_match(row, valid, SLOTS, probe),
                oracle.first_match,
                "first_match diverged: kernel {} layout {:?} probe {:?}",
                bank.kernel().name(),
                layout,
                probe
            );
        }
        // The scalar bank runs the same dispatch; cross-check it too so a
        // bug shared by all SIMD kernels still trips against the oracle.
        prop_assert_eq!(scalar.match_row(row, valid, SLOTS, probe), oracle);
    }
    Ok(())
}

fn run_case(
    key_bits: u32,
    raw_records: &[(u128, u8)],
    raw_probes: &[(u128, u8)],
    garbage: u64,
) -> Result<(), TestCaseError> {
    for layout in layouts_for(key_bits) {
        let ternary = layout.is_ternary();
        let records: Vec<(u32, Record)> = raw_records
            .iter()
            .enumerate()
            .map(|(i, &(raw_value, raw_dc))| {
                let dc = if ternary {
                    low_mask(boundary_dc_len(raw_dc, key_bits))
                } else {
                    0
                };
                let value = raw_value & low_mask(key_bits) & !dc;
                // Spread records over the bucket so runs of invalid
                // (garbage) slots sit between valid ones.
                let slot = u32::try_from(i * 3 % SLOTS as usize).unwrap();
                (
                    slot,
                    Record::new(TernaryKey::ternary(value, dc, key_bits), 0),
                )
            })
            .collect();
        let (row, valid) = build_bucket(&layout, &records, garbage);
        let mut probes: Vec<SearchKey> = raw_probes
            .iter()
            .map(|&(raw_value, raw_dc)| {
                let value = raw_value & low_mask(key_bits);
                if raw_dc & 0x80 != 0 {
                    // Masked probe with a boundary-family don't-care run.
                    let dc = low_mask(boundary_dc_len(raw_dc, key_bits));
                    SearchKey::with_mask(value & !dc, dc, key_bits)
                } else {
                    SearchKey::new(value, key_bits)
                }
            })
            .collect();
        for (_, record) in &records {
            // Stored form read-back and junk in the don't-care run: the
            // probes most likely to straddle a dc-run lane boundary.
            let junk = record.key.value().rotate_left(29) & record.key.dont_care();
            probes.push(SearchKey::new(record.key.value(), key_bits));
            probes.push(SearchKey::new(record.key.value() | junk, key_bits));
        }
        check_kernels(layout, raw_records, &probes, &row, valid)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every key size from 1 to 16 bytes, every row class the width
    /// admits, every kernel the host supports.
    #[test]
    fn kernels_agree_on_random_buckets(
        bytes in 1u32..=16,
        raw_records in prop::collection::vec((any::<u128>(), any::<u8>()), 1..12),
        raw_probes in prop::collection::vec((any::<u128>(), any::<u8>()), 1..6),
        garbage in any::<u64>(),
    ) {
        run_case(8 * bytes, &raw_records, &raw_probes, garbage)?;
    }

    /// Don't-care runs pinned to the 64-bit lane edge (63/64/65) on the
    /// widths where a run can actually cross it.
    #[test]
    fn kernels_agree_on_lane_crossing_dc_runs(
        bytes in 9u32..=16,
        raw_values in prop::collection::vec(any::<u128>(), 1..8),
        edge in 0u8..3,
        garbage in any::<u64>(),
    ) {
        let raw_records: Vec<(u128, u8)> =
            raw_values.iter().map(|&v| (v, 3 + edge)).collect();
        let raw_probes = [(raw_values[0], 0u8), (!raw_values[0], 0x84)];
        run_case(8 * bytes, &raw_records, &raw_probes, garbage)?;
    }
}

/// A deterministic smoke pass over the exact paper configurations (IP
/// word-per-slot ternary, trigram two-word binary) so the suite still
/// exercises the lane kernels if the proptest shim ever shrinks its
/// case budget.
#[test]
fn paper_layouts_smoke() {
    for (key_bits, raws) in [
        (
            32u32,
            [(0xC0A8_0000u128, 4u8), (0xC000_0000, 5), (0x0A00_0001, 0)],
        ),
        (
            128,
            [
                (0x1234_5678_9ABC_DEF0_u128 << 32, 4),
                (u128::MAX, 3),
                (7, 0),
            ],
        ),
    ] {
        let probes = [(raws[0].0, 0u8), (raws[1].0 | 0x3F, 0), (0, 0x83)];
        run_case(key_bits, &raws, &probes, 0xDEAD_BEEF_5A5A_A5A5).unwrap();
    }
}
