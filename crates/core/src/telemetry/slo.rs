//! SLO tracking: rolling-window latency quantiles and error-budget
//! burn rate, computed by *diffing* successive [`Histogram`] snapshots.
//!
//! The serving layer already records latency into lock-free
//! [`super::AtomicHistogram`]s; those are cumulative since startup, which
//! washes out regressions. The [`SloTracker`] turns them into windows: on
//! each `tick` it subtracts the previous snapshot, yielding the
//! distribution of *just the interval*, and derives p50/p99, the fraction
//! of requests over the latency target, and the burn rate — how fast the
//! window is consuming the error budget (burn 1.0 = exactly on budget,
//! above 1.0 = the budget exhausts before the period does, the standard
//! SRE multiwindow-burn formulation).
//!
//! Budget "bad events" are latency-target breaches plus hard errors
//! (sheds + rejects), over all requests that reached a decision in the
//! window.

use super::histogram::Histogram;

/// The service-level objective being tracked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Latency target in microseconds; a request slower than this is a
    /// budget-burning event.
    pub target_us: u64,
    /// Allowed fraction of bad events (breaches + errors), in `(0, 1]`.
    pub error_budget: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        Self {
            target_us: 10_000,
            error_budget: 0.01,
        }
    }
}

/// One rolling-window SLO evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloReport {
    /// Completions observed in the window.
    pub window_count: u64,
    /// Window p50 latency (bucket upper bound), microseconds.
    pub p50_us: u64,
    /// Window p99 latency (bucket upper bound), microseconds.
    pub p99_us: u64,
    /// Completions in the window above the latency target.
    pub breaches: u64,
    /// Hard errors (sheds + rejects) in the window.
    pub errors: u64,
    /// Fraction of window requests that were bad events.
    pub bad_fraction: f64,
    /// `bad_fraction / error_budget`: >1 means the budget is burning
    /// faster than the SLO period replenishes it.
    pub burn_rate: f64,
    /// True when the window breached: p99 over target or burn over 1.
    pub breached: bool,
}

impl SloReport {
    /// An all-zero report for a window with no traffic.
    #[must_use]
    pub fn idle() -> Self {
        Self {
            window_count: 0,
            p50_us: 0,
            p99_us: 0,
            breaches: 0,
            errors: 0,
            bad_fraction: 0.0,
            burn_rate: 0.0,
            breached: false,
        }
    }
}

/// Rolling-window SLO evaluator over cumulative histogram snapshots.
#[derive(Debug, Clone)]
pub struct SloTracker {
    policy: SloPolicy,
    prev_latency: Histogram,
    prev_errors: u64,
    ticks: u64,
    breach_windows: u64,
    last: Option<SloReport>,
}

impl SloTracker {
    /// Creates a tracker for `policy`.
    #[must_use]
    pub fn new(policy: SloPolicy) -> Self {
        Self {
            policy,
            prev_latency: Histogram::new(),
            prev_errors: 0,
            ticks: 0,
            breach_windows: 0,
            last: None,
        }
    }

    /// The tracked policy.
    #[must_use]
    pub fn policy(&self) -> SloPolicy {
        self.policy
    }

    /// Windows evaluated so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Windows that breached so far.
    #[must_use]
    pub fn breach_windows(&self) -> u64 {
        self.breach_windows
    }

    /// The most recent report, if any window has been evaluated.
    #[must_use]
    pub fn last(&self) -> Option<SloReport> {
        self.last
    }

    /// Evaluates the window since the previous tick. `latency_us` is the
    /// *cumulative* completion-latency histogram (microseconds);
    /// `errors` the cumulative shed + reject count.
    pub fn tick(&mut self, latency_us: &Histogram, errors: u64) -> SloReport {
        let window = latency_us.diff(&self.prev_latency);
        let window_errors = errors.saturating_sub(self.prev_errors);
        self.prev_latency = latency_us.clone();
        self.prev_errors = errors;
        self.ticks += 1;

        let total = window.count() + window_errors;
        let report = if total == 0 {
            SloReport::idle()
        } else {
            let breaches = window.count_above(self.policy.target_us);
            #[allow(clippy::cast_precision_loss)]
            let bad_fraction = (breaches + window_errors) as f64 / total as f64;
            let burn_rate = bad_fraction / self.policy.error_budget;
            let p99_us = window.quantile(0.99);
            SloReport {
                window_count: window.count(),
                p50_us: window.quantile(0.5),
                p99_us,
                breaches,
                errors: window_errors,
                bad_fraction,
                burn_rate,
                breached: p99_us > self.policy.target_us || burn_rate > 1.0,
            }
        };
        if report.breached {
            self.breach_windows += 1;
        }
        self.last = Some(report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_window_reports_zeroes() {
        let mut tracker = SloTracker::new(SloPolicy::default());
        let report = tracker.tick(&Histogram::new(), 0);
        assert_eq!(report, SloReport::idle());
        assert!(!report.breached);
        assert_eq!(tracker.ticks(), 1);
        assert_eq!(tracker.last(), Some(report));
    }

    #[test]
    fn windows_are_deltas_not_cumulative() {
        let policy = SloPolicy {
            target_us: 1_000,
            error_budget: 0.1,
        };
        let mut tracker = SloTracker::new(policy);
        let mut cumulative = Histogram::new();
        for _ in 0..100 {
            cumulative.record(100);
        }
        let first = tracker.tick(&cumulative, 0);
        assert_eq!(first.window_count, 100);
        assert_eq!(first.breaches, 0);
        assert!(!first.breached);

        // Second window: 10 fast + 10 slow completions and 5 errors.
        for _ in 0..10 {
            cumulative.record(100);
        }
        for _ in 0..10 {
            cumulative.record(50_000);
        }
        let second = tracker.tick(&cumulative, 5);
        assert_eq!(second.window_count, 20);
        assert_eq!(second.breaches, 10);
        assert_eq!(second.errors, 5);
        assert!((second.bad_fraction - 15.0 / 25.0).abs() < 1e-12);
        assert!((second.burn_rate - 6.0).abs() < 1e-12);
        assert!(second.breached);
        assert!(second.p99_us > 1_000);
        assert_eq!(tracker.breach_windows(), 1);
    }

    #[test]
    fn burn_rate_one_sits_exactly_on_budget() {
        let policy = SloPolicy {
            target_us: 1_000,
            error_budget: 0.01,
        };
        let mut tracker = SloTracker::new(policy);
        let mut cumulative = Histogram::new();
        for _ in 0..99 {
            cumulative.record(10);
        }
        cumulative.record(1 << 20); // one breach in 100 = the 1% budget
        let report = tracker.tick(&cumulative, 0);
        assert_eq!(report.breaches, 1);
        assert!((report.burn_rate - 1.0).abs() < 1e-12);
        // Exactly on budget is not over budget, and p99 still sits in
        // the fast bucket (99 of 100 samples) — no breach either arm.
        assert!(!report.breached);

        // A second slow completion tips the next window over budget.
        cumulative.record(1 << 20);
        cumulative.record(1 << 20);
        cumulative.record(10);
        let over = tracker.tick(&cumulative, 0);
        assert_eq!(over.breaches, 2);
        assert!(over.burn_rate > 1.0);
        assert!(over.breached);
        assert_eq!(tracker.breach_windows(), 1);
    }
}
