//! Synthetic trigram databases (Sec. 4.2 substitution).
//!
//! The paper maps the CMU-Sphinx III trigram language model onto CA-RAM,
//! focusing on the partition of entries with 13–16 characters: 5,385,231
//! entries (40% of the 13.5 M total), 128-bit keys, DJB-hashed. The Sphinx
//! model file is not redistributable here, so this module generates
//! English-like word trigrams with the same count and key geometry. What
//! the experiment measures — the bucket-load distribution of a good string
//! hash at α = 0.86 — depends only on those two properties (the paper's own
//! Fig. 7 shows the loads are essentially Poisson).

use std::collections::HashSet;

use ca_ram_core::key::TernaryKey;
use ca_ram_core::pattern::{Pattern, PatternSpec};
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The pattern spec trigram tables compile through: one 128-bit packed
/// text key in exact-match mode (DJB-hashed at compile time).
///
/// # Panics
///
/// Never: the shape is statically well-formed.
#[must_use]
pub fn exact_spec() -> PatternSpec {
    PatternSpec::exact("trigram-exact", 128).expect("trigram spec is well-formed")
}

/// The binary stored key for one trigram entry, routed through the pattern
/// compiler ([`exact_spec`]) — byte-identical to
/// `TernaryKey::binary(pack_text_key(text), 128)`.
///
/// # Panics
///
/// As [`pack_text_key`] (text over 16 bytes); an exact pattern always
/// lowers under its own spec.
#[must_use]
pub fn text_ternary_key(text: &str) -> TernaryKey {
    let keys = exact_spec()
        .lower(&Pattern::Exact {
            value: pack_text_key(text),
        })
        .expect("an exact pattern lowers under the exact spec");
    debug_assert_eq!(keys.len(), 1);
    keys[0]
}

/// Configuration of the synthetic trigram generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrigramConfig {
    /// Unique entries to generate (the paper's partition: 5,385,231).
    pub entries: usize,
    /// Minimum entry length in characters (inclusive).
    pub min_chars: usize,
    /// Maximum entry length in characters (inclusive; ≤ 16 so an entry
    /// packs into a 128-bit key).
    pub max_chars: usize,
    /// Vocabulary size ("a ~60,000-word vocabulary", Sec. 4.2).
    pub vocabulary: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrigramConfig {
    fn default() -> Self {
        Self::sphinx_like()
    }
}

impl TrigramConfig {
    /// The full-size Sphinx-III-like configuration of Table 3.
    #[must_use]
    pub fn sphinx_like() -> Self {
        Self {
            entries: 5_385_231,
            min_chars: 13,
            max_chars: 16,
            vocabulary: 60_000,
            seed: 0x5F19,
        }
    }

    /// The same shape at a reduced scale.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    #[must_use]
    pub fn scaled(entries: usize) -> Self {
        assert!(entries > 0, "need at least one entry");
        Self {
            entries,
            ..Self::sphinx_like()
        }
    }
}

/// Packs a string of at most 16 bytes into a 128-bit key,
/// least-significant byte first — the byte order
/// [`ca_ram_core::index::DjbHash`] consumes.
///
/// # Panics
///
/// Panics if `text` exceeds 16 bytes.
#[must_use]
pub fn pack_text_key(text: &str) -> u128 {
    let bytes = text.as_bytes();
    assert!(bytes.len() <= 16, "key {text:?} exceeds 16 bytes");
    let mut key: u128 = 0;
    for (i, &b) in bytes.iter().enumerate() {
        key |= u128::from(b) << (8 * i);
    }
    key
}

/// English letter frequencies (approximate, for realistic-looking words;
/// the hash statistics do not depend on them).
const LETTER_WEIGHTS: [f64; 26] = [
    8.2, 1.5, 2.8, 4.3, 12.7, 2.2, 2.0, 6.1, 7.0, 0.15, 0.77, 4.0, 2.4, 6.7, 7.5, 1.9, 0.095, 6.0,
    6.3, 9.1, 2.8, 0.98, 2.4, 0.15, 2.0, 0.074,
];

/// Word-length weights for lengths 2..=8.
const WORD_LENGTH_WEIGHTS: [f64; 7] = [8.0, 20.0, 24.0, 20.0, 13.0, 9.0, 6.0];

fn build_vocabulary(rng: &mut SmallRng, size: usize) -> Vec<String> {
    let letters = WeightedIndex::new(LETTER_WEIGHTS).expect("weights are positive");
    let lengths = WeightedIndex::new(WORD_LENGTH_WEIGHTS).expect("weights are positive");
    let mut seen = HashSet::with_capacity(size * 2);
    let mut vocab = Vec::with_capacity(size);
    while vocab.len() < size {
        let len = 2 + lengths.sample(rng);
        let word: String = (0..len)
            .map(|_| {
                let i = letters.sample(rng);
                char::from(b'a' + u8::try_from(i).expect("26 letters"))
            })
            .collect();
        if seen.insert(word.clone()) {
            vocab.push(word);
        }
    }
    vocab
}

/// Generates unique trigram entries: three vocabulary words joined by
/// spaces, filtered to the configured character range.
///
/// # Panics
///
/// Panics if the configuration is degenerate (`max_chars > 16`,
/// `min_chars > max_chars`, vocabulary or entry count of zero, or a
/// combination that cannot produce enough unique entries).
#[must_use]
pub fn generate(config: &TrigramConfig) -> Vec<String> {
    assert!(config.entries > 0, "need at least one entry");
    assert!(config.vocabulary > 2, "vocabulary too small");
    assert!(
        config.min_chars <= config.max_chars && config.max_chars <= 16,
        "character range must fit in a 128-bit key"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let vocab = build_vocabulary(&mut rng, config.vocabulary);
    let mut seen: HashSet<u128> = HashSet::with_capacity(config.entries * 2);
    let mut out = Vec::with_capacity(config.entries);
    let mut attempts: u64 = 0;
    while out.len() < config.entries {
        attempts += 1;
        assert!(
            attempts < (config.entries as u64).saturating_mul(400).max(1 << 20),
            "generator cannot find enough unique trigrams; config too tight"
        );
        let a = &vocab[rng.gen_range(0..vocab.len())];
        let b = &vocab[rng.gen_range(0..vocab.len())];
        let c = &vocab[rng.gen_range(0..vocab.len())];
        let total = a.len() + b.len() + c.len() + 2;
        if total < config.min_chars || total > config.max_chars {
            continue;
        }
        let tri = format!("{a} {b} {c}");
        if seen.insert(pack_text_key(&tri)) {
            out.push(tri);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Vec<String> {
        generate(&TrigramConfig {
            entries: 5_000,
            vocabulary: 2_000,
            ..TrigramConfig::sphinx_like()
        })
    }

    #[test]
    fn entries_are_unique_and_in_range() {
        let t = small();
        assert_eq!(t.len(), 5_000);
        let mut keys: Vec<u128> = t.iter().map(|s| pack_text_key(s)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 5_000);
        for s in &t {
            assert!((13..=16).contains(&s.len()), "{s:?}");
            assert_eq!(s.split(' ').count(), 3, "{s:?}");
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = generate(&TrigramConfig::scaled(500));
        let b = generate(&TrigramConfig::scaled(500));
        assert_eq!(a, b);
    }

    #[test]
    fn pack_is_little_endian_and_injective_on_short_strings() {
        assert_eq!(pack_text_key(""), 0);
        assert_eq!(pack_text_key("a"), 0x61);
        assert_eq!(pack_text_key("ab"), 0x61 | (0x62 << 8));
        assert_ne!(pack_text_key("ab c"), pack_text_key("a bc"));
        // 16-byte maximum round-trips.
        let s = "abcdefghijklmnop";
        let k = pack_text_key(s);
        assert_eq!(k >> 120, 0x70); // 'p'
    }

    #[test]
    fn words_look_like_words() {
        let t = small();
        for s in t.iter().take(50) {
            assert!(s.bytes().all(|b| b == b' ' || b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn djb_spreads_trigram_keys_evenly() {
        // The property Table 3 depends on: bucket loads ~ Poisson.
        use ca_ram_core::index::{DjbHash, IndexGenerator};
        let t = generate(&TrigramConfig {
            entries: 40_000,
            vocabulary: 5_000,
            ..TrigramConfig::sphinx_like()
        });
        let g = DjbHash::new(8, 16); // 256 buckets, mean load 156.25
        let mut counts = vec![0u32; 256];
        for s in &t {
            counts[usize::try_from(g.index(pack_text_key(s))).unwrap()] += 1;
        }
        let mean = 40_000.0 / 256.0;
        let var: f64 = counts
            .iter()
            .map(|&c| (f64::from(c) - mean).powi(2))
            .sum::<f64>()
            / 256.0;
        // Poisson: variance ≈ mean. Allow a generous band.
        assert!(var < 3.0 * mean, "variance {var:.1} vs mean {mean:.1}");
    }

    #[test]
    #[should_panic(expected = "exceeds 16 bytes")]
    fn oversized_key_rejected() {
        let _ = pack_text_key("now this is far too long");
    }
}
