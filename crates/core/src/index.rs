//! Index generators — the hash functions of CA-RAM (Sec. 3.1).
//!
//! The index generator maps an `N`-bit search key to an `R`-bit row index.
//! "In many applications, index generation is as simple as bit selection,
//! incurring very little additional logic or delay. In other cases, simple
//! arithmetic functions ... may be necessary" — so the trait is object-safe
//! and ships with:
//!
//! * [`BitSelect`] — the Zane et al. bit-selection scheme used for IP lookup
//!   (Sec. 4.1);
//! * [`RangeSelect`] — a contiguous bit field (the paper's final choice:
//!   the last `R` bits of the first 16 address bits);
//! * [`DjbHash`] — the DJB string hash used for trigram lookup (Sec. 4.2);
//! * [`XorFold`] — a simple arithmetic fold for general use.
//!
//! A generator also reports which key bit positions it consumes
//! ([`IndexGenerator::consumed_bits`]); records with don't-care bits in
//! those positions must be duplicated into every matching bucket, and a
//! search key with don't-care bits there must probe multiple buckets —
//! both enumerated by [`buckets_for_masked_search`] (Sec. 4,
//! "limitations").

use crate::bits::low_mask;
use crate::key::SearchKey;

/// Maps keys to row indices. Implementations must be pure functions of the
/// key value: CA-RAM computes the same index at build time (software) and
/// lookup time (hardware).
pub trait IndexGenerator: Send + Sync + core::fmt::Debug {
    /// Number of index bits produced (`R`); the table has `2^R` buckets.
    fn index_bits(&self) -> u32;

    /// Computes the row index for a key value. The result is below
    /// `2^index_bits()`.
    fn index(&self, key_value: u128) -> u64;

    /// Key bit positions that influence the index, as a mask. Returns
    /// `None` when the whole key is consumed (e.g. by a string hash).
    fn consumed_bits(&self) -> Option<u128>;
}

/// Selects arbitrary key bit positions as the index (Zane et al. \[32\]).
///
/// Bit `i` of the index is the key bit at `positions[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSelect {
    positions: Vec<u32>,
}

impl BitSelect {
    /// Creates a bit-selection generator from the given key bit positions.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty, longer than 63, or contains a
    /// position ≥ 128 or a duplicate.
    #[must_use]
    pub fn new(positions: Vec<u32>) -> Self {
        assert!(
            !positions.is_empty() && positions.len() < 64,
            "index width must be in 1..=63 bits, got {}",
            positions.len()
        );
        let mut seen = 0u128;
        for &p in &positions {
            assert!(p < 128, "bit position {p} out of range");
            assert!(seen & (1 << p) == 0, "duplicate bit position {p}");
            seen |= 1 << p;
        }
        Self { positions }
    }

    /// The selected key bit positions.
    #[must_use]
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }
}

impl IndexGenerator for BitSelect {
    fn index_bits(&self) -> u32 {
        #[allow(clippy::cast_possible_truncation)]
        {
            self.positions.len() as u32
        }
    }

    fn index(&self, key_value: u128) -> u64 {
        let mut idx = 0u64;
        for (i, &p) in self.positions.iter().enumerate() {
            idx |= (((key_value >> p) & 1) as u64) << i;
        }
        idx
    }

    fn consumed_bits(&self) -> Option<u128> {
        Some(self.positions.iter().fold(0u128, |m, &p| m | (1 << p)))
    }
}

/// Selects a contiguous field of `count` bits starting at bit `low`.
///
/// For the paper's IP study the index is the last `R` bits of the first
/// 16 bits of the address; with MSB-first addressing of a 32-bit value this
/// is `RangeSelect::new(16, R)`.
///
/// # Examples
///
/// ```
/// use ca_ram_core::index::{IndexGenerator, RangeSelect};
///
/// let hash = RangeSelect::ip_first16_last(11); // Table 2 designs A-C
/// assert_eq!(hash.index_bits(), 11);
/// assert_eq!(hash.index(0xC0A8_1234), (0xC0A8_1234u64 >> 16) & 0x7FF);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeSelect {
    low: u32,
    count: u32,
}

impl RangeSelect {
    /// Creates a contiguous-field generator.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or ≥ 64, or the field exceeds 128 bits.
    #[must_use]
    pub fn new(low: u32, count: u32) -> Self {
        assert!(
            count > 0 && count < 64,
            "index width must be in 1..=63 bits"
        );
        assert!(
            low + count <= 128,
            "field [{low}, {}) out of range",
            low + count
        );
        Self { low, count }
    }

    /// The paper's IP-lookup hash: the last `r` bits of the first 16 bits
    /// of a 32-bit IPv4 address (address bits 16..16+r counting from the
    /// least-significant end).
    ///
    /// # Panics
    ///
    /// Panics if `r` is 0 or greater than 16.
    #[must_use]
    pub fn ip_first16_last(r: u32) -> Self {
        assert!(
            r > 0 && r <= 16,
            "the paper restricts hash bits to the first 16"
        );
        Self::new(16, r)
    }
}

impl IndexGenerator for RangeSelect {
    fn index_bits(&self) -> u32 {
        self.count
    }

    fn index(&self, key_value: u128) -> u64 {
        #[allow(clippy::cast_possible_truncation)]
        {
            ((key_value >> self.low) as u64) & ((1u64 << self.count) - 1)
        }
    }

    fn consumed_bits(&self) -> Option<u128> {
        Some(low_mask(self.count) << self.low)
    }
}

/// The DJB string hash over the key's bytes (Sec. 4.2):
/// `hash(i) = (hash(i-1) << 5) + hash(i-1) + str[i]`, seed 5381.
///
/// The key value is interpreted as `key_bytes` bytes, least-significant
/// byte first (the order `ca_ram_workloads::trigram::pack_text_key` packs
/// string keys in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DjbHash {
    index_bits: u32,
    key_bytes: u32,
}

impl DjbHash {
    /// Creates a DJB generator producing `index_bits` bits over
    /// `key_bytes`-byte keys.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or ≥ 64, or `key_bytes` is 0 or > 16.
    #[must_use]
    pub fn new(index_bits: u32, key_bytes: u32) -> Self {
        assert!(
            index_bits > 0 && index_bits < 64,
            "index width must be in 1..=63 bits"
        );
        assert!(key_bytes > 0 && key_bytes <= 16, "key must be 1..=16 bytes");
        Self {
            index_bits,
            key_bytes,
        }
    }

    /// The raw 32-bit DJB hash of `bytes`.
    #[must_use]
    pub fn raw(bytes: &[u8]) -> u32 {
        let mut h: u32 = 5381;
        for &b in bytes {
            h = h.wrapping_shl(5).wrapping_add(h).wrapping_add(u32::from(b));
        }
        h
    }
}

impl IndexGenerator for DjbHash {
    fn index_bits(&self) -> u32 {
        self.index_bits
    }

    fn index(&self, key_value: u128) -> u64 {
        let mut bytes = [0u8; 16];
        for (i, b) in bytes.iter_mut().enumerate().take(self.key_bytes as usize) {
            #[allow(clippy::cast_possible_truncation)] // low byte extraction
            {
                *b = (key_value >> (8 * i)) as u8;
            }
        }
        u64::from(Self::raw(&bytes[..self.key_bytes as usize])) & ((1u64 << self.index_bits) - 1)
    }

    fn consumed_bits(&self) -> Option<u128> {
        None
    }
}

/// XOR-folds the whole key down to `index_bits` bits — a cheap arithmetic
/// generator for keys without exploitable structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorFold {
    index_bits: u32,
}

impl XorFold {
    /// Creates an XOR-fold generator.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or ≥ 64.
    #[must_use]
    pub fn new(index_bits: u32) -> Self {
        assert!(
            index_bits > 0 && index_bits < 64,
            "index width must be in 1..=63 bits"
        );
        Self { index_bits }
    }
}

impl IndexGenerator for XorFold {
    fn index_bits(&self) -> u32 {
        self.index_bits
    }

    fn index(&self, key_value: u128) -> u64 {
        let mut acc = 0u128;
        let mut v = key_value;
        while v != 0 {
            acc ^= v & low_mask(self.index_bits);
            v >>= self.index_bits;
        }
        #[allow(clippy::cast_possible_truncation)]
        {
            acc as u64
        }
    }

    fn consumed_bits(&self) -> Option<u128> {
        None
    }
}

/// Inline capacity of a [`BucketList`]: lists of at most this many buckets
/// never touch the heap. The common lookup (no don't-care bits in the hash
/// positions) has exactly one home bucket.
pub const INLINE_BUCKETS: usize = 8;

/// A small-buffer list of bucket indices. Up to [`INLINE_BUCKETS`] entries
/// live on the stack; longer lists spill to a heap `Vec` that is retained
/// across [`BucketList::clear`], so a reused list allocates at most once —
/// the search hot path performs no per-lookup allocation.
#[derive(Debug, Clone, Default)]
pub struct BucketList {
    inline: [u64; INLINE_BUCKETS],
    len: usize,
    spill: Vec<u64>,
}

impl BucketList {
    /// Creates an empty list. Does not allocate.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the list, keeping any spill capacity for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Appends a bucket index.
    pub fn push(&mut self, bucket: u64) {
        if !self.spill.is_empty() {
            self.spill.push(bucket);
        } else if self.len < INLINE_BUCKETS {
            self.inline[self.len] = bucket;
            self.len += 1;
        } else {
            // First spill: migrate the inline entries so the live data is
            // contiguous in exactly one of the two buffers.
            self.spill.reserve(INLINE_BUCKETS * 2);
            self.spill.extend_from_slice(&self.inline);
            self.spill.push(bucket);
            self.len = 0;
        }
    }

    /// The bucket indices as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    fn active_mut(&mut self) -> &mut [u64] {
        if self.spill.is_empty() {
            &mut self.inline[..self.len]
        } else {
            &mut self.spill
        }
    }

    /// Sorts the list and removes duplicates.
    pub fn sort_dedup(&mut self) {
        if self.spill.is_empty() && self.len <= 1 {
            return; // the unmasked-lookup common case: nothing to order
        }
        self.active_mut().sort_unstable();
        if self.spill.is_empty() {
            let mut kept = 0;
            for i in 0..self.len {
                if i == 0 || self.inline[i] != self.inline[kept - 1] {
                    self.inline[kept] = self.inline[i];
                    kept += 1;
                }
            }
            self.len = kept;
        } else {
            self.spill.dedup();
        }
    }

    /// Applies `bucket % modulus` to every entry (bucket-space reduction).
    pub fn map_mod(&mut self, modulus: u64) {
        // Bucket counts are a power of two for every horizontal-only
        // arrangement; masking there keeps the per-search reduction off
        // the 64-bit divider.
        if modulus.is_power_of_two() {
            let mask = modulus - 1;
            for b in self.active_mut() {
                *b &= mask;
            }
        } else {
            for b in self.active_mut() {
                *b %= modulus;
            }
        }
    }
}

/// The home buckets a stored key occupies, or a masked search key must
/// probe.
///
/// A stored key with `n` don't-care bits in the hash positions "must be
/// duplicated and placed in 2^n buckets" (Sec. 4.1); symmetrically, a search
/// key with don't-care bits taken by the hash function "must access multiple
/// buckets" (Sec. 4). Both reduce to enumerating the hash images of the
/// masked positions; the stored key itself is placed unchanged — with its
/// full mask — in each home bucket, so matching semantics and the LPM
/// priority (care count) are unaffected by duplication.
///
/// # Panics
///
/// Panics if more than 20 hash bits are don't-care (2^20 buckets), which
/// indicates a mis-designed hash function rather than a workload property.
#[must_use]
pub fn buckets_for_masked_search(key: &SearchKey, generator: &dyn IndexGenerator) -> Vec<u64> {
    let mut out = BucketList::new();
    buckets_for_masked_search_into(key, generator, &mut out);
    out.as_slice().to_vec()
}

/// Allocation-free form of [`buckets_for_masked_search`]: the (sorted,
/// deduplicated) buckets are written into `out`, which is cleared first.
/// With no don't-care hash bits the single home bucket stays in `out`'s
/// inline buffer and no heap allocation occurs.
///
/// # Panics
///
/// As [`buckets_for_masked_search`].
pub fn buckets_for_masked_search_into(
    key: &SearchKey,
    generator: &dyn IndexGenerator,
    out: &mut BucketList,
) {
    out.clear();
    let Some(consumed) = generator.consumed_bits() else {
        out.push(generator.index(key.value()));
        return;
    };
    let free = key.dont_care() & consumed & low_mask(key.bits());
    let n = free.count_ones();
    assert!(
        n <= 20,
        "{n} don't-care hash bits would probe 2^{n} buckets"
    );
    if n == 0 {
        out.push(generator.index(key.value()));
        return;
    }
    for combo in 0u64..(1 << n) {
        // Scatter the combo bits over the free positions without a
        // materialized position list.
        let mut value = key.value();
        let mut rest = free;
        let mut i = 0u32;
        while rest != 0 {
            let p = rest.trailing_zeros();
            if combo >> i & 1 == 1 {
                value |= 1 << p;
            }
            rest &= rest - 1;
            i += 1;
        }
        out.push(generator.index(value));
    }
    out.sort_dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::TernaryKey;

    #[test]
    fn bit_select_picks_bits() {
        let g = BitSelect::new(vec![0, 4, 7]);
        assert_eq!(g.index_bits(), 3);
        // key bits: b0=1, b4=0, b7=1 -> index 0b101.
        assert_eq!(g.index(0b1000_0001), 0b101);
        assert_eq!(g.consumed_bits(), Some(0b1001_0001));
    }

    #[test]
    fn range_select_matches_paper_ip_hash() {
        // Last R bits of the first 16 bits of the address.
        let g = RangeSelect::ip_first16_last(11);
        assert_eq!(g.index_bits(), 11);
        let addr: u128 = 0xC0A8_1234; // 192.168.18.52
        let expect = (0xC0A8_1234u64 >> 16) & 0x7FF;
        assert_eq!(g.index(addr), expect);
    }

    #[test]
    fn range_select_equivalent_bit_select() {
        let r = RangeSelect::new(16, 11);
        let b = BitSelect::new((16..27).collect());
        for key in [0u128, 0xFFFF_FFFF, 0x1234_5678, 0xDEAD_BEEF] {
            assert_eq!(r.index(key), b.index(key));
        }
    }

    #[test]
    fn djb_matches_reference_implementation() {
        // hash("a") = 5381*33 + 97 = 177670.
        assert_eq!(DjbHash::raw(b"a"), 177_670);
        assert_eq!(DjbHash::raw(b""), 5381);
    }

    #[test]
    fn djb_index_masks_to_width() {
        let g = DjbHash::new(14, 16);
        for key in [0u128, 42, u128::MAX] {
            assert!(g.index(key) < (1 << 14));
        }
        assert_eq!(g.consumed_bits(), None);
    }

    #[test]
    fn djb_generator_agrees_with_byte_hash() {
        let g = DjbHash::new(16, 4);
        let key: u128 = u128::from(u32::from_le_bytes(*b"abcd"));
        assert_eq!(g.index(key), u64::from(DjbHash::raw(b"abcd")) & 0xFFFF);
    }

    #[test]
    fn xor_fold_stays_in_range_and_spreads() {
        let g = XorFold::new(8);
        assert!(g.index(u128::MAX) < 256);
        assert_ne!(g.index(1), g.index(2));
        // Folding covers high bits too.
        assert_ne!(g.index(1 << 100), g.index(0));
    }

    #[test]
    fn stored_key_without_dont_care_hash_bits_has_one_home() {
        let g = RangeSelect::ip_first16_last(11);
        // A /16: don't-care bits all below the hash field.
        let key = TernaryKey::ternary(0xC0A8_0000, 0xFFFF, 32);
        let homes = buckets_for_masked_search(&key.to_search_key(), &g);
        assert_eq!(homes, vec![g.index(key.value())]);
    }

    #[test]
    fn prefix_with_dont_care_hash_bits_is_duplicated() {
        // A /18 prefix: bits 0..14 don't-care; hash consumes bits 16..27.
        // No overlap -> 1 home. A /10 prefix: bits 0..22 don't-care; overlap
        // with hash bits 16..22 = 6 bits -> 2^6 = 64 homes.
        let g = RangeSelect::ip_first16_last(11);
        let p18 = TernaryKey::ternary(0xC0A8_C000, low_mask(14), 32);
        assert_eq!(buckets_for_masked_search(&p18.to_search_key(), &g).len(), 1);
        let p10 = TernaryKey::ternary(0xC000_0000, low_mask(22), 32);
        let homes = buckets_for_masked_search(&p10.to_search_key(), &g);
        assert_eq!(homes.len(), 64);
        // Homes are distinct (the function dedups) and any address covered
        // by the prefix hashes into one of them.
        let probe = 0xC012_3456u128;
        assert!(homes.contains(&g.index(probe)));
    }

    #[test]
    fn masked_search_probes_all_hash_images() {
        let g = RangeSelect::new(0, 4);
        // Don't-care in 2 hash bits -> 4 buckets.
        let key = SearchKey::with_mask(0b0000, 0b0011, 8);
        let buckets = buckets_for_masked_search(&key, &g);
        assert_eq!(buckets, vec![0, 1, 2, 3]);
        // Unmasked search probes exactly one.
        let key = SearchKey::new(0b0101, 8);
        assert_eq!(buckets_for_masked_search(&key, &g), vec![0b0101]);
    }

    #[test]
    fn generators_are_object_safe() {
        let gens: Vec<Box<dyn IndexGenerator>> = vec![
            Box::new(BitSelect::new(vec![0, 1])),
            Box::new(RangeSelect::new(0, 2)),
            Box::new(DjbHash::new(2, 8)),
            Box::new(XorFold::new(2)),
        ];
        for g in &gens {
            assert!(g.index(12345) < 4);
        }
    }

    #[test]
    fn bucket_list_inline_and_spill() {
        let mut l = BucketList::new();
        assert_eq!(l.as_slice(), &[] as &[u64]);
        // Stay inline.
        for b in [5u64, 3, 5, 1] {
            l.push(b);
        }
        l.sort_dedup();
        assert_eq!(l.as_slice(), &[1, 3, 5]);
        // Spill past the inline capacity.
        l.clear();
        for b in (0..INLINE_BUCKETS as u64 + 4).rev() {
            l.push(b);
            l.push(b);
        }
        l.sort_dedup();
        let expect: Vec<u64> = (0..INLINE_BUCKETS as u64 + 4).collect();
        assert_eq!(l.as_slice(), expect.as_slice());
        // Clear returns to inline mode.
        l.clear();
        l.push(9);
        l.push(9);
        l.sort_dedup();
        l.map_mod(4);
        assert_eq!(l.as_slice(), &[1]);
    }

    #[test]
    fn into_variant_agrees_with_vec_variant() {
        let g = RangeSelect::ip_first16_last(11);
        let mut list = BucketList::new();
        for key in [
            SearchKey::new(0xC0A8_1234, 32),
            TernaryKey::ternary(0xC000_0000, low_mask(22), 32).to_search_key(),
            SearchKey::with_mask(0, low_mask(32), 32),
        ] {
            buckets_for_masked_search_into(&key, &g, &mut list);
            assert_eq!(
                list.as_slice(),
                buckets_for_masked_search(&key, &g).as_slice()
            );
        }
    }

    #[test]
    #[should_panic(expected = "duplicate bit position")]
    fn duplicate_positions_rejected() {
        let _ = BitSelect::new(vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "restricts hash bits")]
    fn oversized_ip_hash_rejected() {
        let _ = RangeSelect::ip_first16_last(17);
    }
}
