//! The CA-RAM memory subsystem: multiple databases behind memory-mapped
//! request/result ports (Sec. 3.2, Fig. 5).
//!
//! "The CA-RAM slices in the subsystem can each serve a different database
//! ... request and result ports can be assigned a memory address, similar to
//! memory-mapped I/O ports, so that ordinary load and store instructions can
//! be used to access CA-RAM. ... each port address can be tied to a 'virtual
//! port' mapped to a specific database."
//!
//! [`CaRamSubsystem`] owns one [`CaRamTable`] per database, a configuration
//! store, and per-database request/result queues driven by the MMIO-style
//! [`CaRamSubsystem::store_request`] / [`CaRamSubsystem::load_result`] pair.
//! It also exposes the whole storage as addressable RAM
//! ([`CaRamSubsystem::ram_read`] / [`CaRamSubsystem::ram_write`]) — the "RAM
//! mode" used for database construction, scratch-pad space, and memory
//! tests.

use std::collections::VecDeque;

use crate::engine::{EngineOutcome, EngineReport, SearchEngine};
use crate::error::{CaRamError, Result};
use crate::key::SearchKey;
use crate::layout::Record;
use crate::stats::{AtomicSearchStats, SearchStats};
use crate::table::{CaRamTable, SearchOutcome};

/// Identifies a database (a slice group) within the subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DatabaseId(usize);

impl DatabaseId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Base address of the virtual request/result ports.
pub const PORT_BASE: u64 = 0x8000_0000;
/// Address stride between consecutive databases' ports.
pub const PORT_STRIDE: u64 = 0x100;

/// A queued search result, as delivered through the result port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortResult {
    /// The search outcome.
    pub outcome: SearchOutcome,
}

/// Per-database activity counters — the observability hook the Sec. 3.2
/// class library's "power management policies" would act on (e.g. gating
/// idle slice groups).
///
/// Since the instrumentation-layer refactor this is the shared
/// [`SearchStats`] snapshot type: the subsystem maintains the counters in an
/// [`AtomicSearchStats`] cell per database and
/// [`CaRamSubsystem::counters`] returns a plain-value snapshot of it.
pub type ActivityCounters = SearchStats;

struct Database {
    name: String,
    table: CaRamTable,
    requests: VecDeque<SearchKey>,
    results: VecDeque<PortResult>,
    counters: AtomicSearchStats,
}

/// A multi-database CA-RAM memory subsystem.
pub struct CaRamSubsystem {
    databases: Vec<Database>,
}

impl core::fmt::Debug for CaRamSubsystem {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let names: Vec<&str> = self.databases.iter().map(|d| d.name.as_str()).collect();
        f.debug_struct("CaRamSubsystem")
            .field("databases", &names)
            .finish()
    }
}

impl Default for CaRamSubsystem {
    fn default() -> Self {
        Self::new()
    }
}

impl CaRamSubsystem {
    /// Creates an empty subsystem.
    #[must_use]
    pub fn new() -> Self {
        Self {
            databases: Vec::new(),
        }
    }

    /// Registers a table as a named database; the name is the handle user
    /// code looks ports up by (the "configuration storage" of Fig. 5).
    pub fn add_database(&mut self, name: impl Into<String>, table: CaRamTable) -> DatabaseId {
        let id = DatabaseId(self.databases.len());
        self.databases.push(Database {
            name: name.into(),
            table,
            requests: VecDeque::new(),
            results: VecDeque::new(),
            counters: AtomicSearchStats::new(),
        });
        id
    }

    /// Number of registered databases.
    #[must_use]
    pub fn database_count(&self) -> usize {
        self.databases.len()
    }

    /// Looks a database up by name.
    #[must_use]
    pub fn database_by_name(&self, name: &str) -> Option<DatabaseId> {
        self.databases
            .iter()
            .position(|d| d.name == name)
            .map(DatabaseId)
    }

    fn db(&self, id: DatabaseId) -> &Database {
        &self.databases[id.0]
    }

    fn db_mut(&mut self, id: DatabaseId) -> &mut Database {
        &mut self.databases[id.0]
    }

    /// The table behind a database.
    #[must_use]
    pub fn table(&self, id: DatabaseId) -> &CaRamTable {
        &self.db(id).table
    }

    /// Mutable access to the table (inserts, deletes, RAM-mode writes).
    pub fn table_mut(&mut self, id: DatabaseId) -> &mut CaRamTable {
        &mut self.db_mut(id).table
    }

    /// Synchronous search on a database (bypassing the port queues but
    /// still counted in the activity counters).
    ///
    /// The counters are atomic, so searching takes `&self`: concurrent
    /// lookups against different (or the same) databases need no exclusive
    /// borrow.
    #[must_use]
    pub fn search(&self, id: DatabaseId, key: &SearchKey) -> SearchOutcome {
        let db = self.db(id);
        let outcome = db.table.search(key);
        db.counters
            .record(outcome.hit.is_some(), outcome.memory_accesses);
        outcome
    }

    /// A read-only search that bypasses the counters (for shared access).
    #[must_use]
    pub fn peek(&self, id: DatabaseId, key: &SearchKey) -> SearchOutcome {
        self.db(id).table.search(key)
    }

    /// A snapshot of the activity counters of a database.
    #[must_use]
    pub fn counters(&self, id: DatabaseId) -> ActivityCounters {
        self.db(id).counters.snapshot()
    }

    /// Resets a database's activity counters (e.g. per measurement epoch).
    pub fn reset_counters(&self, id: DatabaseId) {
        self.db(id).counters.reset();
    }

    /// Installs a telemetry sink on a database's table (see
    /// [`CaRamTable::set_telemetry_sink`]). The input controller
    /// additionally reports the request-queue depth to the sink at every
    /// [`CaRamSubsystem::pump`] / [`CaRamSubsystem::pump_parallel`] — the
    /// Fig. 5 queue-occupancy series.
    pub fn set_telemetry_sink(
        &mut self,
        id: DatabaseId,
        sink: std::sync::Arc<dyn crate::telemetry::TelemetrySink>,
    ) {
        self.db_mut(id).table.set_telemetry_sink(sink);
    }

    /// Removes a database's telemetry sink.
    pub fn clear_telemetry_sink(&mut self, id: DatabaseId) {
        self.db_mut(id).table.clear_telemetry_sink();
    }

    /// Borrows one database as a [`SearchEngine`], so benches and tests can
    /// drive it through the unified interface. Searches through the adapter
    /// are counted in the database's activity counters exactly like
    /// [`CaRamSubsystem::search`].
    pub fn engine(&mut self, id: DatabaseId) -> DatabaseEngine<'_> {
        let db = &mut self.databases[id.0];
        DatabaseEngine {
            name: &db.name,
            table: &mut db.table,
            counters: &db.counters,
        }
    }

    // ---- memory-mapped port model ------------------------------------------

    /// The request-port address of a database ("virtual port").
    #[must_use]
    pub fn request_port(&self, id: DatabaseId) -> u64 {
        PORT_BASE + PORT_STRIDE * id.0 as u64
    }

    /// The result-port address of a database.
    #[must_use]
    pub fn result_port(&self, id: DatabaseId) -> u64 {
        self.request_port(id) + PORT_STRIDE / 2
    }

    fn decode_port(&self, address: u64) -> Result<(DatabaseId, bool)> {
        let off = address
            .checked_sub(PORT_BASE)
            .ok_or(CaRamError::AddressOutOfRange { address, words: 0 })?;
        let id = usize::try_from(off / PORT_STRIDE).expect("port space is small");
        let is_result = off % PORT_STRIDE >= PORT_STRIDE / 2;
        if id >= self.databases.len() {
            return Err(CaRamError::AddressOutOfRange { address, words: 0 });
        }
        Ok((DatabaseId(id), is_result))
    }

    /// "To submit a request, an application will issue a store instruction
    /// at the port address, passing the search key as the store data."
    ///
    /// # Errors
    ///
    /// Returns [`CaRamError::AddressOutOfRange`] for an unmapped port
    /// address or [`CaRamError::BadConfig`] when storing to a result port.
    pub fn store_request(&mut self, port_address: u64, key: SearchKey) -> Result<()> {
        let (id, is_result) = self.decode_port(port_address)?;
        if is_result {
            return Err(CaRamError::BadConfig(
                "stores target the request port, not the result port".into(),
            ));
        }
        self.db_mut(id).requests.push_back(key);
        Ok(())
    }

    /// Drains request queues, executing each lookup and enqueueing its
    /// result — the input controller's job. Returns the number of lookups
    /// performed. Each database's pending requests are executed as one
    /// batch through [`CaRamTable::search_batch`], so the home-bucket
    /// scratch buffer is reused across the whole queue.
    pub fn pump(&mut self) -> usize {
        let mut done = 0;
        let mut keys: Vec<SearchKey> = Vec::new();
        for db in &mut self.databases {
            if let Some(sink) = db.table.telemetry_sink() {
                sink.queue_depth(db.requests.len() as u64);
            }
            keys.clear();
            keys.extend(db.requests.drain(..));
            let mut batch = SearchStats::new();
            for outcome in db.table.search_batch(&keys) {
                batch.record(outcome.hit.is_some(), outcome.memory_accesses);
                db.results.push_back(PortResult { outcome });
                done += 1;
            }
            db.counters.merge(&batch);
        }
        done
    }

    /// As [`CaRamSubsystem::pump`], but each database's batch is sharded
    /// across `threads` worker threads (`0` = one per available CPU) via
    /// [`CaRamTable::search_batch_parallel_stats`]. Results are enqueued in
    /// request order, and the counters end up exactly as after a serial
    /// pump.
    pub fn pump_parallel(&mut self, threads: usize) -> usize {
        let mut done = 0;
        let mut keys: Vec<SearchKey> = Vec::new();
        for db in &mut self.databases {
            if let Some(sink) = db.table.telemetry_sink() {
                sink.queue_depth(db.requests.len() as u64);
            }
            keys.clear();
            keys.extend(db.requests.drain(..));
            let (outcomes, stats) = db.table.search_batch_parallel_stats(&keys, threads);
            db.counters.merge(&stats);
            for outcome in outcomes {
                db.results.push_back(PortResult { outcome });
                done += 1;
            }
        }
        done
    }

    /// Loads the next result from a result port (`None` when the queue is
    /// empty, i.e. the load would stall).
    ///
    /// # Errors
    ///
    /// Returns [`CaRamError::AddressOutOfRange`] for an unmapped address or
    /// [`CaRamError::BadConfig`] when loading from a request port.
    pub fn load_result(&mut self, port_address: u64) -> Result<Option<PortResult>> {
        let (id, is_result) = self.decode_port(port_address)?;
        if !is_result {
            return Err(CaRamError::BadConfig(
                "loads target the result port, not the request port".into(),
            ));
        }
        Ok(self.db_mut(id).results.pop_front())
    }

    // ---- RAM mode -----------------------------------------------------------

    /// Addressable words of a database's storage (RAM mode).
    #[must_use]
    pub fn ram_words(&self, id: DatabaseId) -> u64 {
        self.db(id)
            .table
            .slices()
            .iter()
            .map(|s| s.array().total_words())
            .sum()
    }

    fn locate(&self, id: DatabaseId, address: u64) -> Result<(usize, u64)> {
        let mut remaining = address;
        for (i, s) in self.db(id).table.slices().iter().enumerate() {
            let words = s.array().total_words();
            if remaining < words {
                return Ok((i, remaining));
            }
            remaining -= words;
        }
        Err(CaRamError::AddressOutOfRange {
            address,
            words: self.ram_words(id),
        })
    }

    /// RAM-mode word read across a database's slices (slice-major order).
    ///
    /// # Errors
    ///
    /// Returns [`CaRamError::AddressOutOfRange`] past the end of storage.
    pub fn ram_read(&self, id: DatabaseId, address: u64) -> Result<u64> {
        let (slice, word) = self.locate(id, address)?;
        self.db(id).table.slices()[slice].array().read_word(word)
    }

    /// RAM-mode word write. Writing does not update auxiliary metadata —
    /// see [`crate::slice::CaRamSlice::array_mut`].
    ///
    /// # Errors
    ///
    /// Returns [`CaRamError::AddressOutOfRange`] past the end of storage.
    pub fn ram_write(&mut self, id: DatabaseId, address: u64, value: u64) -> Result<()> {
        let (slice, word) = self.locate(id, address)?;
        self.db_mut(id).table.slices_mut()[slice]
            .array_mut()
            .write_word(word, value)
    }
}

/// One subsystem database viewed as a [`SearchEngine`].
///
/// Produced by [`CaRamSubsystem::engine`]; borrows the database's table
/// mutably (for inserts and deletes) and its activity counters shared, so
/// every search through the adapter — serial, batched, or parallel — is
/// recorded exactly as a direct [`CaRamSubsystem::search`] would be.
pub struct DatabaseEngine<'a> {
    name: &'a str,
    table: &'a mut CaRamTable,
    counters: &'a AtomicSearchStats,
}

impl SearchEngine for DatabaseEngine<'_> {
    fn name(&self) -> &str {
        self.name
    }

    fn key_bits(&self) -> u32 {
        self.table.layout().key_bits()
    }

    fn search(&self, key: &SearchKey) -> EngineOutcome {
        let outcome = self.table.search(key);
        self.counters
            .record(outcome.hit.is_some(), outcome.memory_accesses);
        outcome.into()
    }

    fn insert(&mut self, record: Record) -> Result<()> {
        self.table.insert(record).map(|_| ())
    }

    fn insert_sorted(&mut self, record: Record) -> Result<()> {
        self.table.insert_sorted(record).map(|_| ())
    }

    // Deletion funnels into `CaRamTable::delete`, which flips the table's
    // `full_scan` degradation flag; every subsystem search entry point —
    // `search`/`peek`, `pump[_parallel]`, and this adapter's
    // `search[_batch[_parallel_stats]]` — reads that flag through
    // `search_with_scratch`, so post-delete LPM lookups never shortcut the
    // bucket scan regardless of which port they arrive on.
    fn delete(&mut self, key: &crate::key::TernaryKey) -> u32 {
        self.table.delete(key)
    }

    fn occupancy(&self) -> EngineReport {
        SearchEngine::occupancy(&*self.table)
    }

    fn search_batch(&self, keys: &[SearchKey]) -> Vec<EngineOutcome> {
        let outcomes = self.table.search_batch(keys);
        let mut batch = SearchStats::new();
        for o in &outcomes {
            batch.record(o.hit.is_some(), o.memory_accesses);
        }
        self.counters.merge(&batch);
        outcomes.into_iter().map(Into::into).collect()
    }

    fn search_batch_parallel_stats(
        &self,
        keys: &[SearchKey],
        threads: usize,
    ) -> (Vec<EngineOutcome>, SearchStats) {
        let (outcomes, stats) = self.table.search_batch_parallel_stats(keys, threads);
        self.counters.merge(&stats);
        (outcomes.into_iter().map(Into::into).collect(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::RangeSelect;
    use crate::key::TernaryKey;
    use crate::layout::{Record, RecordLayout};
    use crate::table::TableConfig;

    fn table() -> CaRamTable {
        let layout = RecordLayout::new(16, false, 8);
        CaRamTable::new(
            TableConfig::single_slice(3, 96, layout),
            Box::new(RangeSelect::new(0, 3)),
        )
        .unwrap()
    }

    fn subsystem() -> (CaRamSubsystem, DatabaseId, DatabaseId) {
        let mut sub = CaRamSubsystem::new();
        let a = sub.add_database("routing", table());
        let b = sub.add_database("trigrams", table());
        (sub, a, b)
    }

    #[test]
    fn databases_are_isolated() {
        let (mut sub, a, b) = subsystem();
        sub.table_mut(a)
            .insert(Record::new(TernaryKey::binary(0x11, 16), 1))
            .unwrap();
        assert!(sub.search(a, &SearchKey::new(0x11, 16)).hit.is_some());
        assert!(sub.search(b, &SearchKey::new(0x11, 16)).hit.is_none());
        assert_eq!(sub.database_by_name("trigrams"), Some(b));
        assert_eq!(sub.database_by_name("nope"), None);
        assert_eq!(sub.database_count(), 2);
    }

    #[test]
    fn mmio_request_response_round_trip() {
        let (mut sub, a, _) = subsystem();
        sub.table_mut(a)
            .insert(Record::new(TernaryKey::binary(0x42, 16), 9))
            .unwrap();
        let req = sub.request_port(a);
        let res = sub.result_port(a);
        sub.store_request(req, SearchKey::new(0x42, 16)).unwrap();
        sub.store_request(req, SearchKey::new(0x43, 16)).unwrap();
        // Nothing until the controller pumps.
        assert_eq!(sub.load_result(res).unwrap(), None);
        assert_eq!(sub.pump(), 2);
        let first = sub.load_result(res).unwrap().unwrap();
        assert_eq!(first.outcome.hit.unwrap().record.data, 9);
        let second = sub.load_result(res).unwrap().unwrap();
        assert!(second.outcome.hit.is_none());
        assert_eq!(sub.load_result(res).unwrap(), None);
    }

    #[test]
    fn port_misuse_is_rejected() {
        let (mut sub, a, _) = subsystem();
        let req = sub.request_port(a);
        let res = sub.result_port(a);
        assert!(matches!(
            sub.store_request(res, SearchKey::new(0, 16)),
            Err(CaRamError::BadConfig(_))
        ));
        assert!(matches!(
            sub.load_result(req),
            Err(CaRamError::BadConfig(_))
        ));
        assert!(sub.store_request(0x10, SearchKey::new(0, 16)).is_err());
        assert!(sub
            .store_request(PORT_BASE + 5 * PORT_STRIDE, SearchKey::new(0, 16))
            .is_err());
    }

    #[test]
    fn activity_counters_track_searches_and_amal() {
        let (mut sub, a, b) = subsystem();
        sub.table_mut(a)
            .insert(Record::new(TernaryKey::binary(0x21, 16), 1))
            .unwrap();
        // Two direct hits, one miss on database a; nothing on b.
        sub.search(a, &SearchKey::new(0x21, 16));
        sub.search(a, &SearchKey::new(0x21, 16));
        sub.search(a, &SearchKey::new(0x22, 16));
        let c = sub.counters(a);
        assert_eq!(c.searches, 3);
        assert_eq!(c.hits, 2);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.measured_amal() - 1.0).abs() < 1e-12);
        assert_eq!(sub.counters(b), ActivityCounters::default());
        // Port traffic counts too.
        sub.store_request(sub.request_port(a), SearchKey::new(0x21, 16))
            .unwrap();
        sub.pump();
        assert_eq!(sub.counters(a).searches, 4);
        // Peek does not count; reset clears.
        let _ = sub.peek(a, &SearchKey::new(0x21, 16));
        assert_eq!(sub.counters(a).searches, 4);
        sub.reset_counters(a);
        assert_eq!(sub.counters(a), ActivityCounters::default());
    }

    #[test]
    fn parallel_pump_matches_serial_pump() {
        let build = || {
            let (mut sub, a, b) = subsystem();
            for i in 0..8u64 {
                sub.table_mut(a)
                    .insert(Record::new(TernaryKey::binary(u128::from(i) << 3, 16), i))
                    .unwrap();
            }
            for i in 0..16u128 {
                sub.store_request(sub.request_port(a), SearchKey::new(i << 2, 16))
                    .unwrap();
                sub.store_request(sub.request_port(b), SearchKey::new(i, 16))
                    .unwrap();
            }
            (sub, a, b)
        };
        let (mut serial, sa, sb) = build();
        assert_eq!(serial.pump(), 32);
        let drain = |sub: &mut CaRamSubsystem, id: DatabaseId| {
            let port = sub.result_port(id);
            let mut out = Vec::new();
            while let Some(r) = sub.load_result(port).unwrap() {
                out.push(r);
            }
            out
        };
        let expect_a = drain(&mut serial, sa);
        let expect_b = drain(&mut serial, sb);
        assert_eq!(expect_a.len(), 16);
        for threads in [0, 1, 3] {
            let (mut par, pa, pb) = build();
            assert_eq!(par.pump_parallel(threads), 32, "threads={threads}");
            assert_eq!(par.counters(pa), serial.counters(sa), "threads={threads}");
            assert_eq!(par.counters(pb), serial.counters(sb), "threads={threads}");
            assert_eq!(drain(&mut par, pa), expect_a, "threads={threads}");
            assert_eq!(drain(&mut par, pb), expect_b, "threads={threads}");
        }
    }

    #[test]
    fn ram_mode_spans_slices_and_bounds_checked() {
        let (mut sub, a, _) = subsystem();
        let words = sub.ram_words(a);
        assert_eq!(words, 8 * 2); // 8 rows x 96 bits -> 2 words/row
        sub.ram_write(a, 0, 0xDEAD).unwrap();
        sub.ram_write(a, words - 1, 0xBEEF).unwrap();
        assert_eq!(sub.ram_read(a, 0).unwrap(), 0xDEAD);
        assert_eq!(sub.ram_read(a, words - 1).unwrap(), 0xBEEF);
        assert!(sub.ram_read(a, words).is_err());
        assert!(sub.ram_write(a, words, 0).is_err());
    }

    #[test]
    fn ram_mode_memory_test_pattern() {
        // Sec. 3.2: "various hardware- and software-based memory tests will
        // be performed on CA-RAM using this RAM mode" — a walking-ones test.
        let (mut sub, a, _) = subsystem();
        let words = sub.ram_words(a);
        for addr in 0..words {
            sub.ram_write(a, addr, 1u64 << (addr % 64)).unwrap();
        }
        for addr in 0..words {
            assert_eq!(sub.ram_read(a, addr).unwrap(), 1u64 << (addr % 64));
        }
    }
}
