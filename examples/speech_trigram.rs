//! Trigram lookup for speech recognition on CA-RAM (the Sec. 4.2
//! application).
//!
//! Builds a language-model trigram store (Sphinx-like synthetic data,
//! 13–16 character keys, DJB hash), then serves lookup traffic with a
//! Zipf popularity profile — the access pattern of a decoder's language
//! model — and reports the measured accesses per lookup.
//!
//! Run with: `cargo run --release --example speech_trigram`

use ca_ram::core::index::DjbHash;
use ca_ram::core::key::{SearchKey, TernaryKey};
use ca_ram::core::layout::{Record, RecordLayout};
use ca_ram::core::probe::ProbePolicy;
use ca_ram::core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};
use ca_ram::workloads::trace::{frequencies, sample_trace, AccessPattern};
use ca_ram::workloads::trigram::{generate, pack_text_key, TrigramConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down design A of Table 3: 96-key buckets, vertical slices.
    let entries = 200_000;
    let config = TrigramConfig {
        entries,
        vocabulary: 20_000,
        ..TrigramConfig::sphinx_like()
    };
    let trigrams = generate(&config);
    println!(
        "trigram database: {} entries of {}-{} chars (synthetic Sphinx-like)",
        trigrams.len(),
        config.min_chars,
        config.max_chars
    );

    // Capacity for alpha ~= 0.85: M*S ~= entries/0.85.
    let layout = RecordLayout::new(128, false, 32); // 32-bit LM score index
    let table_config = TableConfig {
        rows_log2: 9, // 512 rows/slice
        row_bits: 96 * layout.slot_bits(),
        layout,
        arrangement: Arrangement::Vertical(5), // 2560 buckets x 96 slots
        probe: ProbePolicy::Linear,
        overflow: OverflowPolicy::Probe { max_steps: 1 << 12 },
    };
    let mut table = CaRamTable::new(table_config, Box::new(DjbHash::new(32, 16)))?;
    for (i, s) in trigrams.iter().enumerate() {
        let record = Record::new(TernaryKey::binary(pack_text_key(s), 128), i as u64);
        table.insert(record)?;
    }
    let report = table.load_report();
    println!(
        "built: alpha {:.2}, {:.2}% buckets overflow, {:.2}% spilled, AMALu {:.3}\n",
        report.load_factor(),
        report.overflowing_buckets_pct(),
        report.spilled_records_pct(),
        report.amal_uniform
    );

    // Decoder traffic: Zipf-popular trigrams dominate.
    let freqs = frequencies(trigrams.len(), AccessPattern::Zipf { s: 1.0 }, 7);
    let trace = sample_trace(&freqs, 50_000, 8);
    let mut accesses: u64 = 0;
    let mut score_sum: u64 = 0;
    for &i in &trace {
        let key = SearchKey::new(pack_text_key(&trigrams[i]), 128);
        let got = table.search(&key);
        accesses += u64::from(got.memory_accesses);
        let hit = got.hit.expect("trigram is stored");
        assert_eq!(hit.record.data, i as u64);
        score_sum = score_sum.wrapping_add(hit.record.data);
    }
    #[allow(clippy::cast_precision_loss)]
    let amal = accesses as f64 / trace.len() as f64;
    println!(
        "served {} lookups, measured AMAL {amal:.3} (paper design A: 1.003)",
        trace.len()
    );

    // An out-of-vocabulary trigram misses in one access.
    let miss = table.search(&SearchKey::new(pack_text_key("qqq www zzz"), 128));
    println!(
        "OOV lookup: {:?} in {} access(es)",
        miss.hit.map(|h| h.record.data),
        miss.memory_accesses
    );
    let _ = score_sum;
    Ok(())
}
