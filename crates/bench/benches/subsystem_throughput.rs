//! Criterion bench: the cycle-level controller simulation itself (cost of
//! one simulated request end to end, across slice counts).

use ca_ram_core::controller::{simulate, QueueModelConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_controller(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller_sim");
    for slices in [1u32, 4, 16] {
        let mut rng = SmallRng::seed_from_u64(4);
        let trace: Vec<u32> = (0..10_000).map(|_| rng.gen_range(0..slices)).collect();
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(slices), &trace, |b, trace| {
            let config = QueueModelConfig {
                slices,
                nmem: 6,
                queue_depth: 64,
                accepts_per_cycle: 4,
                head_of_line: false,
            };
            b.iter(|| black_box(simulate(config, trace.iter().copied())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_controller);
criterion_main!(benches);
