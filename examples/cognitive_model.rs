//! Declarative-memory retrieval for a cognitive model (the paper's
//! future-work application, Sec. 6: "a large-scale system implementing a
//! cognitive model such as ACT-R will benefit from employing CA-RAM").
//!
//! Stores ACT-R-style chunks in a CA-RAM and serves *partial-cue*
//! retrievals — masked searches where unbound slots are don't-care. Cues
//! that leave the hash-covered slot open must probe several buckets, the
//! Sec. 4 masked-search cost, which this example measures. Bulk evaluation
//! (Sec. 3.1) then sweeps the whole memory for a type census.
//!
//! Run with: `cargo run --release --example cognitive_model`

use ca_ram::core::index::BitSelect;
use ca_ram::core::key::TernaryKey;
use ca_ram::core::layout::{Record, RecordLayout};
use ca_ram::core::probe::ProbePolicy;
use ca_ram::core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};
use ca_ram::workloads::chunks::{generate, Chunk, ChunkConfig, Cue, SLOT_BITS, TYPE_LOW};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A declarative memory of 60,000 chunks.
    let config = ChunkConfig {
        chunks: 60_000,
        types: 12,
        symbols: 4_000,
        seed: 0xAC7,
    };
    let chunks = generate(&config);
    println!(
        "declarative memory: {} chunks, {} types",
        chunks.len(),
        config.types
    );

    // Hash on the type field (4 bits) and low bits of slot0 (6 bits):
    // retrievals conventionally bind the first slot, and the type is always
    // present in a cue.
    let mut hash_bits: Vec<u32> = (TYPE_LOW..TYPE_LOW + 4).collect();
    hash_bits.extend(0..6);
    let layout = RecordLayout::new(128, false, 32); // data = chunk id
    let table_config = TableConfig {
        rows_log2: 10,
        row_bits: 96 * layout.slot_bits(),
        layout,
        arrangement: Arrangement::Horizontal(1),
        probe: ProbePolicy::Linear,
        overflow: OverflowPolicy::Probe { max_steps: 1024 },
    };
    let mut memory = CaRamTable::new(table_config, Box::new(BitSelect::new(hash_bits)))?;
    for (i, c) in chunks.iter().enumerate() {
        memory.insert(Record::new(TernaryKey::binary(c.to_key(), 128), i as u64))?;
    }
    let report = memory.load_report();
    println!(
        "CA-RAM: {} buckets x {} slots, alpha {:.2}, AMALu {:.3}\n",
        memory.logical_buckets(),
        memory.slots_per_bucket(),
        report.load_factor(),
        report.amal_uniform
    );

    // --- retrieval with a fully grounded cue -------------------------------
    let target = &chunks[4_321];
    let cue = Cue::of_type(target.ctype)
        .bind(0, target.slots[0])
        .bind(1, target.slots[1])
        .bind(2, target.slots[2])
        .bind(3, target.slots[3]);
    let got = memory.search(&cue.to_search_key());
    println!(
        "grounded retrieval: chunk id {:?} in {} memory access(es)",
        got.hit.map(|h| h.record.data),
        got.memory_accesses
    );
    assert_eq!(got.hit.unwrap().record.data, 4_321);

    // --- partial cue binding slot0: single-bucket masked search -------------
    let cue = Cue::of_type(target.ctype).bind(0, target.slots[0]);
    let got = memory.search(&cue.to_search_key());
    let hit = got.hit.expect("at least the target matches");
    println!(
        "partial cue (type + slot0): chunk id {} in {} access(es)",
        hit.record.data, got.memory_accesses
    );
    assert!(cue.matches(&Chunk::from_key(hit.record.key.value())));

    // --- partial cue leaving slot0 open: multi-bucket masked search ---------
    let cue = Cue::of_type(target.ctype)
        .bind(1, target.slots[1])
        .bind(2, target.slots[2]);
    let got = memory.search(&cue.to_search_key());
    let hit = got.hit.expect("the target matches");
    println!(
        "partial cue (slot0 open): chunk id {} in {} access(es) — 2^6 hash \
         images probed (Sec. 4's masked-search cost)",
        hit.record.data, got.memory_accesses
    );
    assert!(got.memory_accesses >= 64);

    // --- massive data evaluation: census by type ----------------------------
    let mut census = [0u64; 12];
    let receipt = memory.for_each_record(|_, _, r| {
        census[Chunk::from_key(r.key.value()).ctype as usize] += 1;
    });
    println!(
        "\ntype census over {} records in {} row fetches:",
        receipt.records_visited, receipt.rows_accessed
    );
    let expected_per_type = chunks.len() as u64 / 12;
    for (t, n) in census.iter().enumerate() {
        assert!(n.abs_diff(expected_per_type) < expected_per_type / 2);
        print!("  type {t}: {n}");
        if t % 4 == 3 {
            println!();
        }
    }
    println!();

    // Count all chunks of one type via a hardware masked population count.
    let type_only = Cue::of_type(7).to_search_key();
    let (count, _) = memory.count_matching(&type_only);
    assert_eq!(count, census[7]);
    println!("masked population count for type 7: {count} (matches the census)");
    let _ = SLOT_BITS;
    Ok(())
}
