//! Observability v2 glue for the serving layer: the per-shard tracer
//! that ties [`RequestTrace`] sampling, the [`FlightRecorder`] event
//! ring, ladder-transition tracking, and the completion-latency
//! histogram together.
//!
//! The contract mirrors the degradation ladder's own philosophy —
//! observability must never become the overload:
//!
//! * **Flight events** ([`FlightEvent`]) are `Copy` PODs recorded into a
//!   lock-free overwrite-oldest ring on *every* shed, reject, ladder
//!   transition, and SLO breach, sampled or not. Recording is one
//!   `fetch_add` plus a seqlock-protected slot write.
//! * **Request traces** are head-sampled (1-in-N via
//!   [`TraceSampler`]): an unsampled request carries `None` and never
//!   allocates, locks, or reads the clock for tracing.
//! * **Tail retention** happens off the hot path: only a *sampled*
//!   request's terminal touches the [`TraceStore`] mutex.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Instant;

use ca_ram_core::telemetry::{
    AtomicHistogram, FlightRecorder, RequestTrace, SpanStage, TraceSampler, TraceStore,
};

use crate::config::ServiceConfig;

/// The degradation-ladder rung a shard sits on, derived from the drained
/// queue depth (and, for [`LadderRung::Reject`], from admission refusals
/// observed since the previous drain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderRung {
    /// Below every threshold: full service, deep telemetry on.
    Normal,
    /// Rung 1: deep telemetry shed.
    Shed,
    /// Rung 2: duplicate in-flight keys coalesced.
    Coalesce,
    /// Rung 3: the queue filled and admission refused requests.
    Reject,
}

impl LadderRung {
    /// Every rung, in escalation order.
    pub const ALL: [LadderRung; 4] = [
        LadderRung::Normal,
        LadderRung::Shed,
        LadderRung::Coalesce,
        LadderRung::Reject,
    ];

    /// Stable lowercase name used in dumps and exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LadderRung::Normal => "normal",
            LadderRung::Shed => "shed",
            LadderRung::Coalesce => "coalesce",
            LadderRung::Reject => "reject",
        }
    }

    /// Escalation index (0 = normal … 3 = reject).
    #[must_use]
    pub fn index(self) -> u64 {
        match self {
            LadderRung::Normal => 0,
            LadderRung::Shed => 1,
            LadderRung::Coalesce => 2,
            LadderRung::Reject => 3,
        }
    }

    fn from_index(index: u64) -> Self {
        Self::ALL[usize::try_from(index.min(3)).expect("index fits")]
    }
}

/// One observed change of a shard's ladder rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderTransition {
    /// The shard that transitioned.
    pub shard: u32,
    /// The rung it left.
    pub from: LadderRung,
    /// The rung it entered.
    pub to: LadderRung,
    /// Nanoseconds since the tracer (≈ service) started.
    pub at_ns: u64,
    /// The request-weighted queue depth at the drain that transitioned.
    pub depth: u64,
}

/// What one [`FlightEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A sampled trace terminated (`a` = trace id, `b` = total ns).
    TraceDone,
    /// The ladder rung changed (`a` = new rung index, `b` = drain depth).
    Ladder,
    /// Admission refused requests (`a` = request count).
    Reject,
    /// Queued requests were shed on an expired deadline (`a` = count).
    ShedDeadline,
    /// Queued requests were shed at shutdown (`a` = count).
    ShedShutdown,
    /// An SLO window breached (`a` = window p99 µs, `b` = burn × 1000).
    SloBreach,
    /// Shutdown found entries the worker never drained (`a` = entries).
    OrphanRisk,
}

impl FlightEventKind {
    /// Stable lowercase name used in dumps.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FlightEventKind::TraceDone => "trace_done",
            FlightEventKind::Ladder => "ladder",
            FlightEventKind::Reject => "reject",
            FlightEventKind::ShedDeadline => "shed_deadline",
            FlightEventKind::ShedShutdown => "shed_shutdown",
            FlightEventKind::SloBreach => "slo_breach",
            FlightEventKind::OrphanRisk => "orphan_risk",
        }
    }
}

/// One fixed-size record in a shard's flight ring: what happened, when
/// (nanoseconds since the tracer started), and two kind-specific payload
/// words (see [`FlightEventKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// What happened.
    pub kind: FlightEventKind,
    /// The shard it happened on.
    pub shard: u32,
    /// Nanoseconds since the tracer started.
    pub at_ns: u64,
    /// First kind-specific payload word.
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

/// Per-shard observability state: the head sampler, the lock-free flight
/// ring, the tail-retention store, ladder-rung tracking, and the
/// completion-latency histogram the SLO watchdog windows over.
#[derive(Debug)]
pub(crate) struct ShardTracer {
    shard: u32,
    epoch: Instant,
    sampler: TraceSampler,
    recorder: FlightRecorder<FlightEvent>,
    store: Mutex<TraceStore>,
    transitions: Mutex<Vec<LadderTransition>>,
    transition_count: AtomicU64,
    /// Current ladder rung (worker-written, snapshot-read).
    rung: AtomicU64,
    /// Cumulative rejected count at the previous drain, for detecting the
    /// reject rung without threading counters through the worker.
    last_rejected: AtomicU64,
    /// End-to-end completion latency, microseconds, recorded for every
    /// completion regardless of sampling — the SLO watchdog's input.
    pub(crate) latency_us: AtomicHistogram,
}

impl ShardTracer {
    pub(crate) fn new(shard: u32, config: &ServiceConfig) -> Self {
        Self {
            shard,
            epoch: Instant::now(),
            sampler: TraceSampler::new(config.trace_sample_period),
            recorder: FlightRecorder::new(config.recorder_capacity),
            store: Mutex::new(TraceStore::new(config.trace_topk, config.trace_recent)),
            transitions: Mutex::new(Vec::new()),
            transition_count: AtomicU64::new(0),
            rung: AtomicU64::new(0),
            last_rejected: AtomicU64::new(0),
            latency_us: AtomicHistogram::new(),
        }
    }

    /// Nanoseconds since the tracer started.
    pub(crate) fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    pub(crate) fn set_period(&self, period: u64) {
        self.sampler.set_period(period);
    }

    pub(crate) fn period(&self) -> u64 {
        self.sampler.period()
    }

    /// The head-sampling decision: `Some(trace)` for 1-in-N admissions
    /// (with [`SpanStage::Admitted`] stamped), `None` — and zero work —
    /// for the rest.
    pub(crate) fn start_trace(&self) -> Option<Box<RequestTrace>> {
        if self.sampler.sample() {
            Some(Box::new(RequestTrace::new(
                self.sampler.next_id(),
                self.shard,
            )))
        } else {
            None
        }
    }

    /// Records one flight event (lock-free, overwrite-oldest).
    pub(crate) fn event(&self, kind: FlightEventKind, a: u64, b: u64) {
        self.recorder.record(FlightEvent {
            kind,
            shard: self.shard,
            at_ns: self.now_ns(),
            a,
            b,
        });
    }

    /// Admission refused `n` requests: always a flight event, plus a
    /// minimal `admitted → rejected` trace when the sampler picks it.
    pub(crate) fn note_reject(&self, n: u64) {
        self.event(FlightEventKind::Reject, n, 0);
        if self.sampler.sample() {
            let mut trace = RequestTrace::new(self.sampler.next_id(), self.shard);
            trace.record(SpanStage::Rejected);
            self.offer(trace);
        }
    }

    /// Worker drain boundary: derive the ladder rung from this drain's
    /// depth and the rejected-counter delta, and record a transition (and
    /// flight event) when it changed.
    pub(crate) fn note_drain(
        &self,
        depth: u64,
        rejected_total: u64,
        deep_telemetry: bool,
        coalesce: bool,
    ) {
        let rejected_now = rejected_total > self.last_rejected.swap(rejected_total, Relaxed);
        let to = if rejected_now {
            LadderRung::Reject
        } else if coalesce {
            LadderRung::Coalesce
        } else if deep_telemetry {
            LadderRung::Normal
        } else {
            LadderRung::Shed
        };
        let from = LadderRung::from_index(self.rung.swap(to.index(), Relaxed));
        if from == to {
            return;
        }
        self.event(FlightEventKind::Ladder, to.index(), depth);
        self.transition_count.fetch_add(1, Relaxed);
        let transition = LadderTransition {
            shard: self.shard,
            from,
            to,
            at_ns: self.now_ns(),
            depth,
        };
        if let Ok(mut transitions) = self.transitions.lock() {
            transitions.push(transition);
        }
    }

    /// The rung the shard currently sits on.
    pub(crate) fn current_rung(&self) -> LadderRung {
        LadderRung::from_index(self.rung.load(Relaxed))
    }

    /// Ladder transitions recorded so far (monotone).
    pub(crate) fn transition_count(&self) -> u64 {
        self.transition_count.load(Relaxed)
    }

    /// Drains the accumulated transition list.
    pub(crate) fn take_transitions(&self) -> Vec<LadderTransition> {
        self.transitions
            .lock()
            .map(|mut t| std::mem::take(&mut *t))
            .unwrap_or_default()
    }

    /// Finishes a sampled trace: a `trace_done` flight event plus the
    /// tail-retention decision. Only the sampled path ever reaches the
    /// store mutex.
    pub(crate) fn finish(&self, trace: RequestTrace) {
        self.event(FlightEventKind::TraceDone, trace.id, trace.total_ns());
        self.offer(trace);
    }

    fn offer(&self, trace: RequestTrace) {
        if let Ok(mut store) = self.store.lock() {
            store.offer(trace);
        }
    }

    /// Every trace the tail-retention store currently keeps.
    pub(crate) fn retained(&self) -> Vec<RequestTrace> {
        self.store.lock().map(|s| s.traces()).unwrap_or_default()
    }

    /// `(offered, dropped, retained)` from the tail-retention store.
    pub(crate) fn store_stats(&self) -> (u64, u64, usize) {
        self.store
            .lock()
            .map_or((0, 0, 0), |s| (s.offered(), s.dropped(), s.retained()))
    }

    /// Oldest-first snapshot of the flight ring.
    pub(crate) fn events(&self) -> Vec<(u64, FlightEvent)> {
        self.recorder.snapshot()
    }

    /// `(recorded, overwritten, capacity)` from the flight ring.
    pub(crate) fn recorder_stats(&self) -> (u64, u64, usize) {
        (
            self.recorder.recorded(),
            self.recorder.overwritten(),
            self.recorder.capacity(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer(period: u64) -> ShardTracer {
        let config = ServiceConfig {
            trace_sample_period: period,
            ..ServiceConfig::default()
        };
        ShardTracer::new(3, &config)
    }

    #[test]
    fn unsampled_requests_cost_nothing_and_allocate_nothing() {
        let t = tracer(0);
        assert_eq!(t.period(), 0);
        assert!(t.start_trace().is_none());
        t.set_period(4);
        assert_eq!(t.period(), 4);
        let sampled = (0..64).filter(|_| t.start_trace().is_some()).count();
        assert_eq!(sampled, 16);
    }

    #[test]
    fn rejects_always_hit_the_flight_ring() {
        let t = tracer(0);
        t.note_reject(5);
        t.note_reject(2);
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .all(|(_, e)| e.kind == FlightEventKind::Reject && e.shard == 3));
        assert_eq!(events[0].1.a, 5);
        assert_eq!(events[1].1.a, 2);
        // Sampling off: no trace was retained for the rejects.
        assert_eq!(t.store_stats(), (0, 0, 0));

        // Sampling at 1 retains a minimal admitted→rejected trace.
        t.set_period(1);
        t.note_reject(1);
        let retained = t.retained();
        assert_eq!(retained.len(), 1);
        retained[0]
            .validate()
            .expect("minimal reject trace validates");
    }

    #[test]
    fn ladder_transitions_are_edge_triggered() {
        let t = tracer(0);
        t.note_drain(10, 0, true, false); // normal → normal: no edge
        assert_eq!(t.transition_count(), 0);
        t.note_drain(600, 0, false, false); // → shed
        t.note_drain(650, 0, false, false); // shed → shed: no edge
        t.note_drain(900, 0, false, true); // → coalesce
        t.note_drain(1024, 7, false, true); // rejects seen → reject
        t.note_drain(100, 7, true, false); // recovered → normal
        assert_eq!(t.transition_count(), 4);
        let transitions = t.take_transitions();
        assert_eq!(transitions.len(), 4);
        assert_eq!(
            transitions.iter().map(|tr| tr.to).collect::<Vec<_>>(),
            vec![
                LadderRung::Shed,
                LadderRung::Coalesce,
                LadderRung::Reject,
                LadderRung::Normal
            ]
        );
        assert_eq!(transitions[2].from, LadderRung::Coalesce);
        assert_eq!(t.current_rung(), LadderRung::Normal);
        assert!(t.take_transitions().is_empty(), "take drains");
        // The edges are also flight events.
        let ladder_events = t
            .events()
            .iter()
            .filter(|(_, e)| e.kind == FlightEventKind::Ladder)
            .count();
        assert_eq!(ladder_events, 4);
    }

    #[test]
    fn finished_traces_land_in_store_and_ring() {
        let t = tracer(1);
        let mut trace = t.start_trace().expect("period 1 samples everything");
        trace.record(SpanStage::Enqueued);
        trace.record(SpanStage::Completed);
        t.finish(*trace);
        assert_eq!(t.retained().len(), 1);
        let (offered, _, retained) = t.store_stats();
        assert_eq!((offered, retained), (1, 1));
        assert!(t
            .events()
            .iter()
            .any(|(_, e)| e.kind == FlightEventKind::TraceDone));
        let (recorded, overwritten, capacity) = t.recorder_stats();
        assert_eq!(recorded, 1);
        assert_eq!(overwritten, 0);
        assert!(capacity >= 1);
    }
}
