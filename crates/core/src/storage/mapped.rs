//! File-backed array storage: an mmap'd, page-aligned region with a
//! checksummed superblock recording the array geometry.
//!
//! The workspace deliberately has no external dependencies, so on Linux
//! `x86_64`/`aarch64` the mapping is made with raw `mmap`/`msync`/`munmap`
//! syscalls via inline assembly; every other target (and Miri) falls back
//! to a buffered file region — same on-disk format, same API, the words
//! simply live in a heap buffer that [`MappedArray::flush`] writes back.
//!
//! File layout (little-endian):
//!
//! ```text
//! offset 0      magic "CARAMARR" (8 bytes)
//! offset 8      format version  (u32)
//! offset 12     rows            (u64)
//! offset 20     row_bits        (u32)
//! offset 24     stride_words    (u32)
//! offset 28     CRC-32 of bytes 0..28 (u32)
//! offset 32..4096   zero padding (superblock is one page)
//! offset 4096   data: rows × stride_words × 8 bytes of packed words
//! ```

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use super::{corrupt, crc32, dur_err, io_err, put_u32, put_u64, ByteReader, FORMAT_VERSION};
use crate::error::{DurabilityErrorKind, Result};

/// Size of the superblock page; the data region starts here, so the words
/// are page-aligned both in the file and in the mapping.
pub const SUPERBLOCK_BYTES: u64 = 4096;

const MAGIC: &[u8; 8] = b"CARAMARR";
const SUPERBLOCK_USED: usize = 32;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64"),
    not(miri)
))]
mod sys {
    //! Raw Linux memory-mapping syscalls. No libc in the workspace, so the
    //! three calls the backend needs are issued directly.

    const PROT_READ_WRITE: usize = 0x3;
    const MAP_SHARED: usize = 0x1;
    const MS_SYNC: usize = 0x4;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const MMAP: usize = 9;
        pub const MUNMAP: usize = 11;
        pub const MSYNC: usize = 26;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const MMAP: usize = 222;
        pub const MUNMAP: usize = 215;
        pub const MSYNC: usize = 227;
    }

    #[cfg(target_arch = "x86_64")]
    #[allow(clippy::many_single_char_names)]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    #[allow(clippy::many_single_char_names)]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack)
        );
        ret
    }

    fn check(ret: isize) -> Result<usize, i32> {
        if (-4095..0).contains(&ret) {
            #[allow(clippy::cast_possible_truncation)] // range-checked above
            Err(-(ret as i32))
        } else {
            #[allow(clippy::cast_sign_loss)] // non-negative after the check
            Ok(ret as usize)
        }
    }

    /// Maps `len` bytes of `fd` read/write, shared, at offset 0.
    pub unsafe fn mmap(len: usize, fd: i32) -> Result<*mut u8, i32> {
        #[allow(clippy::cast_sign_loss)] // the kernel reads it back as an fd
        let fd_arg = fd as usize;
        check(syscall6(
            nr::MMAP,
            0,
            len,
            PROT_READ_WRITE,
            MAP_SHARED,
            fd_arg,
            0,
        ))
        .map(|addr| addr as *mut u8)
    }

    /// Synchronously writes the mapped range back to the file.
    pub unsafe fn msync(ptr: *mut u8, len: usize) -> Result<(), i32> {
        check(syscall6(nr::MSYNC, ptr as usize, len, MS_SYNC, 0, 0, 0)).map(|_| ())
    }

    /// Unmaps the range.
    pub unsafe fn munmap(ptr: *mut u8, len: usize) -> Result<(), i32> {
        check(syscall6(nr::MUNMAP, ptr as usize, len, 0, 0, 0, 0)).map(|_| ())
    }
}

#[derive(Debug)]
enum MapStore {
    /// A live shared mapping of the whole file; words start at
    /// `SUPERBLOCK_BYTES` into the mapping.
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64"),
        not(miri)
    ))]
    Mmap { base: *mut u8, map_len: usize },
    /// Portable fallback: the words live in a heap buffer read from the
    /// file; `flush` writes them back. Kept compiled (not cfg'd out) on
    /// mmap targets too so the fallback cannot rot unchecked.
    #[allow(dead_code)]
    Buffered { file: File, words: Vec<u64> },
}

/// A file-backed word array with a checksummed superblock. Geometry is
/// fixed at creation; reopening with different geometry is a typed
/// [`DurabilityErrorKind::GeometryMismatch`] error.
#[derive(Debug)]
pub struct MappedArray {
    path: PathBuf,
    rows: u64,
    row_bits: u32,
    stride_words: u32,
    data_words: usize,
    store: MapStore,
}

// SAFETY: the mapping (or buffer) is uniquely owned by this struct for its
// whole lifetime — aliasing is governed by &/&mut borrows exactly as for a
// Vec, so moving or sharing the owner across threads is sound.
unsafe impl Send for MappedArray {}
unsafe impl Sync for MappedArray {}

fn encode_superblock(rows: u64, row_bits: u32, stride_words: u32) -> Vec<u8> {
    let mut sb = Vec::with_capacity(SUPERBLOCK_USED);
    sb.extend_from_slice(MAGIC);
    put_u32(&mut sb, FORMAT_VERSION);
    put_u64(&mut sb, rows);
    put_u32(&mut sb, row_bits);
    put_u32(&mut sb, stride_words);
    let crc = crc32(&sb);
    put_u32(&mut sb, crc);
    sb
}

fn check_superblock(
    path: &Path,
    sb: &[u8],
    rows: u64,
    row_bits: u32,
    stride_words: u32,
) -> Result<()> {
    let name = path.display();
    if sb.len() < SUPERBLOCK_USED {
        return Err(corrupt(format!("{name}: superblock truncated")));
    }
    if &sb[..8] != MAGIC {
        return Err(corrupt(format!("{name}: bad array magic")));
    }
    let stored_crc = u32::from_le_bytes(sb[28..32].try_into().unwrap());
    if crc32(&sb[..28]) != stored_crc {
        return Err(corrupt(format!("{name}: superblock checksum mismatch")));
    }
    let mut r = ByteReader::new(&sb[8..28], "array superblock");
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(dur_err(
            DurabilityErrorKind::FormatVersion,
            format!("{name}: array format version {version}, this build reads {FORMAT_VERSION}"),
        ));
    }
    let (f_rows, f_row_bits, f_stride) = (r.u64()?, r.u32()?, r.u32()?);
    if (f_rows, f_row_bits, f_stride) != (rows, row_bits, stride_words) {
        return Err(dur_err(
            DurabilityErrorKind::GeometryMismatch,
            format!(
                "{name}: file holds {f_rows} rows x {f_row_bits} bits (stride {f_stride}), \
                 expected {rows} x {row_bits} (stride {stride_words})"
            ),
        ));
    }
    Ok(())
}

impl MappedArray {
    /// Opens (or creates) the backing file for an array of `rows` rows of
    /// `row_bits` bits laid out at `stride_words` words per row, holding
    /// `data_words` words in total.
    ///
    /// A fresh file is sized and given a superblock; an existing file's
    /// superblock and length are validated against the requested geometry.
    /// Existing words are preserved — this is what makes a mapped slice
    /// survive a restart.
    ///
    /// # Errors
    ///
    /// [`DurabilityErrorKind::Io`] on file errors,
    /// [`DurabilityErrorKind::Corrupt`] on a damaged superblock,
    /// [`DurabilityErrorKind::FormatVersion`] /
    /// [`DurabilityErrorKind::GeometryMismatch`] when the file disagrees
    /// with the requested shape.
    pub fn open(
        path: &Path,
        rows: u64,
        row_bits: u32,
        stride_words: u32,
        data_words: usize,
    ) -> Result<Self> {
        let data_bytes = (data_words as u64) * 8;
        let expect_len = SUPERBLOCK_BYTES + data_bytes;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err("open", path, &e))?;
        let len = file.metadata().map_err(|e| io_err("stat", path, &e))?.len();
        if len == 0 {
            // Fresh file: size it, write the superblock, and make both
            // durable before handing out the mapping.
            file.set_len(expect_len)
                .map_err(|e| io_err("size", path, &e))?;
            file.write_all(&encode_superblock(rows, row_bits, stride_words))
                .map_err(|e| io_err("write superblock to", path, &e))?;
            file.sync_all().map_err(|e| io_err("sync", path, &e))?;
        } else {
            if len != expect_len {
                return Err(dur_err(
                    DurabilityErrorKind::GeometryMismatch,
                    format!(
                        "{}: file is {len} bytes, geometry needs {expect_len}",
                        path.display()
                    ),
                ));
            }
            let mut sb = [0u8; SUPERBLOCK_USED];
            file.seek(SeekFrom::Start(0))
                .map_err(|e| io_err("seek", path, &e))?;
            file.read_exact(&mut sb)
                .map_err(|e| io_err("read superblock from", path, &e))?;
            check_superblock(path, &sb, rows, row_bits, stride_words)?;
        }
        let store = Self::map_store(path, file, expect_len, data_words)?;
        Ok(Self {
            path: path.to_path_buf(),
            rows,
            row_bits,
            stride_words,
            data_words,
            store,
        })
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64"),
        not(miri)
    ))]
    fn map_store(path: &Path, file: File, expect_len: u64, _data_words: usize) -> Result<MapStore> {
        use std::os::fd::AsRawFd;
        let map_len = usize::try_from(expect_len).map_err(|_| {
            dur_err(
                DurabilityErrorKind::Unsupported,
                format!("{}: file larger than the address space", path.display()),
            )
        })?;
        // SAFETY: mapping a file we own read/write, shared, full length;
        // the fd stays open in `file` for the mapping's lifetime (and the
        // kernel keeps mappings alive past close regardless).
        let base = unsafe { sys::mmap(map_len, file.as_raw_fd()) }.map_err(|errno| {
            dur_err(
                DurabilityErrorKind::Io,
                format!("mmap {} failed (errno {errno})", path.display()),
            )
        })?;
        // POSIX keeps a mapping alive after its fd closes, so the handle
        // can be dropped here; msync/munmap operate on the address range.
        drop(file);
        Ok(MapStore::Mmap { base, map_len })
    }

    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64"),
        not(miri)
    )))]
    fn map_store(
        path: &Path,
        mut file: File,
        _expect_len: u64,
        data_words: usize,
    ) -> Result<MapStore> {
        let mut bytes = vec![0u8; data_words * 8];
        file.seek(SeekFrom::Start(SUPERBLOCK_BYTES))
            .map_err(|e| io_err("seek", path, &e))?;
        file.read_exact(&mut bytes)
            .map_err(|e| io_err("read data from", path, &e))?;
        let words = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(MapStore::Buffered { file, words })
    }

    /// The backing file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Row count the file was opened with.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Row width in bits.
    #[must_use]
    pub fn row_bits(&self) -> u32 {
        self.row_bits
    }

    /// Words per row in the file layout.
    #[must_use]
    pub fn stride_words(&self) -> u32 {
        self.stride_words
    }

    /// The packed words, read-only.
    #[must_use]
    // The data region starts one page in (`SUPERBLOCK_BYTES` = 4096, well
    // within usize), so the cast to `*const u64` stays aligned.
    #[allow(clippy::cast_ptr_alignment, clippy::cast_possible_truncation)]
    pub fn words(&self) -> &[u64] {
        match &self.store {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64"),
                not(miri)
            ))]
            MapStore::Mmap { base, .. } => {
                // SAFETY: the mapping covers SUPERBLOCK_BYTES + data_words*8
                // bytes, the data region is page-aligned (so u64-aligned),
                // and &self guarantees no live &mut.
                unsafe {
                    core::slice::from_raw_parts(
                        base.add(SUPERBLOCK_BYTES as usize).cast::<u64>(),
                        self.data_words,
                    )
                }
            }
            MapStore::Buffered { words, .. } => words,
        }
    }

    /// The packed words, writable. Changes reach the file on
    /// [`Self::flush`] (or, for the mmap store, whenever the kernel
    /// writes back — `flush` is what makes it durable).
    #[must_use]
    // Same alignment/size argument as `words`.
    #[allow(clippy::cast_ptr_alignment, clippy::cast_possible_truncation)]
    pub fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.store {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64"),
                not(miri)
            ))]
            MapStore::Mmap { base, .. } => {
                // SAFETY: as in `words`, and &mut self guarantees exclusivity.
                unsafe {
                    core::slice::from_raw_parts_mut(
                        base.add(SUPERBLOCK_BYTES as usize).cast::<u64>(),
                        self.data_words,
                    )
                }
            }
            MapStore::Buffered { words, .. } => words,
        }
    }

    /// Writes the words back to the file and waits for the device: `msync`
    /// on the mapped store, a rewrite plus `fdatasync` on the buffered one.
    /// After `flush` returns, a crash loses nothing from this array.
    ///
    /// # Errors
    ///
    /// [`DurabilityErrorKind::Io`] when the write-back or sync fails.
    pub fn flush(&mut self) -> Result<()> {
        match &mut self.store {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64"),
                not(miri)
            ))]
            MapStore::Mmap { base, map_len } => {
                // SAFETY: syncing the exact range we mapped.
                unsafe { sys::msync(*base, *map_len) }.map_err(|errno| {
                    dur_err(
                        DurabilityErrorKind::Io,
                        format!("msync {} failed (errno {errno})", self.path.display()),
                    )
                })
            }
            MapStore::Buffered { file, words } => {
                let mut bytes = Vec::with_capacity(words.len() * 8);
                for w in words.iter() {
                    bytes.extend_from_slice(&w.to_le_bytes());
                }
                file.seek(SeekFrom::Start(SUPERBLOCK_BYTES))
                    .map_err(|e| io_err("seek", &self.path, &e))?;
                file.write_all(&bytes)
                    .map_err(|e| io_err("write data to", &self.path, &e))?;
                file.sync_data().map_err(|e| io_err("sync", &self.path, &e))
            }
        }
    }
}

impl Drop for MappedArray {
    fn drop(&mut self) {
        match &mut self.store {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64"),
                not(miri)
            ))]
            MapStore::Mmap { base, map_len } => {
                // SAFETY: unmapping the exact range we mapped; the struct
                // is being dropped so no views outlive this.
                let _ = unsafe { sys::munmap(*base, *map_len) };
            }
            MapStore::Buffered { .. } => {
                // Best-effort write-back; explicit flush() is the durable
                // contract, so errors here are deliberately swallowed.
                let _ = self.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_file(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "ca_ram_mapped_{tag}_{}_{n}.arr",
            std::process::id()
        ))
    }

    #[test]
    fn roundtrip_across_reopen() {
        let path = temp_file("roundtrip");
        {
            let mut arr = MappedArray::open(&path, 8, 512, 8, 64).expect("create");
            assert!(arr.words().iter().all(|&w| w == 0));
            arr.words_mut()[0] = 0xDEAD_BEEF_0123_4567;
            arr.words_mut()[63] = 42;
            arr.flush().expect("flush");
        }
        {
            let arr = MappedArray::open(&path, 8, 512, 8, 64).expect("reopen");
            assert_eq!(arr.words()[0], 0xDEAD_BEEF_0123_4567);
            assert_eq!(arr.words()[63], 42);
            assert_eq!(arr.words()[1], 0);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn geometry_mismatch_is_typed() {
        let path = temp_file("geom");
        MappedArray::open(&path, 8, 512, 8, 64).expect("create");
        let err = MappedArray::open(&path, 16, 512, 8, 128).expect_err("mismatch");
        match err {
            crate::error::CaRamError::Durability { kind, .. } => {
                assert_eq!(kind, DurabilityErrorKind::GeometryMismatch);
            }
            other => panic!("expected durability error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_superblock_is_typed() {
        let path = temp_file("corrupt");
        MappedArray::open(&path, 4, 256, 4, 16).expect("create");
        // Flip a byte inside the checksummed region.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[10] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");
        let err = MappedArray::open(&path, 4, 256, 4, 16).expect_err("corrupt");
        match err {
            crate::error::CaRamError::Durability { kind, .. } => {
                assert_eq!(kind, DurabilityErrorKind::Corrupt);
            }
            other => panic!("expected durability error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
