//! Property-based integration tests: the CA-RAM table must behave as an
//! associative map under arbitrary operation sequences, and the ternary
//! match semantics must satisfy their algebraic laws.

use std::collections::HashMap;

use ca_ram::core::index::XorFold;
use ca_ram::core::key::{SearchKey, TernaryKey};
use ca_ram::core::layout::{Record, RecordLayout};
use ca_ram::core::probe::ProbePolicy;
use ca_ram::core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};
use proptest::prelude::*;

fn small_table(probe: ProbePolicy, overflow: OverflowPolicy) -> CaRamTable {
    let layout = RecordLayout::new(24, false, 16);
    let config = TableConfig {
        rows_log2: 5,
        row_bits: 4 * layout.slot_bits(),
        layout,
        arrangement: Arrangement::Horizontal(2),
        probe,
        overflow,
    };
    CaRamTable::new(config, Box::new(XorFold::new(5))).expect("valid config")
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, u16),
    Delete(u32),
    Search(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A narrow key space so operations actually interact.
    let key = 0u32..400;
    prop_oneof![
        (key.clone(), any::<u16>()).prop_map(|(k, v)| Op::Insert(k & 0xFF_FFFF, v)),
        key.clone().prop_map(|k| Op::Delete(k & 0xFF_FFFF)),
        key.prop_map(|k| Op::Search(k & 0xFF_FFFF)),
    ]
}

fn run_against_model(table: &mut CaRamTable, ops: &[Op]) {
    let mut model: HashMap<u32, u16> = HashMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                if model.contains_key(&k) {
                    continue; // the model disallows duplicate keys
                }
                let record = Record::new(TernaryKey::binary(u128::from(k), 24), u64::from(v));
                match table.insert(record) {
                    Ok(_) => {
                        model.insert(k, v);
                    }
                    Err(ca_ram::core::error::CaRamError::TableFull { .. }) => {}
                    Err(e) => panic!("unexpected insert error: {e}"),
                }
            }
            Op::Delete(k) => {
                let removed = table.delete(&TernaryKey::binary(u128::from(k), 24));
                assert_eq!(removed > 0, model.remove(&k).is_some(), "delete({k})");
            }
            Op::Search(k) => {
                let got = table
                    .search(&SearchKey::new(u128::from(k), 24))
                    .hit
                    .map(|h| u16::try_from(h.record.data).expect("16-bit data"));
                assert_eq!(got, model.get(&k).copied(), "search({k})");
            }
        }
    }
    // Final sweep: every model entry is present, with the right data.
    for (&k, &v) in &model {
        let got = table.search(&SearchKey::new(u128::from(k), 24));
        assert_eq!(
            got.hit.map(|h| h.record.data),
            Some(u64::from(v)),
            "final sweep key {k}"
        );
    }
    assert_eq!(
        table.record_count() as usize + table.overflow_count(),
        model.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn table_behaves_as_a_map_linear_probing(ops in prop::collection::vec(op_strategy(), 1..250)) {
        let mut table = small_table(
            ProbePolicy::Linear,
            OverflowPolicy::Probe { max_steps: 32 },
        );
        run_against_model(&mut table, &ops);
    }

    #[test]
    fn table_behaves_as_a_map_double_hashing(ops in prop::collection::vec(op_strategy(), 1..250)) {
        let mut table = small_table(
            ProbePolicy::SecondHash,
            OverflowPolicy::Probe { max_steps: 32 },
        );
        run_against_model(&mut table, &ops);
    }

    #[test]
    fn table_behaves_as_a_map_with_overflow_area(ops in prop::collection::vec(op_strategy(), 1..250)) {
        let mut table = small_table(
            ProbePolicy::Linear,
            OverflowPolicy::ParallelArea { capacity: 64 },
        );
        run_against_model(&mut table, &ops);
    }

    #[test]
    fn ternary_match_laws(value in any::<u64>(), mask in any::<u64>(), probe in any::<u64>()) {
        let bits = 64u32;
        let stored = TernaryKey::ternary(u128::from(value), u128::from(mask), bits);
        // Law 1: a stored key always matches its own search-key image.
        prop_assert!(stored.matches(&stored.to_search_key()));
        // Law 2: any probe agreeing on the care bits matches.
        let care_probe = (u128::from(value) & !u128::from(mask))
            | (u128::from(probe) & u128::from(mask));
        prop_assert!(stored.matches(&SearchKey::new(care_probe, bits)));
        // Law 3: flipping one care bit breaks the match.
        let care = !u128::from(mask) & ((1u128 << 64) - 1);
        if care != 0 {
            let bit = care.trailing_zeros();
            let flipped = care_probe ^ (1u128 << bit);
            prop_assert!(!stored.matches(&SearchKey::new(flipped, bits)));
        }
        // Law 4: widening the stored mask never un-matches a matching probe.
        let wider = TernaryKey::ternary(
            u128::from(value),
            u128::from(mask) | (1u128 << (probe % 64) as u32),
            bits,
        );
        prop_assert!(wider.matches(&SearchKey::new(care_probe, bits)));
    }

    #[test]
    fn search_accesses_bounded_by_reach(keys in prop::collection::vec(0u32..200, 1..120)) {
        let mut table = small_table(
            ProbePolicy::Linear,
            OverflowPolicy::Probe { max_steps: 32 },
        );
        let mut inserted = Vec::new();
        for (i, k) in keys.iter().enumerate() {
            let key = u128::from(*k) | (u128::from(i as u32) << 9); // unique keys
            let record = Record::new(TernaryKey::binary(key & 0xFF_FFFF, 24), 0);
            if table.insert(record).is_ok() {
                inserted.push(key & 0xFF_FFFF);
            }
        }
        for key in inserted {
            let got = table.search(&SearchKey::new(key, 24));
            prop_assert!(got.hit.is_some());
            // A lookup may not scan more buckets than the probe limit + 1.
            prop_assert!(got.memory_accesses <= 33);
        }
    }
}
