//! Integration: one CA-RAM memory subsystem hosting both of the paper's
//! applications simultaneously (Sec. 3.2's multi-database configuration),
//! exercised through the memory-mapped ports, with RAM mode used alongside.

use ca_ram::core::index::{DjbHash, RangeSelect};
use ca_ram::core::key::SearchKey;
use ca_ram::core::layout::{Record, RecordLayout};
use ca_ram::core::probe::ProbePolicy;
use ca_ram::core::subsystem::CaRamSubsystem;
use ca_ram::core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};
use ca_ram::workloads::bgp::{generate as gen_bgp, BgpConfig};
use ca_ram::workloads::trigram::{generate as gen_tri, pack_text_key, TrigramConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn ip_table() -> CaRamTable {
    let layout = RecordLayout::new(32, true, 8);
    let config = TableConfig {
        rows_log2: 8,
        row_bits: 32 * layout.slot_bits(),
        layout,
        arrangement: Arrangement::Horizontal(2),
        probe: ProbePolicy::Linear,
        overflow: OverflowPolicy::Probe { max_steps: 256 },
    };
    CaRamTable::new(config, Box::new(RangeSelect::ip_first16_last(8))).expect("valid")
}

fn trigram_table() -> CaRamTable {
    let layout = RecordLayout::new(128, false, 32);
    let config = TableConfig {
        rows_log2: 7,
        row_bits: 48 * layout.slot_bits(),
        layout,
        arrangement: Arrangement::Vertical(2),
        probe: ProbePolicy::Linear,
        overflow: OverflowPolicy::ParallelArea { capacity: 512 },
    };
    CaRamTable::new(config, Box::new(DjbHash::new(32, 16))).expect("valid")
}

#[test]
fn two_applications_share_one_subsystem() {
    let mut sub = CaRamSubsystem::new();
    let routing = sub.add_database("routing", ip_table());
    let lm = sub.add_database("language-model", trigram_table());
    assert_eq!(sub.database_by_name("routing"), Some(routing));
    assert_eq!(sub.database_by_name("language-model"), Some(lm));

    // Populate both databases.
    let routes = gen_bgp(&BgpConfig::scaled(4_000));
    for r in &routes {
        sub.table_mut(routing)
            .insert(Record::new(r.to_ternary_key(), u64::from(r.len())))
            .expect("sized for the routes");
    }
    let trigrams = gen_tri(&TrigramConfig {
        entries: 8_000,
        vocabulary: 3_000,
        ..TrigramConfig::sphinx_like()
    });
    for (i, s) in trigrams.iter().enumerate() {
        sub.table_mut(lm)
            .insert(Record::new(
                ca_ram::core::key::TernaryKey::binary(pack_text_key(s), 128),
                i as u64,
            ))
            .expect("sized for the trigrams");
    }

    // Interleave traffic for both applications through the MMIO ports.
    let mut rng = SmallRng::seed_from_u64(77);
    let mut expected: Vec<(ca_ram::core::subsystem::DatabaseId, Option<u64>)> = Vec::new();
    for _ in 0..500 {
        if rng.gen_bool(0.5) {
            let r = routes[rng.gen_range(0..routes.len())];
            let addr = r.random_member(&mut rng);
            sub.store_request(
                sub.request_port(routing),
                SearchKey::new(u128::from(addr), 32),
            )
            .expect("mapped port");
            // The LPM answer must be at least as specific as r.
            expected.push((routing, Some(u64::from(r.len()))));
        } else {
            let i = rng.gen_range(0..trigrams.len());
            sub.store_request(
                sub.request_port(lm),
                SearchKey::new(pack_text_key(&trigrams[i]), 128),
            )
            .expect("mapped port");
            expected.push((lm, Some(i as u64)));
        }
    }
    let completed = sub.pump();
    assert_eq!(completed, 500);

    // Results come back per database, in FIFO order.
    let mut counts = [0u32; 2];
    for (db, expect) in expected {
        let result = sub
            .load_result(sub.result_port(db))
            .expect("mapped port")
            .expect("pumped");
        let hit = result
            .outcome
            .hit
            .expect("all requests were for stored records");
        if db.index() == 0 {
            assert!(hit.record.data >= expect.unwrap_or(0) || hit.record.key.care_count() > 0);
        } else {
            assert_eq!(Some(hit.record.data), expect);
        }
        counts[db.index()] += 1;
    }
    assert!(counts[0] > 100 && counts[1] > 100);
    // Queues drained.
    assert_eq!(sub.load_result(sub.result_port(routing)).unwrap(), None);
    assert_eq!(sub.load_result(sub.result_port(lm)).unwrap(), None);
}

#[test]
fn ram_mode_and_cam_mode_coexist() {
    let mut sub = CaRamSubsystem::new();
    let db = sub.add_database("hybrid", ip_table());
    // CAM-mode insert...
    let route: ca_ram::workloads::prefix::Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
    sub.table_mut(db)
        .insert(Record::new(route.to_ternary_key(), 8))
        .unwrap();
    // ...RAM-mode scribbling in a distant row must not disturb it (distinct
    // bucket), and the scribble is readable back.
    let words = sub.ram_words(db);
    sub.ram_write(db, words - 1, 0xFEED_FACE).unwrap();
    assert_eq!(sub.ram_read(db, words - 1).unwrap(), 0xFEED_FACE);
    let got = sub.search(db, &SearchKey::new(0x0A01_0203, 32));
    assert_eq!(got.hit.map(|h| h.record.data), Some(8));
}

#[test]
fn overflow_area_database_keeps_unit_amal_under_pressure() {
    // The trigram table uses a parallel overflow area; hammer one bucket
    // far past its capacity and verify AMAL stays exactly 1.
    let mut sub = CaRamSubsystem::new();
    let db = sub.add_database("lm", trigram_table());
    let slots = sub.table(db).slots_per_bucket();
    // Keys engineered to collide: DjbHash of packed single bytes varies, so
    // brute-force a set of colliding keys.
    let table = sub.table(db);
    let buckets = table.logical_buckets();
    let mut colliders = Vec::new();
    let g = DjbHash::new(32, 16);
    use ca_ram::core::index::IndexGenerator;
    let mut k: u128 = 1;
    while colliders.len() < (slots + 40) as usize {
        if g.index(k) % buckets == 3 {
            colliders.push(k);
        }
        k += 1;
    }
    for (i, &key) in colliders.iter().enumerate() {
        sub.table_mut(db)
            .insert(Record::new(
                ca_ram::core::key::TernaryKey::binary(key, 128),
                i as u64,
            ))
            .expect("overflow area absorbs the spill");
    }
    assert!(sub.table(db).overflow_count() >= 40);
    for (i, &key) in colliders.iter().enumerate() {
        let got = sub.search(db, &SearchKey::new(key, 128));
        assert_eq!(got.memory_accesses, 1, "parallel overflow area is free");
        assert_eq!(got.hit.map(|h| h.record.data), Some(i as u64));
    }
}
