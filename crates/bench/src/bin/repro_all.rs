//! Runs the entire reproduction suite in sequence: Tables 1–3, Figures
//! 6–8, the bandwidth analysis, and the software baseline — each as a
//! child process so their CLI flags keep working.
//!
//! Usage: `repro_all [--entries N] [--prefixes N]`
//! (`--entries` scales the trigram experiments; the default is the paper's
//! full 5,385,231.)

use std::process::Command;

fn run(bin: &str, args: &[String]) {
    println!("\n==================== {bin} ====================\n");
    let exe = std::env::current_exe().expect("current executable path");
    let dir = exe.parent().expect("executable directory");
    let status = Command::new(dir.join(bin))
        .args(args)
        .status()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(status.success(), "{bin} failed with {status}");
}

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let tri_args: Vec<String> = passthrough
        .windows(2)
        .filter(|w| w[0] == "--entries" || w[0] == "--seed")
        .flat_map(|w| w.to_vec())
        .collect();
    let ip_args: Vec<String> = passthrough
        .windows(2)
        .filter(|w| w[0] == "--prefixes" || w[0] == "--seed")
        .flat_map(|w| w.to_vec())
        .collect();

    run("table1", &[]);
    run("table2", &ip_args);
    run("table3", &tri_args);
    run("fig6", &[]);
    run("fig7", &tri_args);
    run("fig8", &[]);
    run("bandwidth", &[]);
    run("software_baseline", &[]);
    run("ablation", &ip_args);
    run("updates", &[]);
    run("explore", &ip_args);
    run("perf_smoke", &ip_args);
    println!("\nAll reproduction targets completed.");
}
