//! Replays every checked-in divergence fixture against its fleet.
//!
//! Each `tests/fixtures/*.ops` file is a minimized op stream that once
//! made an engine disagree with the [`ReferenceModel`] (captured by
//! `fuzz_engines` before the corresponding bug was fixed, comments in
//! each file tell the story). The stream is replayed both against the
//! engine named in its header and against every other engine fielded for
//! the same scenario, so a fix regressing on a *different* design point
//! is caught too.
//!
//! [`ReferenceModel`]: ca_ram_core::oracle::ReferenceModel

use ca_ram_bench::fleet::fleet_for;
use ca_ram_core::oracle::{parse_stream, replay, standard_scenarios, Op, Scenario};

/// Extracts a `# key: value` header field from fixture text.
fn header_field<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let prefix = format!("# {key}:");
    text.lines()
        .find_map(|l| l.strip_prefix(prefix.as_str()).map(str::trim))
}

fn scenario_by_name(name: &str) -> Scenario {
    standard_scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("fixture names unknown scenario {name:?}"))
}

/// Replays `text` against the named engine and the whole fleet of its
/// scenario; panics on any divergence.
fn check_fixture(file: &str, text: &str) {
    let engine = header_field(text, "engine").expect("fixture must name its engine");
    let scenario =
        scenario_by_name(header_field(text, "scenario").expect("fixture must name its scenario"));
    let ops: Vec<Op> = parse_stream(text).expect("fixture must parse");
    assert!(!ops.is_empty(), "{file}: empty op stream");
    let fleet = fleet_for(&scenario, &[]);
    assert!(
        fleet.iter().any(|c| c.name == engine),
        "{file}: engine {engine:?} is not fielded for scenario {:?}",
        scenario.name
    );
    for case in &fleet {
        if let Some(d) = replay(case, scenario.key_bits, &ops) {
            panic!(
                "{file}: {} diverged at op {}: {}",
                case.name, d.op_index, d.kind
            );
        }
    }
}

macro_rules! fixture_test {
    ($name:ident, $file:literal) => {
        #[test]
        fn $name() {
            check_fixture($file, include_str!(concat!("fixtures/", $file)));
        }
    };
}

fixture_test!(
    delete_duplicate_copies_16b,
    "delete_duplicate_copies_16b.ops"
);
fixture_test!(
    delete_duplicate_copies_48b,
    "delete_duplicate_copies_48b.ops"
);
fixture_test!(
    clear_slot_wide_ternary_64b,
    "clear_slot_wide_ternary_64b.ops"
);
fixture_test!(
    second_hash_masked_probe_32b,
    "second_hash_masked_probe_32b.ops"
);
fixture_test!(victim_partial_insert_32b, "victim_partial_insert_32b.ops");
fixture_test!(
    lpm_backfill_best_of_bucket_32b,
    "lpm_backfill_best_of_bucket_32b.ops"
);
fixture_test!(
    range_expansion_one_value_128b,
    "range_expansion_one_value_128b.ops"
);
