//! The request/reply vocabulary of the serving layer.
//!
//! Completion hand-off is lock-free: a worker fills an atomic `Slot`
//! (release store of a state word) and the waiter either observes it in a
//! short spin or parks; the filler issues at most one unpark per waiter.
//! Batch submissions share one `BatchSlot` across every shard sub-batch —
//! workers write disjoint reply positions and the last one to finish
//! (atomic countdown) publishes the whole batch.

use std::cell::UnsafeCell;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::Thread;
use std::time::{Duration, Instant};

use ca_ram_core::engine::EngineOutcome;
use ca_ram_core::error::CaRamError;
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::Record;
use ca_ram_core::telemetry::RequestTrace;

/// The lifecycle-trace context a queued request carries: `None` for the
/// (common) unsampled request — no allocation, no clock reads beyond the
/// ones the service already takes — or a boxed [`RequestTrace`] the
/// worker stamps at each pipeline stage. Boxed so an unsampled entry
/// costs one machine word in the ring.
pub(crate) type TraceCtx = Option<Box<RequestTrace>>;

/// One operation submitted to a [`SearchService`](crate::SearchService).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceOp {
    /// Look up one key.
    Search(SearchKey),
    /// Store a record (append placement).
    Insert(Record),
    /// Store a record maintaining the backend's priority order.
    InsertSorted(Record),
    /// Remove every stored record whose key equals the pattern.
    Delete(TernaryKey),
}

impl ServiceOp {
    /// The key value the router hashes to pick a shard. Ternary don't-care
    /// bits are zeroed by the key constructors, so a record and a search for
    /// its exact stored pattern route identically; see the crate docs for
    /// the multi-shard ternary caveat.
    #[must_use]
    pub fn route_value(&self) -> u128 {
        match self {
            ServiceOp::Search(k) => k.value(),
            ServiceOp::Insert(r) | ServiceOp::InsertSorted(r) => r.key.value(),
            ServiceOp::Delete(k) => k.value(),
        }
    }

    /// True for operations that need exclusive engine access.
    #[must_use]
    pub fn is_write(&self) -> bool {
        !matches!(self, ServiceOp::Search(_))
    }
}

/// Why a request was completed without touching an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The deadline passed while the request was queued.
    DeadlineExpired,
    /// The service shut down with the request still queued.
    Shutdown,
}

/// The outcome of one request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceReply {
    /// A search completed (hit or miss).
    Search(EngineOutcome),
    /// An insert completed with the engine's verdict.
    Insert(Result<(), CaRamError>),
    /// A delete completed, removing this many stored copies.
    Delete(u32),
    /// The request was shed; no engine was consulted and no partial result
    /// exists.
    Shed(ShedReason),
}

/// A finished request: the reply plus its measured service timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// What happened.
    pub reply: ServiceReply,
    /// Time spent queued (submission → worker pickup).
    pub queue_wait: Duration,
    /// Full request latency (submission → completion).
    pub total: Duration,
    /// True if this search shared an engine probe with duplicate in-flight
    /// keys (degradation-ladder rung 2).
    pub coalesced: bool,
}

/// A finished key batch: one reply per submitted key, in input order.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchCompletion {
    /// Per-key replies ([`ServiceReply::Search`] or [`ServiceReply::Shed`]),
    /// index-aligned with the submitted keys.
    pub replies: Vec<ServiceReply>,
    /// Longest queue wait over the per-shard sub-batches.
    pub queue_wait: Duration,
    /// Full batch latency (submission → last sub-batch completion).
    pub total: Duration,
}

impl BatchCompletion {
    /// Search outcomes in input order; `None` where the key was shed.
    #[must_use]
    pub fn outcomes(&self) -> Vec<Option<EngineOutcome>> {
        self.replies
            .iter()
            .map(|r| match r {
                ServiceReply::Search(outcome) => Some(*outcome),
                _ => None,
            })
            .collect()
    }

    /// Number of keys shed (deadline or shutdown).
    #[must_use]
    pub fn shed(&self) -> usize {
        self.replies
            .iter()
            .filter(|r| matches!(r, ServiceReply::Shed(_)))
            .count()
    }
}

/// Why a submission was refused at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The target shard's bounded queue is full (load shedding at the door).
    QueueFull {
        /// The shard whose queue was full.
        shard: usize,
        /// The configured queue capacity.
        depth: usize,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { shard, depth } => {
                write!(f, "shard {shard} queue full ({depth} requests)")
            }
            AdmissionError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl Error for AdmissionError {}

/// Slot state machine: EMPTY →(waiter) WAITING →(filler) FILLED →(taker)
/// TAKEN, or EMPTY →(filler) FILLED directly when nobody waits yet.
const EMPTY: u32 = 0;
const WAITING: u32 = 1;
const FILLED: u32 = 2;
const TAKEN: u32 = 3;

/// Iterations a waiter spins before arming the park protocol. Kept small:
/// on a saturated box the worker needs the CPU more than the waiter does.
const WAIT_SPINS: u32 = 64;

/// The lock-free slot a worker fills and a waiter observes.
///
/// Exactly one filler (the shard worker or the shedding path) and one
/// taker (the ticket holder) touch each slot, which is what makes the
/// single `UnsafeCell` hand-off sound.
#[derive(Debug)]
pub(crate) struct Slot {
    state: AtomicU32,
    value: UnsafeCell<Option<Completion>>,
    waiter: UnsafeCell<Option<Thread>>,
}

// SAFETY: `value` is written by the unique filler before the release swap
// to FILLED and read by the unique taker after an acquire load of FILLED;
// `waiter` is written by the unique waiter before its release CAS to
// WAITING and read by the filler only after observing WAITING.
unsafe impl Send for Slot {}
unsafe impl Sync for Slot {}

impl Slot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            state: AtomicU32::new(EMPTY),
            value: UnsafeCell::new(None),
            waiter: UnsafeCell::new(None),
        })
    }

    /// Publishes the completion and wakes the waiter if one is parked.
    pub(crate) fn fill(&self, completion: Completion) {
        // SAFETY: unique filler; the state machine still reads EMPTY or
        // WAITING, so no taker looks at `value` yet.
        unsafe { *self.value.get() = Some(completion) };
        match self.state.swap(FILLED, Ordering::AcqRel) {
            EMPTY => {}
            WAITING => {
                // SAFETY: the waiter stored its handle before the CAS that
                // made us observe WAITING (release/acquire pairing above).
                let thread = unsafe { (*self.waiter.get()).take() };
                if let Some(thread) = thread {
                    thread.unpark();
                }
            }
            state => unreachable!("request completed twice (slot state {state})"),
        }
    }

    /// Blocks until filled, then takes the completion.
    ///
    /// # Panics
    ///
    /// Panics (with a clear message) if the completion was already claimed
    /// by [`Slot::try_take`] — waiting on an empty slot would otherwise
    /// block forever, since the filler is done.
    fn wait_take(&self) -> Completion {
        for _ in 0..WAIT_SPINS {
            match self.state.load(Ordering::Acquire) {
                FILLED => return self.take(),
                TAKEN => Self::already_taken(),
                _ => std::hint::spin_loop(),
            }
        }
        // SAFETY: unique waiter; the filler reads this only after our CAS
        // below publishes WAITING.
        unsafe { *self.waiter.get() = Some(std::thread::current()) };
        match self
            .state
            .compare_exchange(EMPTY, WAITING, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => {
                while self.state.load(Ordering::Acquire) != FILLED {
                    std::thread::park();
                }
            }
            Err(FILLED) => {}
            Err(TAKEN) => Self::already_taken(),
            Err(state) => unreachable!("two waiters on one slot (state {state})"),
        }
        self.take()
    }

    #[cold]
    fn already_taken() -> ! {
        panic!("completion already taken: Ticket::try_take consumed it before this wait")
    }

    fn take(&self) -> Completion {
        self.state.store(TAKEN, Ordering::Relaxed);
        // SAFETY: state was FILLED (acquire-observed), so the filler's
        // write to `value` happens-before this read, and the unique taker
        // is the only reader.
        unsafe { (*self.value.get()).take() }.expect("filled slot holds a completion")
    }

    fn try_take(&self) -> Option<Completion> {
        if self
            .state
            .compare_exchange(FILLED, TAKEN, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            // SAFETY: as in `take` — FILLED observed with acquire ordering.
            return unsafe { (*self.value.get()).take() };
        }
        None
    }
}

/// A handle on one in-flight request; wait on it for the [`Completion`].
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    pub(crate) fn new(slot: Arc<Slot>) -> Self {
        Self { slot }
    }

    /// Blocks until the request completes (brief spin, then park — no lock).
    ///
    /// # Panics
    ///
    /// Panics if a previous [`Ticket::try_take`] already claimed the
    /// completion — there is nothing left to wait for.
    #[must_use]
    pub fn wait(self) -> Completion {
        self.slot.wait_take()
    }

    /// Takes the completion if the request already finished. After this
    /// returns `Some`, the completion is consumed: a later
    /// [`Ticket::wait`] panics rather than blocking forever.
    #[must_use]
    pub fn try_take(&self) -> Option<Completion> {
        self.slot.try_take()
    }
}

/// The shared completion state of one key batch.
///
/// `replies` is partitioned across shard sub-batches: each worker writes
/// only its own positions, so the cells never race; `pending` counts
/// sub-batches still in flight and the transition to zero publishes the
/// batch (release/acquire on the counter).
#[derive(Debug)]
pub(crate) struct BatchSlot {
    replies: Box<[UnsafeCell<ServiceReply>]>,
    pending: AtomicUsize,
    /// Longest sub-batch queue wait, microseconds (atomic max).
    queue_wait_us: AtomicU64,
    state: AtomicU32,
    waiter: UnsafeCell<Option<Thread>>,
    enqueued: Instant,
}

// SAFETY: reply cells are written by at most one worker each (disjoint
// position sets) before the release countdown, and read by the unique
// taker after acquiring FILLED; `waiter` follows the same protocol as
// `Slot::waiter`.
unsafe impl Send for BatchSlot {}
unsafe impl Sync for BatchSlot {}

impl BatchSlot {
    pub(crate) fn new(keys: usize, pending: usize) -> Arc<Self> {
        Arc::new(Self {
            replies: (0..keys)
                .map(|_| UnsafeCell::new(ServiceReply::Shed(ShedReason::Shutdown)))
                .collect(),
            pending: AtomicUsize::new(pending),
            queue_wait_us: AtomicU64::new(0),
            state: AtomicU32::new(EMPTY),
            waiter: UnsafeCell::new(None),
            enqueued: Instant::now(),
        })
    }

    /// When the batch was submitted.
    pub(crate) fn enqueued(&self) -> Instant {
        self.enqueued
    }

    /// Writes one key's reply. Caller must own `position` (be the worker
    /// serving the sub-batch that carries it) and must not have counted
    /// its sub-batch down yet.
    pub(crate) fn write_reply(&self, position: u32, reply: ServiceReply) {
        // SAFETY: positions partition the batch across sub-batches; the
        // caller owns this one exclusively until `finish_sub` runs.
        unsafe { *self.replies[position as usize].get() = reply };
    }

    /// Folds one sub-batch's queue wait into the batch maximum.
    pub(crate) fn note_queue_wait(&self, wait: Duration) {
        let us = u64::try_from(wait.as_micros()).unwrap_or(u64::MAX);
        self.queue_wait_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Counts one sub-batch down; the last one publishes the batch and
    /// wakes the waiter. Returns true when this call completed the batch.
    pub(crate) fn finish_sub(&self) -> bool {
        if self.pending.fetch_sub(1, Ordering::AcqRel) != 1 {
            return false;
        }
        match self.state.swap(FILLED, Ordering::AcqRel) {
            EMPTY => {}
            WAITING => {
                // SAFETY: waiter handle published before the WAITING CAS.
                let thread = unsafe { (*self.waiter.get()).take() };
                if let Some(thread) = thread {
                    thread.unpark();
                }
            }
            state => unreachable!("batch completed twice (slot state {state})"),
        }
        true
    }

    fn wait_take(&self) -> BatchCompletion {
        for _ in 0..WAIT_SPINS {
            if self.state.load(Ordering::Acquire) == FILLED {
                return self.take();
            }
            std::hint::spin_loop();
        }
        // SAFETY: unique waiter, same protocol as `Slot::wait_take`.
        unsafe { *self.waiter.get() = Some(std::thread::current()) };
        if self
            .state
            .compare_exchange(EMPTY, WAITING, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            while self.state.load(Ordering::Acquire) != FILLED {
                std::thread::park();
            }
        }
        self.take()
    }

    fn take(&self) -> BatchCompletion {
        self.state.store(TAKEN, Ordering::Relaxed);
        let replies = self
            .replies
            .iter()
            // SAFETY: every writer finished before the countdown reached
            // zero (acquire on `pending`/`state`), so the cells are stable.
            .map(|cell| unsafe { (*cell.get()).clone() })
            .collect();
        BatchCompletion {
            replies,
            queue_wait: Duration::from_micros(self.queue_wait_us.load(Ordering::Relaxed)),
            total: self.enqueued.elapsed(),
        }
    }
}

/// A handle on one in-flight key batch; wait on it for the
/// [`BatchCompletion`].
#[derive(Debug)]
pub struct BatchTicket {
    slot: Arc<BatchSlot>,
}

impl BatchTicket {
    pub(crate) fn new(slot: Arc<BatchSlot>) -> Self {
        Self { slot }
    }

    /// Blocks until every sub-batch completed (brief spin, then park).
    #[must_use]
    pub fn wait(self) -> BatchCompletion {
        self.slot.wait_take()
    }
}

/// A queued request: the operation plus the timestamps the worker needs to
/// enforce deadlines and measure waits.
#[derive(Debug)]
pub(crate) struct PendingRequest {
    pub(crate) op: ServiceOp,
    pub(crate) enqueued: Instant,
    pub(crate) deadline: Option<Instant>,
    pub(crate) slot: Arc<Slot>,
    /// Lifecycle trace for sampled requests (`None` = unsampled).
    pub(crate) trace: TraceCtx,
}

impl PendingRequest {
    /// Completes the request, stamping the timeline relative to `picked_up`
    /// (when the worker drained it) and now.
    pub(crate) fn complete(self, reply: ServiceReply, picked_up: Instant, coalesced: bool) {
        let completion = Completion {
            reply,
            queue_wait: picked_up.saturating_duration_since(self.enqueued),
            total: self.enqueued.elapsed(),
            coalesced,
        };
        self.slot.fill(completion);
    }
}

/// One shard's slice of a submitted key batch: the keys routed here plus
/// the batch-array positions their replies belong at.
#[derive(Debug)]
pub(crate) struct PendingSubBatch {
    pub(crate) keys: Box<[SearchKey]>,
    pub(crate) positions: Box<[u32]>,
    pub(crate) deadline: Option<Instant>,
    pub(crate) slot: Arc<BatchSlot>,
    /// One lifecycle trace covers the whole sub-batch when sampled.
    pub(crate) trace: TraceCtx,
}

impl PendingSubBatch {
    /// Sheds every key of this sub-batch and counts it down.
    pub(crate) fn shed(self, reason: ShedReason) {
        for &position in &self.positions {
            self.slot.write_reply(position, ServiceReply::Shed(reason));
        }
        self.slot.finish_sub();
    }
}

/// One entry in a shard's mailbox ring.
#[derive(Debug)]
pub(crate) enum RingEntry {
    /// A single routed request.
    Single(PendingRequest),
    /// One shard's slice of a key batch.
    Batch(PendingSubBatch),
}

impl RingEntry {
    /// Requests this entry represents (keys for a batch, 1 otherwise).
    pub(crate) fn requests(&self) -> u64 {
        self.request_count() as u64
    }

    /// As [`RingEntry::requests`], in the native width the queued-request
    /// accounting uses.
    pub(crate) fn request_count(&self) -> usize {
        match self {
            RingEntry::Single(_) => 1,
            RingEntry::Batch(sub) => sub.keys.len(),
        }
    }

    /// The sampled lifecycle trace, if this entry carries one.
    pub(crate) fn trace_mut(&mut self) -> Option<&mut RequestTrace> {
        match self {
            RingEntry::Single(request) => request.trace.as_deref_mut(),
            RingEntry::Batch(sub) => sub.trace.as_deref_mut(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_value_follows_the_key() {
        let k = SearchKey::new(0xAB, 16);
        assert_eq!(ServiceOp::Search(k).route_value(), 0xAB);
        let r = Record::new(TernaryKey::binary(0xCD, 16), 7);
        assert_eq!(ServiceOp::Insert(r).route_value(), 0xCD);
        assert_eq!(ServiceOp::InsertSorted(r).route_value(), 0xCD);
        assert_eq!(
            ServiceOp::Delete(TernaryKey::binary(0xEF, 16)).route_value(),
            0xEF
        );
    }

    #[test]
    fn writes_are_writes() {
        let r = Record::new(TernaryKey::binary(1, 8), 0);
        assert!(!ServiceOp::Search(SearchKey::new(1, 8)).is_write());
        assert!(ServiceOp::Insert(r).is_write());
        assert!(ServiceOp::InsertSorted(r).is_write());
        assert!(ServiceOp::Delete(TernaryKey::binary(1, 8)).is_write());
    }

    #[test]
    fn ticket_round_trip() {
        let slot = Slot::new();
        let ticket = Ticket::new(Arc::clone(&slot));
        assert!(ticket.try_take().is_none());
        slot.fill(Completion {
            reply: ServiceReply::Delete(3),
            queue_wait: Duration::from_micros(5),
            total: Duration::from_micros(9),
            coalesced: false,
        });
        let completion = ticket.wait();
        assert_eq!(completion.reply, ServiceReply::Delete(3));
        assert!(!completion.coalesced);
    }

    #[test]
    fn ticket_try_take_claims_once() {
        let slot = Slot::new();
        let ticket = Ticket::new(Arc::clone(&slot));
        slot.fill(Completion {
            reply: ServiceReply::Delete(2),
            queue_wait: Duration::ZERO,
            total: Duration::ZERO,
            coalesced: false,
        });
        let completion = ticket.try_take().expect("filled");
        assert_eq!(completion.reply, ServiceReply::Delete(2));
        assert!(ticket.try_take().is_none(), "second poll finds nothing");
    }

    #[test]
    #[should_panic(expected = "completion already taken")]
    fn ticket_wait_after_try_take_panics_clearly() {
        let slot = Slot::new();
        let ticket = Ticket::new(Arc::clone(&slot));
        slot.fill(Completion {
            reply: ServiceReply::Delete(0),
            queue_wait: Duration::ZERO,
            total: Duration::ZERO,
            coalesced: false,
        });
        let _ = ticket.try_take().expect("filled");
        let _ = ticket.wait(); // must panic, not block forever
    }

    #[test]
    fn ticket_wait_parks_until_a_late_fill() {
        let slot = Slot::new();
        let ticket = Ticket::new(Arc::clone(&slot));
        let filler = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                slot.fill(Completion {
                    reply: ServiceReply::Delete(1),
                    queue_wait: Duration::ZERO,
                    total: Duration::from_millis(20),
                    coalesced: false,
                });
            })
        };
        assert_eq!(ticket.wait().reply, ServiceReply::Delete(1));
        filler.join().expect("filler lives");
    }

    #[test]
    fn batch_slot_partitions_and_counts_down() {
        let slot = BatchSlot::new(4, 2);
        let ticket = BatchTicket::new(Arc::clone(&slot));
        // Sub-batch A owns positions 0 and 2; B owns 1 and 3.
        slot.write_reply(0, ServiceReply::Search(EngineOutcome::miss(1)));
        slot.write_reply(2, ServiceReply::Search(EngineOutcome::miss(2)));
        slot.note_queue_wait(Duration::from_micros(7));
        assert!(!slot.finish_sub(), "first sub-batch does not complete");
        slot.write_reply(1, ServiceReply::Shed(ShedReason::DeadlineExpired));
        slot.write_reply(3, ServiceReply::Search(EngineOutcome::miss(3)));
        slot.note_queue_wait(Duration::from_micros(3));
        assert!(slot.finish_sub(), "last sub-batch completes");
        let completion = ticket.wait();
        assert_eq!(completion.replies.len(), 4);
        assert_eq!(completion.shed(), 1);
        assert_eq!(
            completion.outcomes(),
            vec![
                Some(EngineOutcome::miss(1)),
                None,
                Some(EngineOutcome::miss(2)),
                Some(EngineOutcome::miss(3)),
            ]
        );
        assert_eq!(completion.queue_wait, Duration::from_micros(7));
    }

    #[test]
    fn sub_batch_shed_answers_every_position() {
        let slot = BatchSlot::new(3, 1);
        let ticket = BatchTicket::new(Arc::clone(&slot));
        let sub = PendingSubBatch {
            keys: vec![SearchKey::new(1, 8); 3].into_boxed_slice(),
            positions: vec![0, 1, 2].into_boxed_slice(),
            deadline: None,
            slot: Arc::clone(&slot),
            trace: None,
        };
        sub.shed(ShedReason::Shutdown);
        let completion = ticket.wait();
        assert_eq!(completion.shed(), 3);
    }

    #[test]
    fn admission_error_formats() {
        let full = AdmissionError::QueueFull { shard: 2, depth: 8 };
        assert!(full.to_string().contains("shard 2"));
        assert!(AdmissionError::ShuttingDown
            .to_string()
            .contains("shutting down"));
    }
}
