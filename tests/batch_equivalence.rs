//! Property-based equivalence tests for the batched/parallel search
//! pipeline: `search_batch` (serial and sharded) must be bit-identical to
//! per-key `search`, which must itself agree with the decode-everything
//! reference `search_baseline`; the parallel bulk operations must agree
//! with their serial forms. Both binary and ternary layouts are exercised,
//! with masked search keys and masked stored keys.

use ca_ram::core::error::CaRamError;
use ca_ram::core::index::RangeSelect;
use ca_ram::core::key::{SearchKey, TernaryKey};
use ca_ram::core::layout::{Record, RecordLayout};
use ca_ram::core::probe::ProbePolicy;
use ca_ram::core::table::{Arrangement, CaRamTable, OverflowPolicy, TableConfig};
use proptest::prelude::*;

/// A to-be-stored key: `value` with its low `dc_len` bits don't-care
/// (prefix-style masking, as in LPM), or fully binary when the layout is.
#[derive(Debug, Clone, Copy)]
struct StoredKey {
    value: u16,
    dc_len: u8,
}

/// A probe: `value`, optionally with its low `mask_len` bits masked.
#[derive(Debug, Clone, Copy)]
struct Probe {
    value: u16,
    mask_len: u8,
    masked: bool,
}

fn stored_key_strategy() -> impl Strategy<Value = StoredKey> {
    (any::<u16>(), 0u8..=8).prop_map(|(value, dc_len)| StoredKey { value, dc_len })
}

fn probe_strategy() -> impl Strategy<Value = Probe> {
    (any::<u16>(), 0u8..=16, any::<bool>()).prop_map(|(value, mask_len, masked)| Probe {
        value,
        mask_len,
        masked,
    })
}

fn build_table(ternary: bool, overflow: OverflowPolicy, stored: &[StoredKey]) -> CaRamTable {
    let layout = RecordLayout::new(16, ternary, 8);
    let config = TableConfig {
        rows_log2: 5,
        row_bits: 4 * layout.slot_bits(),
        layout,
        arrangement: Arrangement::Horizontal(2),
        probe: ProbePolicy::Linear,
        overflow,
    };
    // Index over bits 8..13: stored don't-care bits (low 8) never overlap,
    // while masked *search* keys may, exercising multi-home enumeration.
    let mut table = CaRamTable::new(config, Box::new(RangeSelect::new(8, 5))).expect("valid");
    for (i, s) in stored.iter().enumerate() {
        let dc = if ternary { (1u128 << s.dc_len) - 1 } else { 0 };
        let key = TernaryKey::ternary(u128::from(s.value) & !dc, dc, 16);
        let record = Record::new(key, (i % 251) as u64);
        match table.insert(record) {
            Ok(_) | Err(CaRamError::TableFull { .. }) => {}
            Err(e) => panic!("unexpected insert error: {e}"),
        }
    }
    table
}

fn to_search_keys(probes: &[Probe]) -> Vec<SearchKey> {
    probes
        .iter()
        .map(|p| {
            if p.masked {
                let dc = if p.mask_len >= 16 {
                    0xFFFF
                } else {
                    (1u128 << p.mask_len) - 1
                };
                SearchKey::with_mask(u128::from(p.value), dc, 16)
            } else {
                SearchKey::new(u128::from(p.value), 16)
            }
        })
        .collect()
}

fn assert_all_search_paths_agree(table: &CaRamTable, keys: &[SearchKey]) {
    let per_key: Vec<_> = keys.iter().map(|k| table.search(k)).collect();
    let baseline: Vec<_> = keys.iter().map(|k| table.search_baseline(k)).collect();
    assert_eq!(per_key, baseline, "search vs search_baseline");
    assert_eq!(table.search_batch(keys), per_key, "search_batch vs search");
    for threads in [2, 3] {
        assert_eq!(
            table.search_batch_parallel(keys, threads),
            per_key,
            "search_batch_parallel({threads}) vs search"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_search_is_bit_identical_ternary(
        stored in prop::collection::vec(stored_key_strategy(), 1..80),
        probes in prop::collection::vec(probe_strategy(), 1..40),
    ) {
        let table = build_table(true, OverflowPolicy::Probe { max_steps: 32 }, &stored);
        assert_all_search_paths_agree(&table, &to_search_keys(&probes));
    }

    #[test]
    fn batched_search_is_bit_identical_binary(
        stored in prop::collection::vec(stored_key_strategy(), 1..80),
        probes in prop::collection::vec(probe_strategy(), 1..40),
    ) {
        let table = build_table(false, OverflowPolicy::Probe { max_steps: 32 }, &stored);
        assert_all_search_paths_agree(&table, &to_search_keys(&probes));
    }

    #[test]
    fn batched_search_is_bit_identical_with_overflow_area(
        stored in prop::collection::vec(stored_key_strategy(), 1..120),
        probes in prop::collection::vec(probe_strategy(), 1..40),
    ) {
        let table = build_table(true, OverflowPolicy::ParallelArea { capacity: 32 }, &stored);
        assert_all_search_paths_agree(&table, &to_search_keys(&probes));
    }

    #[test]
    fn parallel_bulk_ops_agree_with_serial(
        stored in prop::collection::vec(stored_key_strategy(), 1..80),
        pattern in probe_strategy(),
    ) {
        let table = build_table(true, OverflowPolicy::Probe { max_steps: 32 }, &stored);
        let pattern = &to_search_keys(&[pattern])[0];

        let serial_count = table.count_matching(pattern);
        let serial_select = table.select(|r| r.data % 3 == 0);
        for threads in [2, 5] {
            prop_assert_eq!(table.count_matching_parallel(pattern, threads), serial_count);
            let par_select = table.select_parallel(|r| r.data % 3 == 0, threads);
            prop_assert_eq!(&par_select.0, &serial_select.0, "select order, threads={}", threads);
            prop_assert_eq!(par_select.1, serial_select.1);
        }

        let mut serial_table = build_table(true, OverflowPolicy::Probe { max_steps: 32 }, &stored);
        let serial_receipt = serial_table.update_matching(pattern, |d| d.wrapping_mul(7) + 1);
        for threads in [2, 5] {
            let mut par_table = build_table(true, OverflowPolicy::Probe { max_steps: 32 }, &stored);
            let receipt = par_table.update_matching_parallel(
                pattern,
                |d| d.wrapping_mul(7) + 1,
                threads,
            );
            prop_assert_eq!(receipt, serial_receipt);
            prop_assert_eq!(
                par_table.select(|_| true).0,
                serial_table.select(|_| true).0,
                "post-update contents, threads={}", threads
            );
        }
    }
}
