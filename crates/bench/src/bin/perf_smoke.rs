//! Simulator-throughput smoke test for the batched search pipeline.
//!
//! Not a paper artifact: this measures the *simulator itself*. For each
//! Table 2 IP design it loads a synthetic BGP table, replays an address
//! trace three ways — the pre-optimization reference loop
//! (`search_baseline`: per-lookup heap allocation, decode-every-slot), the
//! allocation-free serial batch (`search_batch`), and the sharded parallel
//! batch (`search_batch_parallel`) — and reports keys/sec for each plus the
//! measured mean memory accesses per search. Results are written as JSON
//! for tracking across revisions.
//!
//! Usage: `perf_smoke [--prefixes N] [--lookups N] [--seed S] [--threads T]
//! [--out PATH]`

use std::time::Instant;

use ca_ram_bench::designs::{build_ip_table, ip_designs, load_prefixes};
use ca_ram_bench::{arg_parse, arg_value, rule};
use ca_ram_core::key::SearchKey;
use ca_ram_core::table::{CaRamTable, SearchOutcome};
use ca_ram_workloads::bgp::{generate, BgpConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct DesignResult {
    name: &'static str,
    baseline_kps: f64,
    serial_kps: f64,
    parallel_kps: f64,
    mean_accesses: f64,
}

#[allow(clippy::cast_precision_loss)]
fn keys_per_sec(n: usize, secs: f64) -> f64 {
    if secs > 0.0 {
        n as f64 / secs
    } else {
        f64::INFINITY
    }
}

fn run_baseline(table: &CaRamTable, keys: &[SearchKey]) -> (Vec<SearchOutcome>, f64) {
    let start = Instant::now();
    let outcomes: Vec<SearchOutcome> = keys.iter().map(|k| table.search_baseline(k)).collect();
    (outcomes, start.elapsed().as_secs_f64())
}

fn main() {
    let prefixes_n: usize = arg_parse("prefixes", 20_000);
    let lookups: usize = arg_parse("lookups", 100_000);
    let seed: u64 = arg_parse("seed", 0x1103);
    let threads: usize = arg_parse("threads", 0);
    let out_path = arg_value("out").unwrap_or_else(|| "BENCH_search.json".into());
    assert!(prefixes_n > 0, "--prefixes must be > 0");
    assert!(
        lookups > 0,
        "--lookups must be > 0 (speedups are undefined on an empty trace)"
    );

    let mut config = BgpConfig::scaled(prefixes_n);
    config.seed = seed;
    let prefixes = generate(&config);
    let weights = vec![1.0; prefixes.len()];

    // Address trace: random member addresses of random prefixes, so every
    // lookup hits (the paper measures successful-search cost).
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
    let keys: Vec<SearchKey> = (0..lookups)
        .map(|i| {
            let p = &prefixes[i % prefixes.len()];
            SearchKey::new(u128::from(p.random_member(&mut rng)), 32)
        })
        .collect();

    println!("Simulator search throughput ({prefixes_n} prefixes, {lookups} lookups)");
    println!(
        "{:^6} {:>14} {:>14} {:>14} {:>9} {:>9} {:>8}",
        "Design", "base keys/s", "serial keys/s", "par keys/s", "ser x", "par x", "mem/srch"
    );
    rule(80);

    let mut results: Vec<DesignResult> = Vec::new();
    for d in ip_designs() {
        let mut table = build_ip_table(&d);
        load_prefixes(&mut table, &prefixes, &weights);

        // Warm-up + correctness: all three paths must agree exactly.
        let (base_outcomes, _) = run_baseline(&table, &keys);
        let serial_outcomes = table.search_batch(&keys);
        let parallel_outcomes = table.search_batch_parallel(&keys, threads);
        assert_eq!(base_outcomes, serial_outcomes, "design {}", d.name);
        assert_eq!(serial_outcomes, parallel_outcomes, "design {}", d.name);

        let (_, base_secs) = run_baseline(&table, &keys);
        let start = Instant::now();
        let serial_outcomes = table.search_batch(&keys);
        let serial_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let _ = table.search_batch_parallel(&keys, threads);
        let parallel_secs = start.elapsed().as_secs_f64();

        let total_accesses: u64 = serial_outcomes
            .iter()
            .map(|o| u64::from(o.memory_accesses))
            .sum();
        #[allow(clippy::cast_precision_loss)]
        let mean_accesses = total_accesses as f64 / serial_outcomes.len() as f64;

        let r = DesignResult {
            name: d.name,
            baseline_kps: keys_per_sec(keys.len(), base_secs),
            serial_kps: keys_per_sec(keys.len(), serial_secs),
            parallel_kps: keys_per_sec(keys.len(), parallel_secs),
            mean_accesses,
        };
        println!(
            "{:^6} {:>14.0} {:>14.0} {:>14.0} {:>8.2}x {:>8.2}x {:>8.3}",
            r.name,
            r.baseline_kps,
            r.serial_kps,
            r.parallel_kps,
            r.serial_kps / r.baseline_kps,
            r.parallel_kps / r.baseline_kps,
            r.mean_accesses,
        );
        results.push(r);
    }
    rule(80);

    let min_serial_speedup = results
        .iter()
        .map(|r| r.serial_kps / r.baseline_kps)
        .fold(f64::INFINITY, f64::min);
    println!(
        "minimum serial speedup over baseline loop: {min_serial_speedup:.2}x (target >= 2.00x) {}",
        if min_serial_speedup >= 2.0 {
            "PASS"
        } else {
            "MISS"
        }
    );

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"search\",\n");
    json.push_str(&format!("  \"prefixes\": {prefixes_n},\n"));
    json.push_str(&format!("  \"lookups\": {lookups},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!(
        "  \"min_serial_speedup\": {min_serial_speedup:.4},\n"
    ));
    json.push_str("  \"designs\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_keys_per_sec\": {:.1}, \
             \"serial_keys_per_sec\": {:.1}, \"parallel_keys_per_sec\": {:.1}, \
             \"serial_speedup\": {:.4}, \"parallel_speedup\": {:.4}, \
             \"mean_memory_accesses\": {:.4}}}{}\n",
            r.name,
            r.baseline_kps,
            r.serial_kps,
            r.parallel_kps,
            r.serial_kps / r.baseline_kps,
            r.parallel_kps / r.baseline_kps,
            r.mean_accesses,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("writable --out path");
    println!("(wrote {out_path})");
}
