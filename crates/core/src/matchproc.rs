//! The match processors: parallel candidate-key comparison (Sec. 3.1, 3.3).
//!
//! One memory access fetches a whole bucket; the match processors then
//! compare every candidate key in the row against the search key in
//! parallel. The functional model mirrors the prototype's four steps:
//!
//! 1. *expand search key* — align the search key to each slot (implicit in
//!    the slot-indexed loop below);
//! 2. *calculate match vector* — one bit per slot;
//! 3. *decode match vector* — priority-encode: the lowest-numbered matching
//!    slot wins, which implements longest-prefix match when records are
//!    placed in descending priority order (Sec. 4.1);
//! 4. *extract result* — return the winning slot's record.
//!
//! The intermediate match vector is part of the public result so tests and
//! the multi-match diagnostics of Sec. 3.3 ("conditions where multiple
//! matching records ... are identified") can observe it.

use crate::kernel::{self, Kernel};
use crate::key::{SearchKey, TernaryKey};
use crate::layout::{Record, RecordLayout};

/// Shared best-care tie-break: does `candidate` beat the `incumbent` best
/// match? The winner of a multi-bucket search is the record with the most
/// care bits (the longest prefix); on equal care counts the incumbent —
/// the record found *earlier* in probe order — keeps its seat. Every twin
/// of the search path (hot, baseline, traced, deep, batch, overflow area)
/// must route through this one predicate so they cannot silently diverge.
#[must_use]
#[inline]
pub fn wins_tie_break(candidate: &Record, incumbent: Option<&Record>) -> bool {
    incumbent.is_none_or(|b| candidate.key.care_count() > b.key.care_count())
}

/// How a bank compares one row: picked once from the layout geometry so
/// the hot loops dispatch on a pre-computed class, not on arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowClass {
    /// One 64-bit word per slot, stored key within it (the Table 2 IP
    /// layouts): word-per-slot lane compare.
    Word1,
    /// Two words per binary slot (the Table 3 trigram layout): paired
    /// lane compare. The care mask is confined to the key field, so this
    /// class is valid for any binary key width with 128-bit slots.
    Word2Binary,
    /// Anything unaligned: the portable bit-addressed loop.
    Generic,
}

impl RowClass {
    fn of(layout: &RecordLayout) -> Self {
        if layout.slot_bits() == 64 {
            RowClass::Word1
        } else if layout.slot_bits() == 128 && !layout.is_ternary() {
            RowClass::Word2Binary
        } else {
            RowClass::Generic
        }
    }
}

/// Outcome of matching one fetched row against a search key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowMatch {
    /// Step 2 output: bit `i` set iff valid slot `i` matched.
    pub match_vector: u128,
    /// Step 3 output: the highest-priority (lowest-numbered) matching slot.
    pub first_match: Option<u32>,
    /// Diagnostic from step 3: more than one slot matched.
    pub multiple_matches: bool,
}

impl RowMatch {
    /// Number of matching slots.
    #[must_use]
    pub fn match_count(&self) -> u32 {
        self.match_vector.count_ones()
    }
}

/// A bank of match processors for one record layout.
///
/// The bank is stateless; it prices nothing and owns nothing — it is the
/// combinational logic between the sense amplifiers and the result queue.
#[derive(Debug, Clone, Copy)]
pub struct MatchProcessorBank {
    layout: RecordLayout,
    kernel: Kernel,
    class: RowClass,
    // Compare routines resolved once at construction so per-row calls
    // skip kernel dispatch and the CPU-feature re-check (see
    // [`kernel::word1_fn`]). Both are functions of `kernel` and the
    // host, hence excluded from equality.
    word1: kernel::Word1Fn,
    word1_first: kernel::Word1FirstFn,
    word2: kernel::Word2Fn,
}

impl PartialEq for MatchProcessorBank {
    fn eq(&self, other: &Self) -> bool {
        self.layout == other.layout && self.kernel == other.kernel && self.class == other.class
    }
}

impl Eq for MatchProcessorBank {}

impl MatchProcessorBank {
    /// Creates a bank for the given record layout, capturing the
    /// process-wide [`kernel::active_kernel`] for its whole life (see the
    /// dispatch rules in [`kernel`]).
    #[must_use]
    pub fn new(layout: RecordLayout) -> Self {
        Self::with_kernel(layout, kernel::active_kernel())
    }

    /// Creates a bank pinned to a specific compare kernel (differential
    /// tests build scalar and SIMD twins this way). The kernel is clamped
    /// to what the host supports, so a bank can never fault on a missing
    /// instruction set.
    #[must_use]
    pub fn with_kernel(layout: RecordLayout, kernel: Kernel) -> Self {
        let kernel = kernel.min(kernel::detect());
        Self {
            layout,
            kernel,
            class: RowClass::of(&layout),
            word1: kernel::word1_fn(kernel),
            word1_first: kernel::word1_first_fn(kernel),
            word2: kernel::word2_fn(kernel),
        }
    }

    /// The compare kernel this bank captured at construction.
    #[must_use]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The record layout the bank decodes.
    #[must_use]
    pub fn layout(&self) -> &RecordLayout {
        &self.layout
    }

    /// Raw match bits for slots `[base, base + count)` of a lane-classed
    /// row, one bit per slot, *before* occupancy masking — invalid slots
    /// may carry garbage and set bits; callers mask with the valid bitmap.
    ///
    /// Must only be called for `RowClass::Word1` / `RowClass::Word2Binary`
    /// and `count <= 64`.
    #[inline]
    #[allow(clippy::cast_possible_truncation)] // values pre-masked to word width
    fn lane_bits(&self, row: &[u64], base: usize, count: usize, sv: u128, sc: u128) -> u64 {
        debug_assert!(count <= 64, "lane kernels emit at most 64 match bits");
        match self.class {
            RowClass::Word1 => (self.word1)(
                &row[base..base + count],
                sv as u64,
                sc as u64,
                self.layout.key_bits(),
                self.layout.is_ternary(),
            ),
            RowClass::Word2Binary => (self.word2)(
                &row[2 * base..2 * (base + count)],
                sv as u64,
                (sv >> 64) as u64,
                sc as u64,
                (sc >> 64) as u64,
            ),
            RowClass::Generic => unreachable!("lane_bits is only called for lane-classed rows"),
        }
    }

    /// Steps 1–3: computes the match vector over the valid slots of `row`
    /// and priority-encodes it.
    ///
    /// `valid` is the bucket's occupancy bitmap (from the auxiliary field);
    /// bit `i` set means slot `i` holds a record. `slots` is the number of
    /// slots the row holds (`⌊C / slot_bits⌋`).
    ///
    /// # Panics
    ///
    /// Panics if the search key width differs from the layout's key width
    /// or if `slots` exceeds 128.
    #[must_use]
    pub fn match_row(&self, row: &[u64], valid: u128, slots: u32, search: &SearchKey) -> RowMatch {
        assert_eq!(
            search.bits(),
            self.layout.key_bits(),
            "search key width {} does not match layout width {}",
            search.bits(),
            self.layout.key_bits()
        );
        assert!(slots <= 128, "at most 128 slots per physical row");
        // Steps 2–3 compare stored bits directly; nothing is decoded until
        // a winner is known (step 4, `extract`). Search-key invariants are
        // hoisted out of the loop and only occupied slots are visited — the
        // software analogue of match lines that only fire on valid slots.
        let key_bits = self.layout.key_bits();
        let search_value = search.value();
        let search_care = !search.dont_care() & crate::bits::low_mask(key_bits);
        let occupied = valid & crate::bits::low_mask(slots);
        let vector: u128 = if self.class == RowClass::Generic {
            let ternary = self.layout.is_ternary();
            let slot_bits = self.layout.slot_bits() as usize;
            let key_field = key_bits as usize;
            let mut vector: u128 = 0;
            let mut pending = occupied;
            while pending != 0 {
                let slot = pending.trailing_zeros();
                pending &= pending - 1;
                let base = slot as usize * slot_bits;
                let value = crate::bits::read_bits(row, base, key_bits);
                let care = if ternary {
                    search_care & !crate::bits::read_bits(row, base + key_field, key_bits)
                } else {
                    search_care
                };
                if (value ^ search_value) & care == 0 {
                    vector |= 1 << slot;
                }
            }
            vector
        } else {
            // Lane-classed rows: compare every slot (garbage in invalid
            // slots is masked out below, like match lines that only fire
            // on valid slots) in <= 64-slot kernel calls.
            let mut vector: u128 = 0;
            let mut base = 0usize;
            let slots = slots as usize;
            while base < slots {
                let count = (slots - base).min(64);
                let bits = self.lane_bits(row, base, count, search_value, search_care);
                vector |= u128::from(bits) << base;
                base += count;
            }
            vector & occupied
        };
        let first_match = if vector == 0 {
            None
        } else {
            Some(vector.trailing_zeros())
        };
        RowMatch {
            match_vector: vector,
            first_match,
            multiple_matches: vector.count_ones() > 1,
        }
    }

    /// Steps 1–3 with a limited processor bank: when a bucket holds more
    /// candidates than there are match processors (`⌈C/N⌉ > P`), "necessary
    /// matching actions can be divided into a few pipelined actions"
    /// (Sec. 3.1). Candidates are compared in slot order, `processors` per
    /// pass; the pass containing the first match terminates the pipeline
    /// (lower slots = higher priority, so later passes cannot win).
    ///
    /// Returns the match result and the number of passes executed.
    ///
    /// # Panics
    ///
    /// Panics if `processors` is zero, or under the same conditions as
    /// [`MatchProcessorBank::match_row`].
    #[must_use]
    pub fn match_row_pipelined(
        &self,
        row: &[u64],
        valid: u128,
        slots: u32,
        search: &SearchKey,
        processors: u32,
    ) -> (RowMatch, u32) {
        assert!(processors > 0, "need at least one match processor");
        assert!(slots <= 128, "at most 128 slots per physical row");
        let mut passes = 0u32;
        let mut vector: u128 = 0;
        let mut first_match = None;
        let mut start = 0u32;
        while start < slots {
            let end = (start + processors).min(slots);
            passes += 1;
            let window = crate::bits::low_mask(end) & !crate::bits::low_mask(start);
            let partial = self.match_row(row, valid & window, slots, search);
            vector |= partial.match_vector;
            if partial.first_match.is_some() {
                first_match = partial.first_match;
                break;
            }
            start = end;
        }
        (
            RowMatch {
                match_vector: vector,
                first_match,
                multiple_matches: vector.count_ones() > 1,
            },
            passes,
        )
    }

    /// Steps 1–3 when only the winner is needed: occupied slots are
    /// scanned in priority (ascending slot) order and the scan stops at
    /// the first match — the priority encoder discards later matches, so
    /// they need not be evaluated. When the stored key fits in one word
    /// and slots are word-multiples (e.g. the 64-bit ternary IP slots),
    /// each candidate costs a single word read and a masked compare.
    ///
    /// # Panics
    ///
    /// As [`MatchProcessorBank::match_row`].
    #[must_use]
    #[allow(clippy::cast_possible_truncation)] // values pre-masked to <= 64 bits
    pub fn first_match(
        &self,
        row: &[u64],
        valid: u128,
        slots: u32,
        search: &SearchKey,
    ) -> Option<u32> {
        assert_eq!(
            search.bits(),
            self.layout.key_bits(),
            "search key width {} does not match layout width {}",
            search.bits(),
            self.layout.key_bits()
        );
        assert!(slots <= 128, "at most 128 slots per physical row");
        // The occupancy bitmap never carries bits beyond the row's slots
        // (it is maintained per-slot by insert/delete); relying on that
        // keeps two 128-bit mask computations off the per-row hot path.
        debug_assert!(
            valid & !crate::bits::low_mask(slots) == 0,
            "valid bitmap has bits beyond the row's {slots} slots"
        );
        let key_bits = self.layout.key_bits();
        let search_value = search.value();
        let search_care = !search.dont_care() & crate::bits::low_mask(key_bits);
        if self.class == RowClass::Word1 {
            // Word-per-slot rows take the fused compare/priority-encode
            // routine: operands broadcast once, occupancy applied per
            // vector, early exit at vector granularity (see
            // [`kernel::word1_first_fn`]). Rows wider than 64 slots are
            // walked in 64-slot spans (the occupancy word is a `u64`).
            #[allow(clippy::cast_possible_truncation)]
            let (sv, sc) = (search_value as u64, search_care as u64);
            let ternary = self.layout.is_ternary();
            let slots = slots as usize;
            let mut base = 0usize;
            while base < slots {
                let count = (slots - base).min(64);
                // Branchless sub-64-bit mask: count is in 1..=64.
                let occ = (valid >> base) as u64 & (u64::MAX >> (64 - count));
                if occ != 0 {
                    if let Some(slot) =
                        (self.word1_first)(&row[base..base + count], occ, sv, sc, key_bits, ternary)
                    {
                        return Some(base as u32 + slot);
                    }
                }
                base += count;
            }
            return None;
        }
        if self.class == RowClass::Word2Binary {
            // Paired-word rows: compare a group of slots per kernel call
            // and stop at the first group with a hit — the priority
            // encoder's early exit at lane granularity. The 256-bit path
            // widens its group to 32 only on deep rows, where misses and
            // deep hits dominate and the broadcast setup amortizes.
            let group: usize = if self.kernel == Kernel::Lanes256 && slots > 32 {
                32
            } else {
                16
            };
            let slots = slots as usize;
            let mut base = 0usize;
            while base < slots {
                let count = (slots - base).min(group);
                // Branchless sub-64-bit mask: count is in 1..=64.
                let occ = (valid >> base) as u64 & (u64::MAX >> (64 - count));
                if occ != 0 {
                    let bits = self.lane_bits(row, base, count, search_value, search_care) & occ;
                    if bits != 0 {
                        return Some(base as u32 + bits.trailing_zeros());
                    }
                }
                base += count;
            }
            return None;
        }
        let ternary = self.layout.is_ternary();
        let slot_bits = self.layout.slot_bits();
        let mut pending = valid;
        if slot_bits.is_multiple_of(64) && self.layout.stored_key_bits() <= 64 {
            let words_per_slot = (slot_bits / 64) as usize;
            let key_mask = crate::bits::low_mask(key_bits) as u64;
            let sv = search_value as u64;
            let sc = search_care as u64;
            while pending != 0 {
                let slot = pending.trailing_zeros();
                pending &= pending - 1;
                let w = row[slot as usize * words_per_slot];
                let care = if ternary { sc & !(w >> key_bits) } else { sc };
                if ((w & key_mask) ^ sv) & care == 0 {
                    return Some(slot);
                }
            }
            return None;
        }
        let slot_bits = slot_bits as usize;
        let key_field = key_bits as usize;
        while pending != 0 {
            let slot = pending.trailing_zeros();
            pending &= pending - 1;
            let base = slot as usize * slot_bits;
            let value = crate::bits::read_bits(row, base, key_bits);
            let care = if ternary {
                search_care & !crate::bits::read_bits(row, base + key_field, key_bits)
            } else {
                search_care
            };
            if (value ^ search_value) & care == 0 {
                return Some(slot);
            }
        }
        None
    }

    /// Step 4: extracts the record at the winning slot. Lane-classed rows
    /// decode straight from the slot's word(s) — the fields of a 64- or
    /// 128-bit slot never straddle words, so the generic bit-cursor walk
    /// of [`RecordLayout::decode_slot`] is skipped on the hit path.
    ///
    /// # Panics
    ///
    /// Panics if the slot lies outside the row.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)] // data field pre-masked to <= 64 bits
    pub fn extract(&self, row: &[u64], slot: u32) -> Record {
        let key_bits = self.layout.key_bits();
        let key_mask = crate::bits::low_mask(key_bits);
        match self.class {
            RowClass::Word1 => {
                let w = u128::from(row[slot as usize]);
                let (dont_care, rest) = if self.layout.is_ternary() {
                    ((w >> key_bits) & key_mask, w >> (2 * key_bits))
                } else {
                    (0, w >> key_bits)
                };
                let data = (rest & crate::bits::low_mask(self.layout.data_bits())) as u64;
                Record {
                    key: TernaryKey::ternary_decoded(w & key_mask, dont_care, key_bits),
                    data,
                }
            }
            RowClass::Word2Binary => {
                let base = 2 * slot as usize;
                let w = u128::from(row[base]) | (u128::from(row[base + 1]) << 64);
                let data = if self.layout.data_bits() == 0 {
                    0 // also dodges the key_bits == 128 full-width shift
                } else {
                    ((w >> key_bits) & crate::bits::low_mask(self.layout.data_bits())) as u64
                };
                Record {
                    key: TernaryKey::ternary_decoded(w & key_mask, 0, key_bits),
                    data,
                }
            }
            RowClass::Generic => self.layout.decode_slot(row, slot),
        }
    }

    /// Convenience: full pipeline over one row, returning the winning
    /// record and its slot (via the early-exit [`MatchProcessorBank::first_match`]).
    #[must_use]
    #[inline]
    pub fn search_row(
        &self,
        row: &[u64],
        valid: u128,
        slots: u32,
        search: &SearchKey,
    ) -> Option<(u32, Record)> {
        self.first_match(row, valid, slots, search)
            .map(|slot| (slot, self.extract(row, slot)))
    }

    /// Reference implementation of [`MatchProcessorBank::match_row`] that
    /// fully decodes every valid slot before comparing. Kept as the
    /// correctness oracle for the direct stored-bit compare and as the perf
    /// baseline the `perf_smoke` bench measures speedups against.
    ///
    /// # Panics
    ///
    /// As [`MatchProcessorBank::match_row`].
    #[must_use]
    pub fn match_row_decode_all(
        &self,
        row: &[u64],
        valid: u128,
        slots: u32,
        search: &SearchKey,
    ) -> RowMatch {
        assert_eq!(
            search.bits(),
            self.layout.key_bits(),
            "search key width {} does not match layout width {}",
            search.bits(),
            self.layout.key_bits()
        );
        assert!(slots <= 128, "at most 128 slots per physical row");
        let mut vector: u128 = 0;
        for slot in 0..slots {
            if valid >> slot & 1 == 0 {
                continue;
            }
            let record = self.layout.decode_slot(row, slot);
            if record.key.matches(search) {
                vector |= 1 << slot;
            }
        }
        let first_match = if vector == 0 {
            None
        } else {
            Some(vector.trailing_zeros())
        };
        RowMatch {
            match_vector: vector,
            first_match,
            multiple_matches: vector.count_ones() > 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::TernaryKey;

    fn build_row(layout: &RecordLayout, slots: u32, records: &[(u32, Record)]) -> (Vec<u64>, u128) {
        let bits = layout.slot_bits() * slots;
        let mut row = vec![0u64; (bits as usize).div_ceil(64)];
        let mut valid: u128 = 0;
        for (slot, rec) in records {
            layout.encode_slot(&mut row, *slot, rec);
            valid |= 1 << slot;
        }
        (row, valid)
    }

    #[test]
    fn single_match_found() {
        let layout = RecordLayout::new(16, false, 8);
        let recs = [
            (0, Record::new(TernaryKey::binary(0x1111, 16), 1)),
            (1, Record::new(TernaryKey::binary(0x2222, 16), 2)),
            (3, Record::new(TernaryKey::binary(0x3333, 16), 3)),
        ];
        let (row, valid) = build_row(&layout, 4, &recs);
        let bank = MatchProcessorBank::new(layout);
        let m = bank.match_row(&row, valid, 4, &SearchKey::new(0x2222, 16));
        assert_eq!(m.first_match, Some(1));
        assert_eq!(m.match_vector, 0b10);
        assert!(!m.multiple_matches);
        let (slot, rec) = bank
            .search_row(&row, valid, 4, &SearchKey::new(0x3333, 16))
            .unwrap();
        assert_eq!(slot, 3);
        assert_eq!(rec.data, 3);
    }

    #[test]
    fn miss_returns_none() {
        let layout = RecordLayout::new(16, false, 0);
        let (row, valid) = build_row(
            &layout,
            4,
            &[(0, Record::new(TernaryKey::binary(0xAAAA, 16), 0))],
        );
        let bank = MatchProcessorBank::new(layout);
        assert!(bank
            .search_row(&row, valid, 4, &SearchKey::new(0xBBBB, 16))
            .is_none());
    }

    #[test]
    fn invalid_slots_never_match() {
        // A stale key left in an invalidated slot must not match.
        let layout = RecordLayout::new(16, false, 0);
        let (row, _) = build_row(
            &layout,
            2,
            &[(0, Record::new(TernaryKey::binary(0xCCCC, 16), 0))],
        );
        let bank = MatchProcessorBank::new(layout);
        let m = bank.match_row(&row, 0, 2, &SearchKey::new(0xCCCC, 16));
        assert_eq!(m.first_match, None);
        // Slot 1 is zeroed but also invalid: a zero search key must miss.
        let m = bank.match_row(&row, 0b01, 2, &SearchKey::new(0, 16));
        assert_eq!(m.first_match, None);
    }

    #[test]
    fn priority_encoder_picks_lowest_slot() {
        // Two entries match (a /16 placed before a /8 in priority order);
        // the encoder must pick the lower slot, implementing LPM.
        let layout = RecordLayout::new(32, true, 8);
        let p16 = Record::new(TernaryKey::ternary(0xC0A8_0000, 0xFFFF, 32), 16);
        let p8 = Record::new(TernaryKey::ternary(0xC000_0000, 0x00FF_FFFF, 32), 8);
        let (row, valid) = build_row(&layout, 4, &[(0, p16), (1, p8)]);
        let bank = MatchProcessorBank::new(layout);
        let m = bank.match_row(&row, valid, 4, &SearchKey::new(0xC0A8_1234, 32));
        assert_eq!(m.first_match, Some(0));
        assert!(m.multiple_matches);
        assert_eq!(m.match_count(), 2);
        // A key matching only the /8 falls through to slot 1.
        let m = bank.match_row(&row, valid, 4, &SearchKey::new(0xC001_0000, 32));
        assert_eq!(m.first_match, Some(1));
        assert!(!m.multiple_matches);
    }

    #[test]
    fn masked_search_key_matches_multiple() {
        let layout = RecordLayout::new(8, false, 0);
        let recs = [
            (0, Record::new(TernaryKey::binary(0b0000_0000, 8), 0)),
            (1, Record::new(TernaryKey::binary(0b0000_0001, 8), 0)),
            (2, Record::new(TernaryKey::binary(0b1000_0001, 8), 0)),
        ];
        let (row, valid) = build_row(&layout, 3, &recs);
        let bank = MatchProcessorBank::new(layout);
        // Search 0000000X matches slots 0 and 1.
        let m = bank.match_row(&row, valid, 3, &SearchKey::with_mask(0, 1, 8));
        assert_eq!(m.match_vector, 0b011);
        assert_eq!(m.first_match, Some(0));
    }

    #[test]
    fn full_row_of_96_slots() {
        // The trigram configuration: 96 keys of 128 bits per bucket.
        let layout = RecordLayout::new(128, false, 0);
        let records: Vec<(u32, Record)> = (0..96)
            .map(|i| {
                (
                    i,
                    Record::new(TernaryKey::binary(u128::from(i) << 64 | 7, 128), 0),
                )
            })
            .collect();
        let (row, valid) = build_row(&layout, 96, &records);
        let bank = MatchProcessorBank::new(layout);
        for i in [0u32, 47, 95] {
            let key = SearchKey::new(u128::from(i) << 64 | 7, 128);
            let m = bank.match_row(&row, valid, 96, &key);
            assert_eq!(m.first_match, Some(i));
            assert!(!m.multiple_matches);
        }
        assert!(bank
            .match_row(&row, valid, 96, &SearchKey::new(96u128 << 64 | 7, 128))
            .first_match
            .is_none());
    }

    #[test]
    fn pipelined_match_agrees_with_full_bank() {
        let layout = RecordLayout::new(16, false, 0);
        let records: Vec<(u32, Record)> = (0..12)
            .map(|i| {
                (
                    i,
                    Record::new(TernaryKey::binary(u128::from(0x500 + i), 16), 0),
                )
            })
            .collect();
        let (row, valid) = build_row(&layout, 12, &records);
        let bank = MatchProcessorBank::new(layout);
        for target in [0u32, 5, 11] {
            let key = SearchKey::new(u128::from(0x500 + target), 16);
            let full = bank.match_row(&row, valid, 12, &key);
            for p in [1u32, 4, 5, 12, 64] {
                let (pipelined, passes) = bank.match_row_pipelined(&row, valid, 12, &key, p);
                assert_eq!(pipelined.first_match, full.first_match, "P={p}");
                // The winning pass is the one containing the target slot.
                assert_eq!(passes, target / p + 1, "P={p} target={target}");
            }
        }
    }

    #[test]
    fn pipelined_miss_runs_all_passes() {
        let layout = RecordLayout::new(16, false, 0);
        let records: Vec<(u32, Record)> = (0..8)
            .map(|i| (i, Record::new(TernaryKey::binary(u128::from(i), 16), 0)))
            .collect();
        let (row, valid) = build_row(&layout, 8, &records);
        let bank = MatchProcessorBank::new(layout);
        let (m, passes) = bank.match_row_pipelined(&row, valid, 8, &SearchKey::new(0xFFFF, 16), 3);
        assert_eq!(m.first_match, None);
        assert_eq!(passes, 3); // ceil(8/3)
    }

    #[test]
    fn pipelined_priority_stops_at_first_matching_pass() {
        // Two matches in different passes: the earlier pass wins and the
        // pipeline stops, leaving the later match unobserved in the vector.
        let layout = RecordLayout::new(8, false, 0);
        let records = [
            (1, Record::new(TernaryKey::binary(0x7, 8), 0)),
            (6, Record::new(TernaryKey::binary(0x7, 8), 0)),
        ];
        let (row, valid) = build_row(&layout, 8, &records);
        let bank = MatchProcessorBank::new(layout);
        let (m, passes) = bank.match_row_pipelined(&row, valid, 8, &SearchKey::new(0x7, 8), 4);
        assert_eq!(m.first_match, Some(1));
        assert_eq!(passes, 1);
        assert!(!m.multiple_matches, "the second match was never evaluated");
    }

    #[test]
    fn direct_compare_agrees_with_decode_all_oracle() {
        // Ternary layout with masked stored keys and masked search keys:
        // the direct stored-bit compare must reproduce the decode-all
        // reference bit for bit, including the match vector.
        let layout = RecordLayout::new(16, true, 8);
        let records = [
            (0, Record::new(TernaryKey::ternary(0xAB00, 0x00FF, 16), 1)),
            (2, Record::new(TernaryKey::binary(0xAB12, 16), 2)),
            (3, Record::new(TernaryKey::ternary(0x0000, 0xFFFF, 16), 3)),
            (5, Record::new(TernaryKey::ternary(0xA000, 0x0FFF, 16), 4)),
        ];
        let (row, valid) = build_row(&layout, 6, &records);
        let bank = MatchProcessorBank::new(layout);
        for probe in [
            SearchKey::new(0xAB12, 16),
            SearchKey::new(0x1234, 16),
            SearchKey::with_mask(0xA000, 0x0FF0, 16),
            SearchKey::with_mask(0x0000, 0xFFFF, 16),
        ] {
            assert_eq!(
                bank.match_row(&row, valid, 6, &probe),
                bank.match_row_decode_all(&row, valid, 6, &probe),
                "probe {probe:?}"
            );
        }
    }

    #[test]
    fn first_match_agrees_with_match_row() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        // Word-multiple ternary (IP, single-word fast path), word-multiple
        // binary, and an unaligned layout (generic path).
        for layout in [
            RecordLayout::new(32, true, 0),
            RecordLayout::new(64, false, 0),
            RecordLayout::new(13, true, 5),
        ] {
            let slots = 16u32;
            let bits = layout.key_bits();
            let mut records: Vec<(u32, Record)> = Vec::new();
            for i in 0..slots {
                if rng.gen_range(0..4u32) == 0 {
                    continue; // leave some slots invalid
                }
                let dc = if layout.is_ternary() {
                    crate::bits::low_mask(rng.gen_range(0..=bits))
                } else {
                    0
                };
                let v = rng.gen::<u128>() & crate::bits::low_mask(bits);
                records.push((i, Record::new(TernaryKey::ternary(v & !dc, dc, bits), 0)));
            }
            let (row, valid) = build_row(&layout, slots, &records);
            let bank = MatchProcessorBank::new(layout);
            for _ in 0..200 {
                let probe = if rng.gen_range(0..3u32) == 0 {
                    let dc = crate::bits::low_mask(rng.gen_range(0..=bits));
                    SearchKey::with_mask(rng.gen::<u128>() & crate::bits::low_mask(bits), dc, bits)
                } else if records.is_empty() {
                    SearchKey::new(0, bits)
                } else {
                    let r = &records[rng.gen_range(0..records.len())].1;
                    SearchKey::new(r.key.value(), bits)
                };
                assert_eq!(
                    bank.first_match(&row, valid, slots, &probe),
                    bank.match_row(&row, valid, slots, &probe).first_match,
                    "layout {layout:?} probe {probe:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match layout width")]
    fn wrong_search_width_rejected() {
        let layout = RecordLayout::new(16, false, 0);
        let bank = MatchProcessorBank::new(layout);
        let row = vec![0u64; 1];
        let _ = bank.match_row(&row, 0, 1, &SearchKey::new(0, 8));
    }
}
