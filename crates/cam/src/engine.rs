//! [`SearchEngine`] implementations for the CAM baselines.
//!
//! Every device in this crate is a search substrate the paper compares
//! CA-RAM against, so each one plugs into the unified engine interface of
//! `ca-ram-core`. The reported `memory_accesses` is the device's natural
//! activity unit: 1 for a monolithic CAM search (the whole array compares
//! in one cycle), the number of activated banks for the `CoolCAMs` banked
//! TCAM.
//!
//! The exact-match devices ([`BinaryCam`], [`PreclassifiedCam`],
//! [`PrecomputedBcam`]) reject ternary records at `insert` with
//! [`CaRamError::TernaryNotEnabled`] and, like their inherent `search`
//! methods, panic when handed a masked search key — a binary CAM has no
//! don't-care symbol to compare with (Sec. 2.2).

use ca_ram_core::engine::{EngineHit, EngineOutcome, EngineReport, SearchEngine};
use ca_ram_core::error::{CaRamError, Result};
use ca_ram_core::key::{SearchKey, TernaryKey};
use ca_ram_core::layout::Record;

use crate::banked::BankedTcam;
use crate::bcam::BinaryCam;
use crate::preclassified::PreclassifiedCam;
use crate::precompute::PrecomputedBcam;
use crate::tcam::{Tcam, TcamEntry};
use crate::update::SortedTcam;

fn check_width(got: u32, expected: u32) -> Result<()> {
    if got == expected {
        Ok(())
    } else {
        Err(CaRamError::KeyWidthMismatch { expected, got })
    }
}

fn check_binary(key: &TernaryKey) -> Result<()> {
    if key.dont_care() == 0 {
        Ok(())
    } else {
        Err(CaRamError::TernaryNotEnabled)
    }
}

impl SearchEngine for Tcam {
    fn name(&self) -> &'static str {
        "tcam"
    }

    fn key_bits(&self) -> u32 {
        Tcam::key_bits(self)
    }

    fn search(&self, key: &SearchKey) -> EngineOutcome {
        EngineOutcome {
            hit: Tcam::search(self, key).map(|m| EngineHit {
                key: m.entry.key,
                data: m.entry.data,
            }),
            memory_accesses: 1,
        }
    }

    fn insert(&mut self, record: Record) -> Result<()> {
        check_width(record.key.bits(), Tcam::key_bits(self))?;
        self.push(TcamEntry {
            key: record.key,
            data: record.data,
        })
        .map(|_| ())
        .ok_or(CaRamError::CapacityExhausted {
            capacity: self.capacity() as u64,
        })
    }

    fn delete(&mut self, key: &TernaryKey) -> u32 {
        self.remove_key(key)
    }

    fn occupancy(&self) -> EngineReport {
        EngineReport {
            records: Some(self.len() as u64),
            capacity: Some(self.capacity() as u64),
        }
    }
}

impl SearchEngine for BinaryCam {
    fn name(&self) -> &'static str {
        "bcam"
    }

    fn key_bits(&self) -> u32 {
        BinaryCam::key_bits(self)
    }

    fn search(&self, key: &SearchKey) -> EngineOutcome {
        EngineOutcome {
            hit: BinaryCam::search(self, key).map(|(_, e)| EngineHit {
                key: TernaryKey::binary(e.key, BinaryCam::key_bits(self)),
                data: e.data,
            }),
            memory_accesses: 1,
        }
    }

    fn insert(&mut self, record: Record) -> Result<()> {
        check_binary(&record.key)?;
        check_width(record.key.bits(), BinaryCam::key_bits(self))?;
        self.push(record.key.value(), record.data)
            .map(|_| ())
            .ok_or(CaRamError::CapacityExhausted {
                capacity: self.capacity() as u64,
            })
    }

    fn delete(&mut self, key: &TernaryKey) -> u32 {
        if key.dont_care() != 0 {
            return 0;
        }
        self.remove(key.value())
    }

    fn occupancy(&self) -> EngineReport {
        EngineReport {
            records: Some(self.len() as u64),
            capacity: Some(self.capacity() as u64),
        }
    }
}

impl SearchEngine for BankedTcam {
    fn name(&self) -> &'static str {
        "banked-tcam"
    }

    fn key_bits(&self) -> u32 {
        BankedTcam::key_bits(self)
    }

    /// `memory_accesses` is the number of activated banks — the activity
    /// the `CoolCAMs` scheme minimizes.
    fn search(&self, key: &SearchKey) -> EngineOutcome {
        let m = BankedTcam::search(self, key);
        EngineOutcome {
            hit: m.hit.map(|t| EngineHit {
                key: t.entry.key,
                data: t.entry.data,
            }),
            memory_accesses: m.banks_searched,
        }
    }

    fn insert(&mut self, record: Record) -> Result<()> {
        check_width(record.key.bits(), BankedTcam::key_bits(self))?;
        BankedTcam::insert(self, record.key, record.data)
            .map(|_| ())
            .ok_or(CaRamError::CapacityExhausted {
                capacity: u64::from(self.bank_count()) * self.bank_capacity() as u64,
            })
    }

    fn delete(&mut self, key: &TernaryKey) -> u32 {
        BankedTcam::delete(self, key)
    }

    /// `records` counts stored copies, so a prefix duplicated across banks
    /// counts once per bank (as in the real device's occupancy).
    fn occupancy(&self) -> EngineReport {
        EngineReport {
            records: Some(self.len() as u64),
            capacity: Some(u64::from(self.bank_count()) * self.bank_capacity() as u64),
        }
    }
}

impl SearchEngine for PreclassifiedCam {
    fn name(&self) -> &'static str {
        "preclassified-cam"
    }

    fn key_bits(&self) -> u32 {
        PreclassifiedCam::key_bits(self)
    }

    fn search(&self, key: &SearchKey) -> EngineOutcome {
        let m = PreclassifiedCam::search(self, key);
        EngineOutcome {
            hit: m.hit.map(|e| EngineHit {
                key: TernaryKey::binary(e.key, PreclassifiedCam::key_bits(self)),
                data: e.data,
            }),
            memory_accesses: 1,
        }
    }

    fn insert(&mut self, record: Record) -> Result<()> {
        check_binary(&record.key)?;
        check_width(record.key.bits(), PreclassifiedCam::key_bits(self))?;
        PreclassifiedCam::insert(self, record.key.value(), record.data)
            .map(|_| ())
            .ok_or(CaRamError::CapacityExhausted {
                capacity: self.capacity() as u64,
            })
    }

    fn delete(&mut self, key: &TernaryKey) -> u32 {
        if key.dont_care() != 0 {
            return 0;
        }
        self.remove(key.value())
    }

    fn occupancy(&self) -> EngineReport {
        EngineReport {
            records: Some(self.len() as u64),
            capacity: Some(self.capacity() as u64),
        }
    }
}

impl SearchEngine for PrecomputedBcam {
    fn name(&self) -> &'static str {
        "precomputed-bcam"
    }

    fn key_bits(&self) -> u32 {
        PrecomputedBcam::key_bits(self)
    }

    fn search(&self, key: &SearchKey) -> EngineOutcome {
        let m = PrecomputedBcam::search(self, key);
        EngineOutcome {
            hit: m.hit.map(|e| EngineHit {
                key: TernaryKey::binary(e.key, PrecomputedBcam::key_bits(self)),
                data: e.data,
            }),
            memory_accesses: 1,
        }
    }

    fn insert(&mut self, record: Record) -> Result<()> {
        check_binary(&record.key)?;
        check_width(record.key.bits(), PrecomputedBcam::key_bits(self))?;
        PrecomputedBcam::insert(self, record.key.value(), record.data)
            .map(|_| ())
            .ok_or(CaRamError::CapacityExhausted {
                capacity: self.capacity() as u64,
            })
    }

    fn delete(&mut self, key: &TernaryKey) -> u32 {
        if key.dont_care() != 0 {
            return 0;
        }
        self.remove(key.value())
    }

    fn occupancy(&self) -> EngineReport {
        EngineReport {
            records: Some(self.len() as u64),
            capacity: Some(self.capacity() as u64),
        }
    }
}

impl SearchEngine for SortedTcam {
    fn name(&self) -> &'static str {
        "sorted-tcam"
    }

    fn key_bits(&self) -> u32 {
        self.device().key_bits()
    }

    fn search(&self, key: &SearchKey) -> EngineOutcome {
        EngineOutcome {
            hit: SortedTcam::search(self, key).map(|m| EngineHit {
                key: m.entry.key,
                data: m.entry.data,
            }),
            memory_accesses: 1,
        }
    }

    fn insert(&mut self, record: Record) -> Result<()> {
        check_width(record.key.bits(), self.device().key_bits())?;
        SortedTcam::insert(self, record.key, record.data)
            .map(|_| ())
            .ok_or(CaRamError::CapacityExhausted {
                capacity: self.device().capacity() as u64,
            })
    }

    fn delete(&mut self, key: &TernaryKey) -> u32 {
        let mut removed = 0u32;
        while SortedTcam::delete(self, key).is_some() {
            removed += 1;
        }
        removed
    }

    fn occupancy(&self) -> EngineReport {
        EngineReport {
            records: Some(self.len() as u64),
            capacity: Some(self.device().capacity() as u64),
        }
    }
}
