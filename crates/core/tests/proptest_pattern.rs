//! Property tests for the pattern compiler: tables built from
//! [`compile`]d plans must agree with the [`ReferenceModel`] on every
//! probe, for randomly drawn rule sets.
//!
//! Two pattern families are exercised end to end:
//!
//! - **Five-tuple classifiers** — random prefix/exact/range/wildcard
//!   field combinations are lowered through
//!   [`CompiledPlan::lower_entry`] (range fields prefix-expand into
//!   multi-entry covers), fed to both the compiled [`CaRamTable`] and the
//!   model via [`ReferenceModel::insert_compiled`], then probed with
//!   member headers, near-miss headers, and fully random headers.
//! - **Nearest-match dictionaries** — exact words are stored, then every
//!   probe of a compiled [`Pattern::NearestMatch`] ladder is checked
//!   against the model, and the ladder's overall hit/miss outcome is
//!   checked against a brute-force unit-Hamming scan of the stored set.
//!
//! Every answer is judged by [`Expected::admits`], so tie-breaks between
//! equal-care entries are accepted either way while any lost rule or
//! wrong-priority answer fails.
//!
//! [`CompiledPlan::lower_entry`]: ca_ram_core::pattern::CompiledPlan::lower_entry
//! [`Expected::admits`]: ca_ram_core::oracle::Expected::admits

use ca_ram_core::key::SearchKey;
use ca_ram_core::oracle::ReferenceModel;
use ca_ram_core::pattern::{compile, FieldPattern, GeometryHint, Pattern, PatternSpec};
use ca_ram_core::table::CaRamTable;
use proptest::prelude::*;

/// A generous geometry: 256 rows of 16 slots so even rule sets whose
/// wildcards overlap several index bits (multiplying home copies) load
/// without overflow, keeping the test free of rollback bookkeeping.
fn hint() -> GeometryHint {
    GeometryHint {
        rows_log2: 8,
        slots_per_row: 16,
        data_bits: 32,
    }
}

fn prefix_mask32(len: u32) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

/// One random classifier rule decoded from two raw 128-bit draws.
///
/// Source/destination prefixes keep at least 2 cared top bits so the
/// round-robin index bits sampled from those fields stay cared and the
/// home-copy fan-out is bounded by the port/proto wildcards alone.
struct RawRule {
    src: u32,
    src_len: u32,
    dst: u32,
    dst_len: u32,
    sport: FieldPattern,
    dport: FieldPattern,
    proto: Option<u8>,
}

#[allow(clippy::cast_possible_truncation)]
fn decode_rule(raw: u128, aux: u128) -> RawRule {
    let src_len = 2 + (aux % 31) as u32; // 2..=32
    let dst_len = 2 + ((aux >> 8) % 31) as u32;
    let flags = (aux >> 16) as u8;
    let sport_a = (raw >> 48) as u16;
    let sport_b = (raw >> 32) as u16;
    let sport = if flags & 1 == 0 {
        FieldPattern::Exact(u128::from(sport_a))
    } else {
        FieldPattern::Range {
            lo: u128::from(sport_a.min(sport_b)),
            hi: u128::from(sport_a.max(sport_b)),
        }
    };
    let dport = if flags & 2 == 0 {
        FieldPattern::Exact(u128::from((raw >> 16) as u16))
    } else {
        FieldPattern::Any
    };
    let proto = if flags & 4 == 0 {
        Some((raw >> 8) as u8)
    } else {
        None
    };
    RawRule {
        src: ((raw >> 96) as u32) & prefix_mask32(src_len),
        src_len,
        dst: ((raw >> 64) as u32) & prefix_mask32(dst_len),
        dst_len,
        sport,
        dport,
        proto,
    }
}

impl RawRule {
    fn pattern(&self) -> Pattern {
        Pattern::MaskedMultiField {
            fields: vec![
                FieldPattern::Prefix {
                    value: u128::from(self.src),
                    len: self.src_len,
                },
                FieldPattern::Prefix {
                    value: u128::from(self.dst),
                    len: self.dst_len,
                },
                self.sport,
                self.dport,
                self.proto
                    .map_or(FieldPattern::Any, |p| FieldPattern::Exact(u128::from(p))),
                FieldPattern::Exact(0), // pad
            ],
        }
    }

    /// A header inside the rule, with `noise` filling the host bits.
    #[allow(clippy::cast_possible_truncation)]
    fn member_header(&self, noise: u128) -> u128 {
        let src = self.src | ((noise as u32) & !prefix_mask32(self.src_len));
        let dst = self.dst | (((noise >> 32) as u32) & !prefix_mask32(self.dst_len));
        let sport = match self.sport {
            FieldPattern::Exact(v) => v as u16,
            FieldPattern::Range { lo, hi } => {
                let span = hi - lo + 1;
                (lo + ((noise >> 64) % span)) as u16
            }
            _ => (noise >> 64) as u16,
        };
        let dport = match self.dport {
            FieldPattern::Exact(v) => v as u16,
            _ => (noise >> 80) as u16,
        };
        let proto = self.proto.unwrap_or((noise >> 96) as u8);
        (u128::from(src) << 96)
            | (u128::from(dst) << 64)
            | (u128::from(sport) << 48)
            | (u128::from(dport) << 32)
            | (u128::from(proto) << 24)
    }
}

/// Inserts every lowered entry of every rule into both the table and the
/// model. The generous [`hint`] geometry is sized so inserts never fail;
/// a failure here is itself a finding (the compiled layout overflowed on
/// a load the plan was built for).
fn load(
    table: &mut CaRamTable,
    model: &mut ReferenceModel,
    plan: &ca_ram_core::pattern::CompiledPlan,
    rules: &[RawRule],
) -> Result<(), TestCaseError> {
    for (i, rule) in rules.iter().enumerate() {
        let entries = plan
            .lower_entry(&rule.pattern(), i as u64)
            .expect("well-formed rule lowers");
        for e in &entries {
            prop_assert!(
                table.insert_sorted(*e).is_ok(),
                "compiled table overflowed under its own plan's geometry"
            );
        }
        model.insert_compiled(&entries);
    }
    Ok(())
}

fn check_probe(
    table: &CaRamTable,
    model: &ReferenceModel,
    key: &SearchKey,
) -> Result<(), TestCaseError> {
    let expected = model.expected(key);
    let got = table.search(key).hit.map(|h| h.record.data);
    prop_assert!(
        expected.admits(got),
        "search({key:?}) returned {got:?}, model accepts {:?}",
        expected.accepted
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random five-tuple rule sets: member, near-miss, and random headers
    /// all agree with the reference model on the compiled table.
    #[test]
    fn compiled_five_tuple_agrees_with_reference_model(
        raws in prop::collection::vec((any::<u128>(), any::<u128>()), 1..10),
        headers in prop::collection::vec(any::<u128>(), 8),
    ) {
        let spec = PatternSpec::five_tuple();
        let plan = compile(&spec, &hint()).expect("five-tuple compiles");
        let mut table = plan.build_table().expect("geometry is valid");
        let mut model = ReferenceModel::new(spec.key_bits());
        let rules: Vec<RawRule> =
            raws.iter().map(|&(raw, aux)| decode_rule(raw, aux)).collect();
        load(&mut table, &mut model, &plan, &rules)?;

        for (i, rule) in rules.iter().enumerate() {
            let noise = raws[i].0.rotate_left(77) ^ raws[i].1;
            let member = rule.member_header(noise);
            check_probe(&table, &model, &SearchKey::new(member, 128))?;
            // Perturb one bit of the source network: usually a miss for
            // this rule, possibly a hit for another — the model decides.
            let near = member ^ (1u128 << (96 + (noise % 32)));
            check_probe(&table, &model, &SearchKey::new(near, 128))?;
        }
        for &h in &headers {
            // Random headers, pad forced to the stored form.
            check_probe(&table, &model, &SearchKey::new(h & !0xff_ffff, 128))?;
        }
    }

    /// Compiled nearest-match ladders: every probe of the ladder agrees
    /// with the model, and the ladder's overall outcome matches a
    /// brute-force byte-Hamming scan of the stored words.
    #[test]
    fn compiled_nearest_ladder_agrees_with_reference_model(
        words in prop::collection::vec(any::<u128>(), 1..12),
        typo_sel in any::<u128>(),
    ) {
        const WORD_BYTES: u32 = 6;
        const MAX_DISTANCE: u32 = 2;
        let mask = (1u128 << (WORD_BYTES * 8)) - 1;
        let spec = PatternSpec::dictionary(WORD_BYTES, MAX_DISTANCE);
        let plan = compile(&spec, &hint()).expect("dictionary compiles");
        let mut table = plan.build_table().expect("geometry is valid");
        let mut model = ReferenceModel::new(spec.key_bits());
        let stored: Vec<u128> = words.iter().map(|w| w & mask).collect();
        for (i, &w) in stored.iter().enumerate() {
            let entries = plan
                .lower_entry(&Pattern::Exact { value: w }, i as u64)
                .expect("exact word lowers");
            for e in &entries {
                prop_assert!(table.insert_sorted(*e).is_ok());
            }
            model.insert_compiled(&entries);
        }

        // Query: one stored word with `d` bytes substituted.
        let base = stored[(typo_sel % stored.len() as u128) as usize];
        let d = ((typo_sel >> 8) % u128::from(MAX_DISTANCE + 1)) as u32;
        let mut query = base;
        for k in 0..d {
            let byte = ((typo_sel >> (16 + 8 * k)) % u128::from(WORD_BYTES)) as u32;
            let flip = ((typo_sel >> (64 + 8 * k)) & 0xff) | 1; // non-zero: really substituted
            query ^= flip << (8 * byte);
        }

        let ladder = plan
            .lower_query(&Pattern::NearestMatch { value: query, max_distance: MAX_DISTANCE })
            .expect("ladder lowers");
        for probe in ladder.probes() {
            check_probe(&table, &model, probe)?;
        }

        let hamming = |a: u128, b: u128| -> u32 {
            (0..WORD_BYTES)
                .filter(|k| ((a ^ b) >> (8 * k)) & 0xff != 0)
                .count() as u32
        };
        let reachable = stored.iter().any(|&w| hamming(w, query) <= MAX_DISTANCE);
        let outcome = ladder.execute(&table);
        prop_assert_eq!(
            outcome.hit.is_some(),
            reachable,
            "ladder outcome disagrees with brute-force Hamming scan for query {:#x}",
            query
        );
    }
}
