//! Threaded stress tests for the lock-free telemetry accumulators: a
//! concurrent snapshot must equal the serial accumulation of every
//! shard's contribution, for both per-event recording and whole-shard
//! merging.

use std::sync::Arc;

use ca_ram_core::stats::{AtomicSearchStats, SearchStats};
use ca_ram_core::telemetry::{
    AtomicHistogram, Histogram, HistogramSink, ProbeSummary, TelemetrySink,
};

const THREADS: u64 = 8;
const EVENTS_PER_THREAD: u64 = 10_000;

/// The deterministic event stream thread `t` feeds in: `(hit, accesses)`.
fn event(t: u64, i: u64) -> (bool, u32) {
    let x = t * EVENTS_PER_THREAD + i;
    #[allow(clippy::cast_possible_truncation)]
    let accesses = (x % 7 + 1) as u32;
    (!x.is_multiple_of(3), accesses)
}

#[test]
fn atomic_search_stats_concurrent_record_equals_serial_sum() {
    let shared = Arc::new(AtomicSearchStats::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                for i in 0..EVENTS_PER_THREAD {
                    let (hit, accesses) = event(t, i);
                    shared.record(hit, accesses);
                }
            });
        }
    });

    let mut expected = SearchStats::new();
    for t in 0..THREADS {
        for i in 0..EVENTS_PER_THREAD {
            let (hit, accesses) = event(t, i);
            expected.record(hit, accesses);
        }
    }
    assert_eq!(shared.snapshot(), expected);
}

#[test]
fn atomic_search_stats_concurrent_merge_equals_serial_sum() {
    let shared = Arc::new(AtomicSearchStats::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                // Each thread accumulates privately, then merges the whole
                // shard at once — the parallel-batch pattern.
                let mut shard = SearchStats::new();
                for i in 0..EVENTS_PER_THREAD {
                    let (hit, accesses) = event(t, i);
                    shard.record(hit, accesses);
                }
                shared.merge(&shard);
            });
        }
    });

    let snap = shared.snapshot();
    assert_eq!(snap.searches, THREADS * EVENTS_PER_THREAD);
    let mut expected = SearchStats::new();
    for t in 0..THREADS {
        for i in 0..EVENTS_PER_THREAD {
            let (hit, accesses) = event(t, i);
            expected.record(hit, accesses);
        }
    }
    assert_eq!(snap, expected);
}

#[test]
fn atomic_histogram_concurrent_record_and_merge_equal_serial_sum() {
    let recorded = Arc::new(AtomicHistogram::new());
    let merged = Arc::new(AtomicHistogram::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let recorded = Arc::clone(&recorded);
            let merged = Arc::clone(&merged);
            scope.spawn(move || {
                let mut shard = Histogram::new();
                for i in 0..EVENTS_PER_THREAD {
                    // Spread values across several power-of-two buckets,
                    // including zero and a large outlier.
                    let value = if i % 97 == 0 { 1 << 20 } else { (t + i) % 19 };
                    recorded.record(value);
                    shard.record(value);
                }
                merged.merge(&shard);
            });
        }
    });

    let mut expected = Histogram::new();
    for t in 0..THREADS {
        for i in 0..EVENTS_PER_THREAD {
            let value = if i % 97 == 0 { 1 << 20 } else { (t + i) % 19 };
            expected.record(value);
        }
    }
    assert_eq!(recorded.snapshot(), expected);
    assert_eq!(merged.snapshot(), expected);
}

#[test]
fn histogram_sink_concurrent_search_complete_is_exact() {
    // Summaries straddle the scoreboard boundary: small values take the
    // one-atomic fast path, large ones the full slow path. The folded
    // snapshot must be exact either way.
    let sink = Arc::new(HistogramSink::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let sink = Arc::clone(&sink);
            scope.spawn(move || {
                for i in 0..EVENTS_PER_THREAD {
                    let x = t * EVENTS_PER_THREAD + i;
                    sink.search_complete(&ProbeSummary {
                        hit: x.is_multiple_of(2),
                        row_fetches: x % 11, // 0..=10: both sides of the limit
                        probe_length: x % 5,
                        homes: 1,
                    });
                }
            });
        }
    });

    let mut stats = SearchStats::new();
    let mut probe_length = Histogram::new();
    let mut row_fetches = Histogram::new();
    for t in 0..THREADS {
        for i in 0..EVENTS_PER_THREAD {
            let x = t * EVENTS_PER_THREAD + i;
            #[allow(clippy::cast_possible_truncation)]
            stats.record(x.is_multiple_of(2), (x % 11) as u32);
            probe_length.record(x % 5);
            row_fetches.record(x % 11);
        }
    }
    let snap = sink.snapshot();
    assert_eq!(snap.stats, stats);
    assert_eq!(snap.probe_length, probe_length);
    assert_eq!(snap.row_fetches, row_fetches);

    sink.reset();
    let cleared = sink.snapshot();
    assert_eq!(cleared.stats, SearchStats::new());
    assert!(cleared.probe_length.is_empty());
    assert!(cleared.row_fetches.is_empty());
}
