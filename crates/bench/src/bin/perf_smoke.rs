//! Simulator-throughput smoke test for the batched search pipeline.
//!
//! Not a paper artifact: this measures the *simulator itself*. For each
//! Table 2 IP design it loads a synthetic BGP table, replays an address
//! trace three ways — the pre-optimization reference loop
//! (`search_baseline`: per-lookup heap allocation, decode-every-slot), the
//! allocation-free serial batch (`search_batch`), and the sharded parallel
//! batch (`search_batch_parallel`) — and reports keys/sec for each plus the
//! measured mean memory accesses per search. Results are written as JSON
//! for tracking across revisions.
//!
//! Usage: `perf_smoke [--prefixes N] [--lookups N] [--seed S] [--threads T]
//! [--out PATH]`

use std::sync::Arc;

use ca_ram_bench::designs::{build_ip_table, ip_designs, load_prefixes};
use ca_ram_bench::driver::{keys_per_sec, member_trace, time};
use ca_ram_bench::{ensure, rule, Cli, DesignThroughput, PatternThroughput, Result, SearchReport};
use ca_ram_core::kernel::{self, Kernel};
use ca_ram_core::key::SearchKey;
use ca_ram_core::pattern::{compile, GeometryHint, Pattern, QueryPlan};
use ca_ram_core::table::{CaRamTable, SearchOutcome};
use ca_ram_core::telemetry::HistogramSink;
use ca_ram_workloads::bgp::{generate, BgpConfig};
use ca_ram_workloads::dictionary::{self, DictionaryConfig};
use ca_ram_workloads::packet::{self, PacketClassConfig};

fn run_baseline(table: &CaRamTable, keys: &[SearchKey]) -> (Vec<SearchOutcome>, f64) {
    time(|| keys.iter().map(|k| table.search_baseline(k)).collect())
}

/// Interleaved best-of-21 timing of two tables' serial batch paths over
/// the same trace (alternating which side runs first each round, so
/// machine-load drift and ordering effects hit both sides equally).
/// Returns `(best_a_secs, best_b_secs)`.
fn timed_serial_pair(a: &CaRamTable, b: &CaRamTable, keys: &[SearchKey]) -> (f64, f64, f64) {
    // Fold the outcomes into a checksum instead of materializing the
    // outcome vector: the timed region then measures the search path, not
    // 100k × 64-byte outcome stores, and the checksum keeps the searches
    // observable (and un-elidable).
    fn fold_batch(t: &CaRamTable, keys: &[SearchKey]) -> u64 {
        let mut acc = 0u64;
        t.search_batch_into(keys, |o| {
            acc = acc
                .wrapping_add(u64::from(o.memory_accesses))
                .wrapping_add(o.hit.map_or(0, |h| h.bucket ^ u64::from(h.slot)));
        });
        acc
    }
    // Warm both paths (page in both tables, settle the branch predictors).
    std::hint::black_box(fold_batch(a, keys));
    std::hint::black_box(fold_batch(b, keys));
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    let mut ratios = [0.0f64; 21];
    for (round, ratio) in ratios.iter_mut().enumerate() {
        // Alternate which side runs first so neither systematically
        // inherits a warmer cache.
        let (ta, tb) = if round % 2 == 0 {
            let ta = time(|| std::hint::black_box(fold_batch(a, keys))).1;
            let tb = time(|| std::hint::black_box(fold_batch(b, keys))).1;
            (ta, tb)
        } else {
            let tb = time(|| std::hint::black_box(fold_batch(b, keys))).1;
            let ta = time(|| std::hint::black_box(fold_batch(a, keys))).1;
            (ta, tb)
        };
        best_a = best_a.min(ta);
        best_b = best_b.min(tb);
        *ratio = ta / tb;
    }
    // The gates consume the *median per-round ratio*, not the quotient of
    // the two bests: a background-load spike lands on one round's pair —
    // inflating both sides of that round — instead of on one side of the
    // final quotient, so the gate survives noisy shared CI boxes.
    ratios.sort_unstable_by(f64::total_cmp);
    (best_a, best_b, ratios[ratios.len() / 2])
}

/// Telemetry overhead of the serial batch path, in percent: `traced`
/// (sink installed) vs `plain`.
fn serial_overhead_pct(plain: &CaRamTable, traced: &CaRamTable, keys: &[SearchKey]) -> f64 {
    let (_, _, traced_over_plain) = timed_serial_pair(traced, plain, keys);
    (traced_over_plain - 1.0) * 100.0
}

/// Measures one pattern-compiled workload: walk every query plan once to
/// count probes and hits, then time a second full pass.
fn measure_plans(
    scenario: &'static str,
    entries: usize,
    table: &CaRamTable,
    plans: &[QueryPlan],
) -> PatternThroughput {
    let mut hits = 0usize;
    let mut probes = 0usize;
    for plan in plans {
        for probe in plan.probes() {
            probes += 1;
            if table.search(probe).hit.is_some() {
                hits += 1;
                break;
            }
        }
    }
    let (_, secs) = time(|| {
        plans
            .iter()
            .filter(|p| p.execute(table).hit.is_some())
            .count()
    });
    #[allow(clippy::cast_precision_loss)]
    PatternThroughput {
        scenario,
        entries,
        lookups: plans.len(),
        keys_per_sec: keys_per_sec(plans.len(), secs),
        probes_per_query: probes as f64 / plans.len() as f64,
        hit_rate: hits as f64 / plans.len() as f64,
    }
}

/// The two pattern-compiled end-to-end workloads: 5-tuple packet
/// classification (masked multi-field rules, port ranges prefix-expanded)
/// and a spell-check dictionary (nearest-match probe ladders).
fn pattern_workloads(lookups: usize, seed: u64) -> Result<Vec<PatternThroughput>> {
    let mut out = Vec::new();

    // Packet classification: 500 rules compiled onto a ternary table whose
    // round-robin bit index taps the top bits of every header field.
    let rules = packet::generate(&PacketClassConfig {
        rules: 500,
        min_src_len: 14,
        seed,
    });
    let plan = compile(
        &packet::classifier_spec(),
        &GeometryHint {
            rows_log2: 11,
            slots_per_row: 16,
            data_bits: 32,
        },
    )
    .expect("five-tuple spec compiles");
    let mut table = plan.build_table()?;
    for r in &rules {
        let records = plan
            .lower_entry(&r.to_pattern(), r.action)
            .expect("generated rules lower");
        for rec in records {
            table
                .insert(rec)
                .unwrap_or_else(|e| panic!("inserting rule {r:?}: {e}"));
        }
    }
    let trace = packet::flow_trace(&rules, lookups, 0.8, seed ^ 0xF10);
    let plans: Vec<QueryPlan> = trace
        .iter()
        .map(|p| {
            plan.lower_query(&Pattern::Exact { value: p.pack() })
                .expect("exact headers lower")
        })
        .collect();
    out.push(measure_plans("packet-class", rules.len(), &table, &plans));

    // Spell-check dictionary: binary 8-char words, misspelled queries
    // resolved through distance-2 nearest-match ladders.
    let words = dictionary::generate(&DictionaryConfig {
        words: 5_000,
        word_len: 8,
        seed: seed ^ 0xD1C7,
    });
    let plan = compile(
        &dictionary::dictionary_spec(8, 2),
        &GeometryHint {
            rows_log2: 11,
            slots_per_row: 8,
            data_bits: 32,
        },
    )
    .expect("dictionary spec compiles");
    let mut table = plan.build_table()?;
    for (i, w) in words.iter().enumerate() {
        let data = u64::try_from(i).expect("word count fits u64");
        let records = plan
            .lower_entry(
                &Pattern::Exact {
                    value: dictionary::pack_word(w),
                },
                data,
            )
            .expect("words lower");
        for rec in records {
            table
                .insert(rec)
                .unwrap_or_else(|e| panic!("inserting word {w:?}: {e}"));
        }
    }
    let typos = dictionary::typo_trace(&words, lookups / 10, 2, seed ^ 0x7E0);
    let plans: Vec<QueryPlan> = typos
        .iter()
        .map(|t| {
            plan.lower_query(&Pattern::NearestMatch {
                value: dictionary::pack_word(&t.query),
                max_distance: 2,
            })
            .expect("typo ladders lower")
        })
        .collect();
    let r = measure_plans("dictionary-d2", words.len(), &table, &plans);
    assert!(
        (r.hit_rate - 1.0).abs() < f64::EPSILON,
        "every typo is within distance 2 of its word; hit rate {}",
        r.hit_rate
    );
    out.push(r);

    Ok(out)
}

fn main() -> Result<()> {
    let cli = Cli::from_env();
    let prefixes_n: usize = cli.parse("prefixes", 20_000)?;
    let lookups: usize = cli.parse("lookups", 100_000)?;
    let seed: u64 = cli.parse("seed", 0x1103)?;
    let threads: usize = cli.parse("threads", 0)?;
    let out_path = cli.value("out").unwrap_or("BENCH_search.json").to_string();
    ensure(prefixes_n > 0, "--prefixes must be > 0")?;
    ensure(
        lookups > 0,
        "--lookups must be > 0 (speedups are undefined on an empty trace)",
    )?;

    let mut config = BgpConfig::scaled(prefixes_n);
    config.seed = seed;
    let prefixes = generate(&config);
    let weights = vec![1.0; prefixes.len()];

    // Address trace: random member addresses of random prefixes, so every
    // lookup hits (the paper measures successful-search cost).
    let keys = member_trace(&prefixes, lookups, seed ^ 0x5EED);

    let kernel = kernel::active_kernel();
    println!(
        "Simulator search throughput ({prefixes_n} prefixes, {lookups} lookups, \
         {} kernel)",
        kernel.name()
    );
    println!(
        "{:^6} {:>14} {:>14} {:>14} {:>14} {:>8} {:>8} {:>7} {:>8}",
        "Design",
        "base keys/s",
        "scalar keys/s",
        "serial keys/s",
        "par keys/s",
        "ser x",
        "par x",
        "simd x",
        "mem/srch"
    );
    rule(102);

    let mut results: Vec<DesignThroughput> = Vec::new();
    for d in ip_designs() {
        let mut table = build_ip_table(&d);
        load_prefixes(&mut table, &prefixes, &weights);
        // The scalar twin: identical geometry and contents, but its match
        // processors captured the scalar kernel at build time.
        let scalar_table = kernel::with_forced(Kernel::Scalar, || {
            let mut t = build_ip_table(&d);
            load_prefixes(&mut t, &prefixes, &weights);
            t
        });
        assert_eq!(scalar_table.kernel(), Kernel::Scalar, "design {}", d.name);

        // Warm-up + correctness: all three paths and the scalar twin must
        // agree exactly, and the parallel stats must be the shard-exact
        // serial accumulation.
        let (base_outcomes, _) = run_baseline(&table, &keys);
        let serial_outcomes = table.search_batch(&keys);
        let (parallel_outcomes, stats) = table.search_batch_parallel_stats(&keys, threads);
        assert_eq!(base_outcomes, serial_outcomes, "design {}", d.name);
        assert_eq!(serial_outcomes, parallel_outcomes, "design {}", d.name);
        assert_eq!(
            serial_outcomes,
            scalar_table.search_batch(&keys),
            "scalar twin diverged on design {}",
            d.name
        );
        assert_eq!(stats.searches, keys.len() as u64, "design {}", d.name);

        let (_, base_secs) = run_baseline(&table, &keys);
        let (scalar_secs, serial_secs, scalar_over_simd) =
            timed_serial_pair(&scalar_table, &table, &keys);
        let (_, parallel_secs) = time(|| table.search_batch_parallel(&keys, threads));

        let r = DesignThroughput {
            name: d.name,
            baseline_kps: keys_per_sec(keys.len(), base_secs),
            scalar_kps: keys_per_sec(keys.len(), scalar_secs),
            serial_kps: keys_per_sec(keys.len(), serial_secs),
            parallel_kps: keys_per_sec(keys.len(), parallel_secs),
            simd_speedup: scalar_over_simd,
            mean_accesses: stats.measured_amal(),
        };
        println!(
            "{:^6} {:>14.0} {:>14.0} {:>14.0} {:>14.0} {:>7.2}x {:>7.2}x {:>6.2}x {:>8.3}",
            r.name,
            r.baseline_kps,
            r.scalar_kps,
            r.serial_kps,
            r.parallel_kps,
            r.serial_speedup(),
            r.parallel_speedup(),
            r.simd_speedup,
            r.mean_accesses,
        );
        results.push(r);
    }
    rule(102);

    // Telemetry overhead: the same serial batch on design A with a shallow
    // histogram sink installed vs an uninstrumented twin table (whose cost
    // already includes the one disabled-sink null-pointer branch).
    let telemetry_overhead_pct = {
        let mut plain = build_ip_table(&ip_designs()[0]);
        load_prefixes(&mut plain, &prefixes, &weights);
        let mut traced = build_ip_table(&ip_designs()[0]);
        load_prefixes(&mut traced, &prefixes, &weights);
        traced.set_telemetry_sink(Arc::new(HistogramSink::new()));
        serial_overhead_pct(&plain, &traced, &keys)
    };
    println!(
        "telemetry-enabled serial batch overhead (design A, shallow sink): \
         {telemetry_overhead_pct:+.2}% (target < 5.00%) {}",
        if telemetry_overhead_pct < 5.0 {
            "PASS"
        } else {
            "MISS"
        }
    );

    // Pattern-compiled end-to-end workloads (single-probe classification
    // and multi-probe nearest match), reported alongside the designs.
    let patterns = pattern_workloads(lookups.min(20_000), seed)?;
    println!(
        "{:^14} {:>8} {:>8} {:>14} {:>12} {:>9}",
        "Pattern", "entries", "lookups", "keys/s", "probes/qry", "hit rate"
    );
    rule(80);
    for p in &patterns {
        println!(
            "{:^14} {:>8} {:>8} {:>14.0} {:>12.3} {:>9.4}",
            p.scenario, p.entries, p.lookups, p.keys_per_sec, p.probes_per_query, p.hit_rate
        );
    }
    rule(80);

    let report = SearchReport {
        prefixes: prefixes_n,
        lookups,
        threads,
        kernel: kernel.name().to_string(),
        telemetry_overhead_pct,
        designs: results,
        patterns,
    };
    let min_serial_speedup = report.min_serial_speedup();
    println!(
        "minimum serial speedup over baseline loop: {min_serial_speedup:.2}x (target >= 2.00x) {}",
        if min_serial_speedup >= 2.0 {
            "PASS"
        } else {
            "MISS"
        }
    );
    if kernel == Kernel::Scalar {
        println!(
            "minimum SIMD speedup over scalar kernel: n/a (scalar kernel active; \
             twins are identical)"
        );
    } else {
        let min_simd_speedup = report.min_simd_speedup();
        println!(
            "minimum SIMD speedup over scalar kernel (serial batch): \
             {min_simd_speedup:.2}x (target >= 1.30x) {}",
            if min_simd_speedup >= 1.3 {
                "PASS"
            } else {
                "MISS"
            }
        );
    }

    report.write(&out_path)?;
    println!("(wrote {out_path})");
    Ok(())
}
