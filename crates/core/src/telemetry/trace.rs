//! The [`TelemetrySink`] trait and its built-in sinks.
//!
//! Instrumented components ([`crate::table::CaRamTable`],
//! [`crate::subsystem::CaRamSubsystem`], the input-controller model) hold
//! an `Option<Arc<dyn TelemetrySink>>`. With no sink installed the hot
//! path pays a single pointer-null branch — the PR-1 performance gate is
//! preserved. With a sink installed, the traced search path reports:
//!
//! * per-stage events mirroring the paper's Fig. 4 pipeline (hash → row
//!   fetch → match → priority-decode/extract, plus the overflow probe);
//! * a [`ProbeSummary`] per completed search;
//! * bucket occupancy at insert time (the live Fig. 7 series);
//! * queue depth and wait cycles from the subsystem input controller.
//!
//! Every trait method has a no-op default, so a sink implements only what
//! it wants. [`HistogramSink`] is the production sink (lock-free
//! histograms, shareable across threads); [`TraceBuffer`] records discrete
//! events for tests; [`NullSink`] accepts everything and keeps nothing —
//! it exists to measure the cost of the traced path itself.

use std::sync::Arc;
use std::sync::Mutex;

use crate::stats::AtomicSearchStats;
use crate::stats::SearchStats;

use super::histogram::AtomicHistogram;
use super::histogram::Histogram;

/// One stage of the CA-RAM lookup pipeline (paper Fig. 4), plus the
/// overflow probe that handles spilled records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Index generation: key → home bucket(s).
    Hash,
    /// A row fetched from a SRAM/DRAM slice (one memory access).
    RowFetch,
    /// Parallel match across the fetched row's candidate keys.
    Match,
    /// Priority decode + field extraction of the winning candidate.
    Extract,
    /// Probe of the software-managed overflow structure.
    OverflowProbe,
}

impl Stage {
    /// Stable lowercase name used in exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Hash => "hash",
            Stage::RowFetch => "row_fetch",
            Stage::Match => "match",
            Stage::Extract => "extract",
            Stage::OverflowProbe => "overflow_probe",
        }
    }

    /// All stages, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Hash,
        Stage::RowFetch,
        Stage::Match,
        Stage::Extract,
        Stage::OverflowProbe,
    ];

    /// Index of this stage within [`Stage::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Stage::Hash => 0,
            Stage::RowFetch => 1,
            Stage::Match => 2,
            Stage::Extract => 3,
            Stage::OverflowProbe => 4,
        }
    }
}

/// Per-search roll-up delivered once the search resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSummary {
    /// Whether the search produced a match.
    pub hit: bool,
    /// Total rows fetched (main table + overflow), ≥ 1.
    pub row_fetches: u64,
    /// Displacement at which the search resolved: 0 = home bucket, `d` =
    /// d-th reach step. On a miss, the maximum displacement examined.
    pub probe_length: u64,
    /// Number of home buckets the key hashes to (1 for single-hash
    /// tables, 2 for dual-hash).
    pub homes: u64,
}

/// Receiver for telemetry events.
///
/// All methods default to no-ops. Implementations must be cheap and
/// non-blocking: they run inline on the search path of every thread.
pub trait TelemetrySink: Send + Sync {
    /// True if the sink wants per-stage [`TelemetrySink::stage`] events
    /// with match-vector popcounts. When false the traced path skips the
    /// full match-vector computation and keeps the early-exit matcher.
    fn wants_match_vectors(&self) -> bool {
        false
    }

    /// A pipeline stage fired. `detail` is stage-specific: candidate
    /// count for [`Stage::Hash`] (homes), slot count for
    /// [`Stage::RowFetch`], match-vector popcount for [`Stage::Match`],
    /// matched slot index for [`Stage::Extract`], overflow records
    /// scanned for [`Stage::OverflowProbe`].
    fn stage(&self, stage: Stage, detail: u64) {
        let _ = (stage, detail);
    }

    /// A search resolved.
    fn search_complete(&self, summary: &ProbeSummary) {
        let _ = summary;
    }

    /// A record was inserted into a bucket that now holds `occupancy`
    /// records (the live Fig. 7 data series).
    fn insert_occupancy(&self, occupancy: u32) {
        let _ = occupancy;
    }

    /// Input-controller queue depth observed at a service opportunity.
    fn queue_depth(&self, depth: u64) {
        let _ = depth;
    }

    /// A request waited `cycles` in the input-controller queue before
    /// being serviced.
    fn queue_wait(&self, cycles: u64) {
        let _ = cycles;
    }
}

/// Sink that accepts every event and records nothing. Used to measure the
/// overhead of the traced path itself (event dispatch, summary
/// construction) with zero recording cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {}

/// Plain-value snapshot of everything a [`HistogramSink`] has recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Flat hit/access counters, mirroring engine-level stats.
    pub stats: SearchStats,
    /// Distribution of [`ProbeSummary::probe_length`].
    pub probe_length: Histogram,
    /// Distribution of [`ProbeSummary::row_fetches`].
    pub row_fetches: Histogram,
    /// Distribution of match-vector popcounts (deep mode only).
    pub match_popcount: Histogram,
    /// Distribution of bucket occupancy observed at insert.
    pub insert_occupancy: Histogram,
    /// Distribution of input-controller queue depths.
    pub queue_depth: Histogram,
    /// Distribution of input-controller wait cycles.
    pub queue_wait: Histogram,
    /// Count of stage events by [`Stage::index`].
    pub stage_counts: [u64; 5],
}

/// Side of the [`HistogramSink`] scoreboard: probe lengths and row-fetch
/// counts below this go through the one-atomic fast path.
const COMBO_LIMIT: usize = 8;

/// The production sink: lock-free histograms fed from any number of
/// threads, snapshot on demand.
///
/// By default only per-search summaries and insert/queue events are
/// recorded — `wants_match_vectors()` is false, so the table keeps its
/// early-exit matcher and skips per-stage dispatch. Construct with
/// [`HistogramSink::deep`] to also count stage events and match-vector
/// popcounts (costs the full match-vector computation per row).
#[derive(Debug)]
pub struct HistogramSink {
    deep: bool,
    stats: AtomicSearchStats,
    probe_length: AtomicHistogram,
    row_fetches: AtomicHistogram,
    match_popcount: AtomicHistogram,
    insert_occupancy: AtomicHistogram,
    queue_depth: AtomicHistogram,
    queue_wait: AtomicHistogram,
    stage_counts: [core::sync::atomic::AtomicU64; 5],
    /// Scoreboard for the common case: one counter per
    /// `(hit, probe_length, row_fetches)` with both values `< COMBO_LIMIT`,
    /// so a typical search costs a single relaxed `fetch_add`. Snapshot
    /// folds the cells back into the exact stats and histograms.
    combo: [core::sync::atomic::AtomicU64; 2 * COMBO_LIMIT * COMBO_LIMIT],
}

impl Default for HistogramSink {
    fn default() -> Self {
        Self {
            deep: false,
            stats: AtomicSearchStats::default(),
            probe_length: AtomicHistogram::default(),
            row_fetches: AtomicHistogram::default(),
            match_popcount: AtomicHistogram::default(),
            insert_occupancy: AtomicHistogram::default(),
            queue_depth: AtomicHistogram::default(),
            queue_wait: AtomicHistogram::default(),
            stage_counts: core::array::from_fn(|_| core::sync::atomic::AtomicU64::new(0)),
            combo: core::array::from_fn(|_| core::sync::atomic::AtomicU64::new(0)),
        }
    }
}

impl HistogramSink {
    /// A shallow sink: summaries, inserts, and queue events only.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A deep sink: additionally records per-stage events and
    /// match-vector popcounts.
    #[must_use]
    pub fn deep() -> Self {
        Self {
            deep: true,
            ..Self::default()
        }
    }

    /// Convenience: a shallow sink behind an `Arc`, ready to install.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// A plain-value snapshot of all counters, with the fast-path
    /// scoreboard folded back into the exact stats and histograms.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        use core::sync::atomic::Ordering::Relaxed;
        let mut snap = TelemetrySnapshot {
            stats: self.stats.snapshot(),
            probe_length: self.probe_length.snapshot(),
            row_fetches: self.row_fetches.snapshot(),
            match_popcount: self.match_popcount.snapshot(),
            insert_occupancy: self.insert_occupancy.snapshot(),
            queue_depth: self.queue_depth.snapshot(),
            queue_wait: self.queue_wait.snapshot(),
            stage_counts: core::array::from_fn(|i| self.stage_counts[i].load(Relaxed)),
        };
        for (idx, cell) in self.combo.iter().enumerate() {
            let n = cell.load(Relaxed);
            if n == 0 {
                continue;
            }
            let (hit, probe, fetches) = Self::combo_fields(idx);
            snap.stats.searches += n;
            if hit {
                snap.stats.hits += n;
            }
            snap.stats.memory_accesses += fetches * n;
            snap.probe_length.record_n(probe, n);
            snap.row_fetches.record_n(fetches, n);
        }
        snap
    }

    #[inline]
    fn combo_index(hit: bool, probe_length: usize, row_fetches: usize) -> usize {
        usize::from(hit) * COMBO_LIMIT * COMBO_LIMIT + probe_length * COMBO_LIMIT + row_fetches
    }

    #[inline]
    fn combo_fields(idx: usize) -> (bool, u64, u64) {
        let hit = idx >= COMBO_LIMIT * COMBO_LIMIT;
        let rest = idx % (COMBO_LIMIT * COMBO_LIMIT);
        (
            hit,
            (rest / COMBO_LIMIT) as u64,
            (rest % COMBO_LIMIT) as u64,
        )
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        use core::sync::atomic::Ordering::Relaxed;
        self.stats.reset();
        self.probe_length.reset();
        self.row_fetches.reset();
        self.match_popcount.reset();
        self.insert_occupancy.reset();
        self.queue_depth.reset();
        self.queue_wait.reset();
        for c in &self.stage_counts {
            c.store(0, Relaxed);
        }
        for c in &self.combo {
            c.store(0, Relaxed);
        }
    }
}

impl TelemetrySink for HistogramSink {
    fn wants_match_vectors(&self) -> bool {
        self.deep
    }

    fn stage(&self, stage: Stage, detail: u64) {
        use core::sync::atomic::Ordering::Relaxed;
        self.stage_counts[stage.index()].fetch_add(1, Relaxed);
        if stage == Stage::Match {
            self.match_popcount.record(detail);
        }
    }

    fn search_complete(&self, summary: &ProbeSummary) {
        // Fast path: small probe lengths and fetch counts (every search in
        // a well-loaded table) cost one relaxed add into the scoreboard.
        let limit = COMBO_LIMIT as u64;
        if summary.probe_length < limit && summary.row_fetches < limit {
            #[allow(clippy::cast_possible_truncation)]
            let idx = Self::combo_index(
                summary.hit,
                summary.probe_length as usize,
                summary.row_fetches as usize,
            );
            self.combo[idx].fetch_add(1, core::sync::atomic::Ordering::Relaxed);
            return;
        }
        #[allow(clippy::cast_possible_truncation)]
        self.stats.record(
            summary.hit,
            summary.row_fetches.min(u64::from(u32::MAX)) as u32,
        );
        self.probe_length.record(summary.probe_length);
        self.row_fetches.record(summary.row_fetches);
    }

    fn insert_occupancy(&self, occupancy: u32) {
        self.insert_occupancy.record(u64::from(occupancy));
    }

    fn queue_depth(&self, depth: u64) {
        self.queue_depth.record(depth);
    }

    fn queue_wait(&self, cycles: u64) {
        self.queue_wait.record(cycles);
    }
}

/// One recorded event in a [`TraceBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A pipeline stage fired with its detail value.
    Stage(Stage, u64),
    /// A search resolved.
    SearchComplete(ProbeSummary),
    /// An insert landed in a bucket with the given occupancy.
    InsertOccupancy(u32),
    /// Input-controller queue depth sample.
    QueueDepth(u64),
    /// Input-controller wait cycles for one request.
    QueueWait(u64),
}

/// Bounded event recorder for tests: keeps the first `capacity` events in
/// order, drops the rest (the drop count is retained).
#[derive(Debug)]
pub struct TraceBuffer {
    events: Mutex<Vec<TraceEvent>>,
    capacity: usize,
    dropped: core::sync::atomic::AtomicU64,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            events: Mutex::new(Vec::new()),
            capacity,
            dropped: core::sync::atomic::AtomicU64::new(0),
        }
    }

    fn push(&self, event: TraceEvent) {
        let mut events = self.events.lock().expect("trace buffer poisoned");
        if events.len() < self.capacity {
            events.push(event);
        } else {
            self.dropped
                .fetch_add(1, core::sync::atomic::Ordering::Relaxed);
        }
    }

    /// A copy of the recorded events, in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace buffer poisoned").clone()
    }

    /// Number of events discarded after the buffer filled.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(core::sync::atomic::Ordering::Relaxed)
    }
}

impl TelemetrySink for TraceBuffer {
    fn wants_match_vectors(&self) -> bool {
        true
    }

    fn stage(&self, stage: Stage, detail: u64) {
        self.push(TraceEvent::Stage(stage, detail));
    }

    fn search_complete(&self, summary: &ProbeSummary) {
        self.push(TraceEvent::SearchComplete(*summary));
    }

    fn insert_occupancy(&self, occupancy: u32) {
        self.push(TraceEvent::InsertOccupancy(occupancy));
    }

    fn queue_depth(&self, depth: u64) {
        self.push(TraceEvent::QueueDepth(depth));
    }

    fn queue_wait(&self, cycles: u64) {
        self.push(TraceEvent::QueueWait(cycles));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_sink_records_summaries() {
        let sink = HistogramSink::new();
        assert!(!sink.wants_match_vectors());
        sink.search_complete(&ProbeSummary {
            hit: true,
            row_fetches: 2,
            probe_length: 1,
            homes: 2,
        });
        sink.search_complete(&ProbeSummary {
            hit: false,
            row_fetches: 5,
            probe_length: 4,
            homes: 2,
        });
        sink.insert_occupancy(3);
        sink.queue_depth(10);
        sink.queue_wait(7);
        let snap = sink.snapshot();
        assert_eq!(snap.stats.searches, 2);
        assert_eq!(snap.stats.hits, 1);
        assert_eq!(snap.stats.memory_accesses, 7);
        assert_eq!(snap.probe_length.count(), 2);
        assert_eq!(snap.probe_length.sum(), 5);
        assert_eq!(snap.row_fetches.sum(), 7);
        assert_eq!(snap.insert_occupancy.sum(), 3);
        assert_eq!(snap.queue_depth.sum(), 10);
        assert_eq!(snap.queue_wait.sum(), 7);
        sink.reset();
        assert_eq!(sink.snapshot().stats.searches, 0);
    }

    #[test]
    fn deep_sink_counts_stages_and_popcounts() {
        let sink = HistogramSink::deep();
        assert!(sink.wants_match_vectors());
        sink.stage(Stage::Hash, 2);
        sink.stage(Stage::RowFetch, 8);
        sink.stage(Stage::Match, 1);
        sink.stage(Stage::Match, 0);
        sink.stage(Stage::Extract, 3);
        let snap = sink.snapshot();
        assert_eq!(snap.stage_counts, [1, 1, 2, 1, 0]);
        assert_eq!(snap.match_popcount.count(), 2);
        assert_eq!(snap.match_popcount.sum(), 1);
    }

    #[test]
    fn trace_buffer_keeps_order_and_caps() {
        let buf = TraceBuffer::new(2);
        buf.stage(Stage::Hash, 1);
        buf.queue_depth(4);
        buf.queue_wait(9);
        let events = buf.events();
        assert_eq!(
            events,
            vec![TraceEvent::Stage(Stage::Hash, 1), TraceEvent::QueueDepth(4)]
        );
        assert_eq!(buf.dropped(), 1);
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["hash", "row_fetch", "match", "extract", "overflow_probe"]
        );
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn null_sink_accepts_everything() {
        let sink = NullSink;
        sink.stage(Stage::Match, 3);
        sink.search_complete(&ProbeSummary {
            hit: false,
            row_fetches: 1,
            probe_length: 0,
            homes: 1,
        });
        sink.insert_occupancy(1);
        sink.queue_depth(0);
        sink.queue_wait(0);
        assert!(!sink.wants_match_vectors());
    }
}
