//! # ca-ram-cam
//!
//! Functional CAM and TCAM baselines for the CA-RAM reproduction
//! (Sec. 2.2 and 5 of the paper): a flat ternary CAM with priority
//! encoding ([`Tcam`]), an exact-match binary CAM ([`BinaryCam`]),
//! prefix-length-ordered update management ([`SortedTcam`], after Shah &
//! Gupta), the bank-selected low-power TCAM of Zane et al. ([`BankedTcam`],
//! `CoolCAMs`), the pre-classified CAM of Motomura / Schultz & Gulak
//! ([`PreclassifiedCam`]), the popcount-precomputation CAM of Lin et al.
//! ([`PrecomputedBcam`]), and entry-count reduction by prefix aggregation
//! ([`aggregate()`]).
//!
//! These devices share key types with `ca-ram-core` and geometry/cost types
//! with `ca-ram-hwmodel`, so a workload can be priced on CA-RAM and on a
//! TCAM side by side — exactly the comparison of Figures 6 and 8.
//!
//! # Example
//!
//! ```
//! use ca_ram_cam::{Tcam, TcamEntry};
//! use ca_ram_core::key::{SearchKey, TernaryKey};
//!
//! let mut tcam = Tcam::new(1024, 32);
//! // A /16 route, stored at priority slot 10.
//! let route = TernaryKey::ternary(0xC0A8_0000, 0xFFFF, 32);
//! tcam.write(10, TcamEntry { key: route, data: 42 });
//! let hit = tcam.search(&SearchKey::new(0xC0A8_0001, 32)).expect("route matches");
//! assert_eq!(hit.entry.data, 42);
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::module_name_repetitions)]

pub mod aggregate;
pub mod banked;
pub mod bcam;
pub mod engine;
pub mod preclassified;
pub mod precompute;
pub mod tcam;
pub mod update;

pub use aggregate::{aggregate, Aggregated, PrefixEntry};
pub use banked::{BankedMatch, BankedTcam};
pub use bcam::{BcamEntry, BinaryCam};
pub use preclassified::{PreclassifiedCam, PreclassifiedEntry, PreclassifiedMatch};
pub use precompute::{PrecomputedBcam, PrecomputedEntry, PrecomputedMatch};
pub use tcam::{Tcam, TcamEntry, TcamMatch};
pub use update::{SortedTcam, UpdateReceipt};
