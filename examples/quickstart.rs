//! Quickstart: build a CA-RAM table, insert records, search, delete.
//!
//! Run with: `cargo run --example quickstart`

use ca_ram::core::index::RangeSelect;
use ca_ram::core::key::{SearchKey, TernaryKey};
use ca_ram::core::layout::{Record, RecordLayout};
use ca_ram::core::table::{CaRamTable, TableConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A table of 256 buckets, each holding eight 32-bit keys with 16 bits
    // of data stored alongside (so a hit returns the data with the row —
    // no second memory access, unlike a CAM + data RAM).
    let layout = RecordLayout::new(32, false, 16);
    let row_bits = 8 * layout.slot_bits();
    let config = TableConfig::single_slice(8, row_bits, layout);

    // The index generator is the hash function in hardware: here, the low
    // 8 key bits select the bucket.
    let mut table = CaRamTable::new(config, Box::new(RangeSelect::new(0, 8)))?;
    println!(
        "table: {} buckets x {} slots = {} records capacity",
        table.logical_buckets(),
        table.slots_per_bucket(),
        table.capacity()
    );

    // Insert a few records. In hardware this is the CAM-mode insert
    // operation; the index generator places each record in its bucket.
    for (key, data) in [(0x1111_2222u128, 1u64), (0xAAAA_BBBB, 2), (0x1234_5678, 3)] {
        let outcome = table.insert(Record::new(TernaryKey::binary(key, 32), data))?;
        println!(
            "inserted {key:#010x} -> bucket {} slot {}",
            outcome.placements[0].bucket, outcome.placements[0].slot
        );
    }

    // Search: one memory access fetches the bucket, the match processors
    // compare all candidates in parallel.
    let outcome = table.search(&SearchKey::new(0xAAAA_BBBB, 32));
    let hit = outcome.hit.expect("the key was inserted");
    println!(
        "search 0xAAAABBBB: data = {} ({} memory access(es))",
        hit.record.data, outcome.memory_accesses
    );

    // A miss still costs one access (the home bucket must be examined).
    let miss = table.search(&SearchKey::new(0xDEAD_BEEF, 32));
    println!(
        "search 0xDEADBEEF: {:?} ({} memory access(es))",
        miss.hit.map(|h| h.record.data),
        miss.memory_accesses
    );

    // Delete removes the record and frees the slot.
    let removed = table.delete(&TernaryKey::binary(0x1111_2222, 32));
    println!("deleted 0x11112222: {removed} copy(ies) removed");
    assert!(table.search(&SearchKey::new(0x1111_2222, 32)).hit.is_none());

    // The build statistics the paper's evaluation is based on.
    let report = table.load_report();
    println!(
        "load factor {:.4}, spilled {:.2}%, AMAL {:.3}",
        report.load_factor(),
        report.spilled_records_pct(),
        report.amal_uniform
    );
    Ok(())
}
