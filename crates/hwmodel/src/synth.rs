//! Analytical standard-cell synthesis model of the match processor
//! (Sec. 3.3, Table 1).
//!
//! The paper implemented a prototype CA-RAM slice in Verilog and synthesized
//! the match processor with a 0.16 µm standard-cell library, reporting cell
//! count, area, and delay for the four pipeline-able steps:
//!
//! 1. **Expand search key** — replicate/align the search key to every stored
//!    key position (latency hidden behind the memory access);
//! 2. **Calculate match vector** — bit-by-bit ternary comparison of all
//!    candidates in parallel;
//! 3. **Decode match vector** — priority-encode the (possibly multiple)
//!    matches; serial, on the critical path;
//! 4. **Extract result** — mux the matched record's data out of the row.
//!
//! We model each stage with gate counts parameterized by the bucket width
//! `C`, the set of supported key widths, and the minimum key width (which
//! bounds the slot count the encoder must arbitrate). The constants are
//! calibrated so the paper's prototype configuration (`C = 1600`, key widths
//! 1–16 bytes) reproduces Table 1; the model then extrapolates to the
//! application-specific configurations of Sec. 4 (where "much of this
//! complexity will be removed" for fixed-width keys).

use crate::technology::ProcessNode;
use crate::units::{Milliwatts, Nanoseconds, SquareMicrons};

/// The four match-processing steps of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchStage {
    /// Step 1: expand/align the search key (overlapped with memory access).
    ExpandSearchKey,
    /// Step 2: compute the per-candidate match vector.
    CalculateMatchVector,
    /// Step 3: priority-decode the match vector.
    DecodeMatchVector,
    /// Step 4: extract the matched data item.
    ExtractResult,
}

impl MatchStage {
    /// All stages in pipeline order.
    #[must_use]
    pub fn all() -> &'static [MatchStage] {
        &[
            MatchStage::ExpandSearchKey,
            MatchStage::CalculateMatchVector,
            MatchStage::DecodeMatchVector,
            MatchStage::ExtractResult,
        ]
    }

    /// Whether this stage's latency is hidden behind the memory access
    /// (Table 1 reports the expand delay in parentheses and excludes it from
    /// the critical path).
    #[must_use]
    pub fn is_hidden(self) -> bool {
        matches!(self, MatchStage::ExpandSearchKey)
    }
}

impl core::fmt::Display for MatchStage {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            MatchStage::ExpandSearchKey => "Expand search key",
            MatchStage::CalculateMatchVector => "Calculate match vector",
            MatchStage::DecodeMatchVector => "Decode match vector",
            MatchStage::ExtractResult => "Extract result",
        };
        f.write_str(s)
    }
}

/// Configuration of the match processor being synthesized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchProcessorParams {
    /// Bucket (row) width `C` in bits.
    pub bucket_bits: u32,
    /// Supported key widths in bits. A single entry models an
    /// application-specific fixed-width design; the prototype supported
    /// {8, 16, 24, 32, 48, 64, 96, 128} (1–16 bytes, Sec. 3.3).
    pub key_widths: Vec<u32>,
    /// Whether don't-care matching (search-key and stored-key masks) is
    /// supported, as in the prototype.
    pub ternary: bool,
}

impl MatchProcessorParams {
    /// The prototype configuration of Sec. 3.3: `C = 1600`, key widths of
    /// 1, 2, 3, 4, 6, 8, 12, and 16 bytes, with don't-care support.
    #[must_use]
    pub fn prototype() -> Self {
        Self {
            bucket_bits: 1600,
            key_widths: vec![8, 16, 24, 32, 48, 64, 96, 128],
            ternary: true,
        }
    }

    /// An application-specific configuration with one fixed key width.
    ///
    /// # Panics
    ///
    /// Panics if `key_bits` is zero or exceeds `bucket_bits`.
    #[must_use]
    pub fn fixed_width(bucket_bits: u32, key_bits: u32, ternary: bool) -> Self {
        assert!(key_bits > 0, "key width must be positive");
        assert!(
            key_bits <= bucket_bits,
            "key ({key_bits} bits) cannot exceed the bucket ({bucket_bits} bits)"
        );
        Self {
            bucket_bits,
            key_widths: vec![key_bits],
            ternary,
        }
    }

    /// The smallest supported key width.
    ///
    /// # Panics
    ///
    /// Panics if the key-width list is empty.
    #[must_use]
    pub fn min_key_bits(&self) -> u32 {
        *self
            .key_widths
            .iter()
            .min()
            .expect("at least one key width is required")
    }

    /// The largest supported key width.
    ///
    /// # Panics
    ///
    /// Panics if the key-width list is empty.
    #[must_use]
    pub fn max_key_bits(&self) -> u32 {
        *self
            .key_widths
            .iter()
            .max()
            .expect("at least one key width is required")
    }

    /// Maximum number of key slots the priority encoder must arbitrate:
    /// `floor(C / min_key_width)`.
    #[must_use]
    pub fn max_slots(&self) -> u32 {
        self.bucket_bits / self.min_key_bits()
    }
}

/// Synthesis result for one stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageResult {
    /// Which stage this row describes.
    pub stage: MatchStage,
    /// Standard-cell instance count.
    pub cells: u64,
    /// Placed area.
    pub area: SquareMicrons,
    /// Combinational delay.
    pub delay: Nanoseconds,
}

/// Full synthesis report (the reproduction of Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisReport {
    stages: Vec<StageResult>,
    node: ProcessNode,
}

impl SynthesisReport {
    /// Per-stage results in pipeline order.
    #[must_use]
    pub fn stages(&self) -> &[StageResult] {
        &self.stages
    }

    /// Process node the report is expressed at.
    #[must_use]
    pub fn node(&self) -> ProcessNode {
        self.node
    }

    /// Total cell count.
    #[must_use]
    pub fn total_cells(&self) -> u64 {
        self.stages.iter().map(|s| s.cells).sum()
    }

    /// Total area.
    #[must_use]
    pub fn total_area(&self) -> SquareMicrons {
        self.stages.iter().map(|s| s.area).sum()
    }

    /// Critical-path delay: the sum of the non-hidden stages, as in Table 1
    /// (the expand stage overlaps the memory access).
    #[must_use]
    pub fn critical_path(&self) -> Nanoseconds {
        self.stages
            .iter()
            .filter(|s| !s.stage.is_hidden())
            .map(|s| s.delay)
            .sum()
    }

    /// Maximum single-cycle (non-pipelined) operating frequency.
    #[must_use]
    pub fn max_clock(&self) -> crate::units::Megahertz {
        self.critical_path().to_frequency()
    }

    /// Worst-case dynamic power at the given supply, switching activity, and
    /// clock period, following the prototype's Synopsys report format
    /// (60.8 mW at VDD = 1.8 V, activity 0.5, Tclk = 6 ns).
    ///
    /// # Panics
    ///
    /// Panics if any argument is non-positive.
    #[must_use]
    pub fn dynamic_power(&self, vdd: f64, activity: f64, tclk: Nanoseconds) -> Milliwatts {
        // Calibrated so the prototype (15 992 cells) reports 60.8 mW at
        // 1.8 V / 0.5 / 6 ns: p = P*Tclk / (cells*act*V^2).
        const POWER_PER_CELL_NS: f64 = 60.8 * 6.0 / (15_992.0 * 0.5 * 1.8 * 1.8);
        assert!(vdd > 0.0, "supply voltage must be positive");
        assert!(activity > 0.0, "switching activity must be positive");
        assert!(tclk.value() > 0.0, "clock period must be positive");
        #[allow(clippy::cast_precision_loss)]
        let cells = self.total_cells() as f64;
        Milliwatts::new(POWER_PER_CELL_NS * cells * activity * vdd * vdd / tclk.value())
    }

    /// The report re-expressed at another process node (area ×s², delay ×s).
    #[must_use]
    pub fn scaled_to(&self, target: ProcessNode) -> SynthesisReport {
        let stages = self
            .stages
            .iter()
            .map(|s| StageResult {
                stage: s.stage,
                cells: s.cells,
                area: self.node.scale_area_to(s.area, target),
                delay: self.node.scale_delay_to(s.delay, target),
            })
            .collect();
        SynthesisReport {
            stages,
            node: target,
        }
    }
}

/// The synthesis model: gate-count formulas calibrated against Table 1.
///
/// # Examples
///
/// ```
/// use ca_ram_hwmodel::synth::{MatchProcessorParams, SynthesisModel};
///
/// let report = SynthesisModel::new().synthesize(&MatchProcessorParams::prototype());
/// assert_eq!(report.total_cells(), 15_992); // Table 1 total
/// assert!(report.max_clock().value() > 200.0); // "over 200 MHz"
/// ```
///
/// All constants below are per-stage calibration values at the 0.16 µm node.
/// They reproduce the paper's prototype exactly and extrapolate smoothly in
/// `C`, the number of supported key widths, and the slot count.
#[derive(Debug, Clone, Copy, Default)]
pub struct SynthesisModel {
    _private: (),
}

// -- Calibration constants (0.16 µm standard-cell library) -------------------
// Cells per row bit for the expand stage: a base alignment register plus one
// mux level per supported-width doubling.
const EXPAND_CELLS_BASE_PER_BIT: f64 = 0.25;
const EXPAND_CELLS_PER_BIT_PER_WIDTH_LEVEL: f64 = 0.709_25;
// Cells per row bit for the comparison: XNOR + search-key mask, the stored
// don't-care extension (Fig. 4(b)), and the AND-reduction tree share.
const MATCH_CELLS_XNOR_PER_BIT: f64 = 2.0;
const MATCH_CELLS_TERNARY_PER_BIT: f64 = 1.0;
const MATCH_CELLS_REDUCTION_PER_BIT: f64 = 0.2825;
// Priority encoder: cells per arbitrated slot.
const DECODE_CELLS_PER_SLOT: f64 = 4.495;
// Extract: base pass-through per bit plus mux levels for variable widths.
const EXTRACT_CELLS_BASE_PER_BIT: f64 = 1.0;
const EXTRACT_CELLS_PER_BIT_PER_WIDTH_LEVEL: f64 = 0.924_4;
// Average placed area per cell, by stage (µm² at 0.16 µm). The expand stage
// is register- and routing-heavy, hence its large per-cell footprint.
const AREA_PER_CELL_EXPAND: f64 = 17.410;
const AREA_PER_CELL_MATCH: f64 = 2.016_5;
const AREA_PER_CELL_DECODE: f64 = 2.191_3;
const AREA_PER_CELL_EXTRACT: f64 = 3.606_9;
// Delay model constants (ns at 0.16 µm).
const EXPAND_DELAY_BASE: f64 = 0.29;
const EXPAND_DELAY_PER_WIDTH_LEVEL: f64 = 0.20;
const MATCH_DELAY_XNOR: f64 = 0.35;
const MATCH_DELAY_PER_REDUCTION_LEVEL: f64 = 0.085_7;
const DECODE_DELAY_BASE: f64 = 0.31;
const DECODE_DELAY_PER_SLOT: f64 = 0.008;
const EXTRACT_DELAY_BASE: f64 = 0.415;
const EXTRACT_DELAY_PER_SLOT_LEVEL: f64 = 0.206;

impl SynthesisModel {
    /// Creates the model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Synthesizes a match processor at the prototype's 0.16 µm node.
    ///
    /// # Panics
    ///
    /// Panics if `params` has an empty key-width list or a zero bucket width.
    #[must_use]
    #[allow(clippy::items_after_statements)]
    pub fn synthesize(&self, params: &MatchProcessorParams) -> SynthesisReport {
        assert!(params.bucket_bits > 0, "bucket width must be positive");
        assert!(
            !params.key_widths.is_empty(),
            "at least one key width is required"
        );
        let c = f64::from(params.bucket_bits);
        #[allow(clippy::cast_precision_loss)]
        let width_levels = (params.key_widths.len() as f64).log2();
        let slots = f64::from(params.max_slots());
        let reduction_levels = f64::from(params.max_key_bits()).log2();

        let expand_cells =
            c * (EXPAND_CELLS_BASE_PER_BIT + EXPAND_CELLS_PER_BIT_PER_WIDTH_LEVEL * width_levels);
        let ternary_cells = if params.ternary {
            MATCH_CELLS_TERNARY_PER_BIT
        } else {
            0.0
        };
        let match_cells =
            c * (MATCH_CELLS_XNOR_PER_BIT + ternary_cells + MATCH_CELLS_REDUCTION_PER_BIT);
        let decode_cells = slots * DECODE_CELLS_PER_SLOT;
        let extract_cells =
            c * (EXTRACT_CELLS_BASE_PER_BIT + EXTRACT_CELLS_PER_BIT_PER_WIDTH_LEVEL * width_levels);

        let stage = |stage: MatchStage, cells: f64, per_cell: f64, delay: f64| StageResult {
            stage,
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            cells: cells.round() as u64,
            area: SquareMicrons::new(cells.round() * per_cell),
            delay: Nanoseconds::new(delay),
        };

        let stages = vec![
            stage(
                MatchStage::ExpandSearchKey,
                expand_cells,
                AREA_PER_CELL_EXPAND,
                EXPAND_DELAY_BASE + EXPAND_DELAY_PER_WIDTH_LEVEL * width_levels,
            ),
            stage(
                MatchStage::CalculateMatchVector,
                match_cells,
                AREA_PER_CELL_MATCH,
                MATCH_DELAY_XNOR + MATCH_DELAY_PER_REDUCTION_LEVEL * reduction_levels,
            ),
            stage(
                MatchStage::DecodeMatchVector,
                decode_cells,
                AREA_PER_CELL_DECODE,
                DECODE_DELAY_BASE + DECODE_DELAY_PER_SLOT * slots,
            ),
            stage(
                MatchStage::ExtractResult,
                extract_cells,
                AREA_PER_CELL_EXTRACT,
                EXTRACT_DELAY_BASE + EXTRACT_DELAY_PER_SLOT_LEVEL * slots.log2(),
            ),
        ];

        SynthesisReport {
            stages,
            node: ProcessNode::N160,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prototype_report() -> SynthesisReport {
        SynthesisModel::new().synthesize(&MatchProcessorParams::prototype())
    }

    #[test]
    fn table1_cell_counts() {
        let r = prototype_report();
        let cells: Vec<u64> = r.stages().iter().map(|s| s.cells).collect();
        // Paper: 3 804 / 5 252 / 899 / 6 037, total 15 992 (±0.5% tolerance
        // for the calibrated analytic formulas).
        let expected = [3_804_u64, 5_252, 899, 6_037];
        for (got, want) in cells.iter().zip(expected.iter()) {
            let err = (*got as f64 - *want as f64).abs() / *want as f64;
            assert!(err < 0.005, "stage cells {got} vs paper {want}");
        }
        let total_err = (r.total_cells() as f64 - 15_992.0).abs() / 15_992.0;
        assert!(total_err < 0.005, "total cells {}", r.total_cells());
    }

    #[test]
    fn table1_areas() {
        let r = prototype_report();
        let expected = [66_228.0, 10_591.0, 1_970.0, 21_775.0];
        for (s, want) in r.stages().iter().zip(expected.iter()) {
            let err = (s.area.value() - want).abs() / want;
            assert!(err < 0.01, "{}: {} vs paper {want}", s.stage, s.area);
        }
        let total_err = (r.total_area().value() - 100_564.0).abs() / 100_564.0;
        assert!(total_err < 0.01, "total area {}", r.total_area());
    }

    #[test]
    fn table1_delays_and_critical_path() {
        let r = prototype_report();
        let expected = [0.89, 0.95, 1.91, 1.99];
        for (s, want) in r.stages().iter().zip(expected.iter()) {
            assert!(
                (s.delay.value() - want).abs() < 0.02,
                "{}: {} vs paper {want}",
                s.stage,
                s.delay
            );
        }
        // Total 4.85 ns, excluding the hidden expand stage.
        assert!((r.critical_path().value() - 4.85).abs() < 0.05);
        // "a latency that will fit in a single cycle at over 200 MHz"
        assert!(r.max_clock().value() > 200.0);
    }

    #[test]
    fn prototype_dynamic_power_matches_synopsys_report() {
        let r = prototype_report();
        let p = r.dynamic_power(1.8, 0.5, Nanoseconds::new(6.0));
        assert!((p.value() - 60.8).abs() < 0.5, "got {p}");
    }

    #[test]
    fn fixed_width_design_is_much_smaller() {
        // Sec. 3.3: "in an application-specific CA-RAM design (i.e., key
        // length is fixed), much of this complexity will be removed".
        let model = SynthesisModel::new();
        let proto = model.synthesize(&MatchProcessorParams::prototype());
        let fixed = model.synthesize(&MatchProcessorParams::fixed_width(1600, 64, true));
        assert!(fixed.total_cells() < proto.total_cells() / 2);
        assert!(fixed.total_area().value() < proto.total_area().value() / 2.0);
        assert!(fixed.critical_path().value() < proto.critical_path().value());
    }

    #[test]
    fn binary_match_cheaper_than_ternary() {
        let model = SynthesisModel::new();
        let ternary = model.synthesize(&MatchProcessorParams::fixed_width(1600, 64, true));
        let binary = model.synthesize(&MatchProcessorParams::fixed_width(1600, 64, false));
        assert!(binary.total_cells() < ternary.total_cells());
    }

    #[test]
    fn area_scales_to_130nm() {
        let r = prototype_report().scaled_to(ProcessNode::N130);
        let expect = 100_564.0 * (130.0 / 160.0) * (130.0 / 160.0);
        assert!((r.total_area().value() - expect).abs() / expect < 0.01);
        assert_eq!(r.node(), ProcessNode::N130);
        // Cell count is node-independent.
        assert_eq!(r.total_cells(), prototype_report().total_cells());
    }

    #[test]
    fn decode_dominates_critical_path_via_serial_encoding() {
        // "The decoding of the match vector and the multiplexing of the
        // output results form the critical path as all of its operations are
        // serial in nature."
        let r = prototype_report();
        let decode = r.stages()[2].delay;
        let match_v = r.stages()[1].delay;
        assert!(decode.value() > match_v.value());
    }

    #[test]
    fn wider_buckets_cost_more_cells() {
        let model = SynthesisModel::new();
        let narrow = model.synthesize(&MatchProcessorParams::fixed_width(2048, 64, true));
        let wide = model.synthesize(&MatchProcessorParams::fixed_width(4096, 64, true));
        assert!(wide.total_cells() > narrow.total_cells());
        assert!(wide.critical_path().value() > narrow.critical_path().value());
    }

    #[test]
    #[should_panic(expected = "cannot exceed the bucket")]
    fn key_wider_than_bucket_rejected() {
        let _ = MatchProcessorParams::fixed_width(64, 128, false);
    }
}
