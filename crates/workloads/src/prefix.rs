//! IPv4 prefixes — the records of the routing-table study (Sec. 4.1).

use core::fmt;
use core::str::FromStr;

use ca_ram_core::key::TernaryKey;
use ca_ram_core::pattern::{Pattern, PatternSpec};

/// The pattern spec every IPv4 routing workload compiles through: one
/// 32-bit address field in longest-prefix-match mode.
///
/// # Panics
///
/// Never: the shape is statically well-formed.
#[must_use]
pub fn lpm_spec() -> PatternSpec {
    PatternSpec::lpm("ipv4-lpm", 32).expect("ipv4 LPM spec is well-formed")
}

/// An IPv4 prefix: an address and a prefix length, with all host bits zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

/// Error parsing an [`Ipv4Prefix`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError {
    input: String,
}

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 prefix syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParsePrefixError {}

impl Ipv4Prefix {
    /// Creates a prefix; host bits of `addr` below `len` must be zero.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32` or a host bit is set.
    #[must_use]
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} exceeds 32");
        assert!(
            addr & Self::host_mask(len) == 0,
            "address {addr:#010x} has host bits set below /{len}"
        );
        Self { addr, len }
    }

    /// Creates a prefix, zeroing any host bits of `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    #[must_use]
    pub fn truncating(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} exceeds 32");
        Self {
            addr: addr & !Self::host_mask(len),
            len,
        }
    }

    fn host_mask(len: u8) -> u32 {
        if len == 0 {
            u32::MAX
        } else if len == 32 {
            0
        } else {
            (1u32 << (32 - len)) - 1
        }
    }

    /// The network address.
    #[must_use]
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// The prefix length.
    #[must_use]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the default route `0.0.0.0/0`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this prefix.
    #[must_use]
    pub fn contains(&self, addr: u32) -> bool {
        addr & !Self::host_mask(self.len) == self.addr
    }

    /// Whether `other` is equal to or more specific than this prefix.
    #[must_use]
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// This prefix as a compiler pattern for [`lpm_spec`]-shaped tables.
    #[must_use]
    pub fn to_pattern(&self) -> Pattern {
        Pattern::Prefix {
            value: u128::from(self.addr),
            len: u32::from(self.len),
        }
    }

    /// The ternary stored key for a CA-RAM or TCAM: 32 symbols, the host
    /// bits don't-care (Sec. 4.1: "a prefix consists of 32 ternary bits").
    /// Routed through the pattern compiler ([`lpm_spec`]): a prefix lowers
    /// to exactly one ternary key, byte-identical to the hand-derived
    /// host-mask encoding this method used before the compiler existed.
    ///
    /// # Panics
    ///
    /// Never: a prefix pattern always lowers under its own spec.
    #[must_use]
    pub fn to_ternary_key(&self) -> TernaryKey {
        let keys = lpm_spec()
            .lower(&self.to_pattern())
            .expect("a prefix lowers under the LPM spec");
        debug_assert_eq!(keys.len(), 1);
        keys[0]
    }

    /// A uniformly random address covered by this prefix.
    #[must_use]
    pub fn random_member(&self, rng: &mut impl rand::Rng) -> u32 {
        self.addr | (rng.gen::<u32>() & Self::host_mask(self.len))
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.addr;
        write!(
            f,
            "{}.{}.{}.{}/{}",
            a >> 24,
            (a >> 16) & 0xFF,
            (a >> 8) & 0xFF,
            a & 0xFF,
            self.len
        )
    }
}

impl FromStr for Ipv4Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePrefixError { input: s.into() };
        let (addr_part, len_part) = s.split_once('/').ok_or_else(err)?;
        let len: u8 = len_part.parse().map_err(|_| err())?;
        if len > 32 {
            return Err(err());
        }
        let mut octets = addr_part.split('.');
        let mut addr: u32 = 0;
        for _ in 0..4 {
            let o: u8 = octets.next().ok_or_else(err)?.parse().map_err(|_| err())?;
            addr = (addr << 8) | u32::from(o);
        }
        if octets.next().is_some() {
            return Err(err());
        }
        if addr & Self::host_mask(len) != 0 {
            return Err(err());
        }
        Ok(Self { addr, len })
    }
}

/// Histogram of prefix lengths (0..=32) in a table.
#[must_use]
pub fn length_histogram(prefixes: &[Ipv4Prefix]) -> [u64; 33] {
    let mut h = [0u64; 33];
    for p in prefixes {
        h[p.len() as usize] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let p = Ipv4Prefix::new(0xC0A8_0000, 16);
        assert_eq!(p.addr(), 0xC0A8_0000);
        assert_eq!(p.len(), 16);
        assert!(!p.is_empty());
        assert!(Ipv4Prefix::new(0, 0).is_empty());
    }

    #[test]
    fn truncating_zeroes_host_bits() {
        let p = Ipv4Prefix::truncating(0xC0A8_1234, 16);
        assert_eq!(p.addr(), 0xC0A8_0000);
    }

    #[test]
    fn contains_and_covers() {
        let p16 = Ipv4Prefix::new(0xC0A8_0000, 16);
        let p24 = Ipv4Prefix::new(0xC0A8_0100, 24);
        assert!(p16.contains(0xC0A8_FFFF));
        assert!(!p16.contains(0xC0A9_0000));
        assert!(p16.covers(&p24));
        assert!(!p24.covers(&p16));
        assert!(p16.covers(&p16));
        let all = Ipv4Prefix::new(0, 0);
        assert!(all.contains(u32::MAX));
        assert!(all.covers(&p24));
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["192.168.0.0/16", "10.0.0.0/8", "0.0.0.0/0", "1.2.3.4/32"] {
            let p: Ipv4Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_bad_input() {
        for s in [
            "192.168.0.0",    // no length
            "192.168.0.0/33", // length too long
            "192.168.0.1/16", // host bits set
            "1.2.3/8",        // missing octet
            "1.2.3.4.5/8",    // too many octets
            "a.b.c.d/8",      // not numbers
            "300.0.0.0/8",    // octet overflow
        ] {
            assert!(s.parse::<Ipv4Prefix>().is_err(), "{s}");
        }
    }

    #[test]
    fn ternary_key_matches_members_only() {
        use ca_ram_core::key::SearchKey;
        let p = Ipv4Prefix::new(0x0A0B_0000, 16);
        let k = p.to_ternary_key();
        assert_eq!(k.care_count(), 16);
        assert!(k.matches(&SearchKey::new(0x0A0B_1234, 32)));
        assert!(!k.matches(&SearchKey::new(0x0A0C_0000, 32)));
    }

    #[test]
    fn random_member_is_contained() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(1);
        let p = Ipv4Prefix::new(0xAC10_0000, 12);
        for _ in 0..100 {
            assert!(p.contains(p.random_member(&mut rng)));
        }
    }

    #[test]
    fn histogram_counts_lengths() {
        let ps = vec![
            Ipv4Prefix::new(0, 8),
            Ipv4Prefix::new(0x0100_0000, 8),
            Ipv4Prefix::new(0, 24),
        ];
        let h = length_histogram(&ps);
        assert_eq!(h[8], 2);
        assert_eq!(h[24], 1);
        assert_eq!(h.iter().sum::<u64>(), 3);
    }

    #[test]
    #[should_panic(expected = "host bits set")]
    fn host_bits_rejected() {
        let _ = Ipv4Prefix::new(0xC0A8_0001, 16);
    }
}
