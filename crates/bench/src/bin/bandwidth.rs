//! Reproduces the **Sec. 3.4 performance analysis**: search latency and
//! the bandwidth formula `B_CA-RAM = (Nslice / nmem) × fclk`, cross-checked
//! against the cycle-level queue simulation of the subsystem controller.
//!
//! Usage: `bandwidth [--requests N]`

use ca_ram_bench::{keys_per_sec, rule, time_engine_batch, Cli, Result};
use ca_ram_core::controller::{simulate, simulate_latency, QueueModelConfig};
use ca_ram_hwmodel::{CaRamTiming, CamTiming};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<()> {
    let requests: usize = Cli::from_env().parse("requests", 50_000)?;

    println!("Sec. 3.4: CA-RAM bandwidth formula vs cycle-level simulation");
    println!("(DRAM-based slices: 200 MHz, nmem = 6 cycles; uniform random traffic)\n");

    println!(
        "{:>7} {:>16} {:>16} {:>8} {:>14}",
        "Nslice", "formula (Ms/s)", "simulated (Ms/s)", "error", "peak queue"
    );
    rule(68);
    let timing = CaRamTiming::dram_200mhz();
    let mut rng = SmallRng::seed_from_u64(99);
    for slices in [1u32, 2, 4, 8, 16] {
        let formula = timing.search_bandwidth(slices, 1.0);
        let config = QueueModelConfig {
            slices,
            nmem: 6,
            queue_depth: 64,
            accepts_per_cycle: 8,
            head_of_line: false,
        };
        let trace: Vec<u32> = (0..requests).map(|_| rng.gen_range(0..slices)).collect();
        let report = simulate(config, trace)?;
        let simulated = report.searches_per_cycle() * timing.clock().value();
        let err = 100.0 * (simulated - formula.value()).abs() / formula.value();
        println!(
            "{slices:>7} {:>16.1} {:>16.1} {:>7.1}% {:>14}",
            formula.value(),
            simulated,
            err,
            report.peak_queue_depth
        );
    }
    rule(68);

    let tcam = CamTiming::tcam_143mhz();
    println!(
        "\nTCAM reference: {:.0} Msearch/s at 143 MHz (1 search/cycle).",
        tcam.search_bandwidth().value()
    );
    println!(
        "CA-RAM reaches TCAM bandwidth at Nslice >= {} (paper: increasing Nslice is",
        (tcam.search_bandwidth().value() * 6.0 / timing.clock().value()).ceil()
    );
    println!("straightforward in CA-RAM and preferred for power control).\n");

    println!("Latency (one probe, match pipelined):");
    println!(
        "  CA-RAM: {:.2} ns ({} cycles DRAM + {:.2} ns match)",
        timing.search_latency(1).value(),
        timing.access_cycles(),
        timing.search_latency(1).value() - timing.memory_latency().value()
    );
    println!(
        "  TCAM + external data RAM: {:.2} ns (search {:.2} ns + data access 30 ns)",
        tcam.search_latency().value(),
        tcam.clock().period().value()
    );
    println!("  (Sec. 3.4: the data access is hidden in CA-RAM, fully exposed after a CAM.)");

    println!("\nSkewed traffic (all requests to one slice): the formula's hidden assumption.");
    let config = QueueModelConfig {
        slices: 8,
        nmem: 6,
        queue_depth: 64,
        accepts_per_cycle: 8,
        head_of_line: false,
    };
    let report = simulate(config, vec![0u32; requests.min(10_000)])?;
    println!(
        "  8 slices, single-slice traffic: {:.1} Msearch/s (vs {:.1} uniform)",
        report.searches_per_cycle() * timing.clock().value(),
        timing.search_bandwidth(8, 1.0).value()
    );

    // --- latency under load (transaction-level pipeline) -------------------
    println!("\nLatency under load (8 slices, 6-cycle DRAM, random traffic; cycles @200 MHz):");
    println!(
        "{:>12} {:>8} {:>8} {:>8} {:>8}",
        "utilization", "mean", "p50", "p99", "max"
    );
    {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        let trace: Vec<u32> = (0..20_000).map(|_| rng.gen_range(0..8)).collect();
        let config = QueueModelConfig {
            slices: 8,
            nmem: 6,
            queue_depth: 1 << 14,
            accepts_per_cycle: 8,
            head_of_line: false,
        };
        // Capacity = 8/6 per cycle, i.e. one request per 0.75 cycles.
        for (num, den, util) in [(3u64, 1u64, 0.25), (3, 2, 0.5), (1, 1, 0.75), (5, 6, 0.9)] {
            let r = simulate_latency(config, num, den, trace.iter().copied())?;
            println!(
                "{util:>12.2} {:>8.1} {:>8} {:>8} {:>8}",
                r.mean_cycles, r.p50_cycles, r.p99_cycles, r.max_cycles
            );
        }
        println!("  (the closed-form bandwidth hides this queueing curve entirely)");
    }

    // --- trace-driven routing: real keys, real hash, real slice map --------
    println!("\nTrace-driven throughput (trigram design A: 4 vertical slices, DJB hash):");
    trace_driven(requests.min(30_000))?;
    Ok(())
}

/// Routes an actual key trace through the table's hash onto its vertical
/// slice groups and measures achieved bandwidth — uniform vs Zipf traffic.
fn trace_driven(lookups: usize) -> Result<()> {
    use ca_ram_bench::designs::{build_trigram_table, load_trigrams, trigram_designs};
    use ca_ram_workloads::trace::{frequencies, sample_trace, AccessPattern};
    use ca_ram_workloads::trigram::{generate, pack_text_key, TrigramConfig};

    let entries = generate(&TrigramConfig {
        entries: 50_000,
        vocabulary: 8_000,
        ..TrigramConfig::sphinx_like()
    });
    let mut design = trigram_designs()[0];
    design.rows_log2 = 8; // scaled rows; the slice count is what matters here
    let table = {
        let mut t = build_trigram_table(&design);
        load_trigrams(&mut t, &entries);
        t
    };
    let slice_of = |i: usize| {
        let key = ca_ram_core::key::SearchKey::new(pack_text_key(&entries[i]), 128);
        table.slice_group_of(table.home_bucket(&key))
    };
    let timing = CaRamTiming::dram_200mhz();
    for (name, pattern) in [
        ("uniform", AccessPattern::Uniform),
        ("zipf s=1.0", AccessPattern::Zipf { s: 1.0 }),
        ("zipf s=1.4", AccessPattern::Zipf { s: 1.4 }),
    ] {
        let freqs = frequencies(entries.len(), pattern, 42);
        let trace = sample_trace(&freqs, lookups, 43);
        let slice_trace: Vec<u32> = trace.iter().map(|&i| slice_of(i)).collect();
        let config = QueueModelConfig {
            slices: design.slices,
            nmem: 6,
            queue_depth: 64,
            accepts_per_cycle: 4,
            head_of_line: false,
        };
        let report = simulate(config, slice_trace)?;
        println!(
            "  {name:<11} {:.1} Msearch/s (formula ceiling {:.1})",
            report.searches_per_cycle() * timing.clock().value(),
            timing.search_bandwidth(design.slices, 1.0).value()
        );
    }
    println!("  (a good hash keeps even Zipf traffic near the ceiling: hot keys");
    println!("   are single buckets, not whole slices)");

    // The same table, driven through the batch API the subsystem pump
    // uses — simulator (host) throughput, not modelled hardware bandwidth.
    let keys: Vec<ca_ram_core::key::SearchKey> = {
        let freqs = frequencies(entries.len(), AccessPattern::Uniform, 42);
        sample_trace(&freqs, lookups, 44)
            .iter()
            .map(|&i| ca_ram_core::key::SearchKey::new(pack_text_key(&entries[i]), 128))
            .collect()
    };
    // The shared driver warms up, asserts the serial and parallel batch
    // paths agree bit-for-bit, and times each path.
    let timing = time_engine_batch(&table, &keys, 0);
    println!("\nSimulator throughput over the same table (host-side, not modelled hardware):");
    println!(
        "  search_batch           {:>10.0} keys/s",
        keys_per_sec(keys.len(), timing.serial_secs)
    );
    println!(
        "  search_batch_parallel  {:>10.0} keys/s",
        keys_per_sec(keys.len(), timing.parallel_secs)
    );
    Ok(())
}
