//! Search keys and stored (possibly ternary) record keys.
//!
//! CA-RAM supports three matching flavours (Sec. 3.1, Fig. 4(b)):
//!
//! * plain binary match;
//! * *search-key masking* — don't-care bits in the search key (`Mi` input);
//! * *ternary match* — don't-care bits in the stored key (`TMi` input), as
//!   in a TCAM. A ternary symbol costs two stored bits.
//!
//! A bit position matches iff the stored bit is don't-care, or the search
//! bit is don't-care, or the two values are equal.

use crate::bits::low_mask;

/// Maximum key width supported by this implementation.
pub const MAX_KEY_BITS: u32 = 128;

fn check_width(bits: u32) {
    assert!(
        bits > 0 && bits <= MAX_KEY_BITS,
        "key width must be in 1..={MAX_KEY_BITS}, got {bits}"
    );
}

/// A search key presented to a CA-RAM slice: a value plus an optional
/// don't-care mask (a set bit in `dont_care` matches anything).
///
/// # Examples
///
/// ```
/// use ca_ram_core::key::{SearchKey, TernaryKey};
///
/// // Search "0xAB??": the low byte is don't-care.
/// let masked = SearchKey::with_mask(0xAB00, 0x00FF, 16);
/// assert!(TernaryKey::binary(0xAB17, 16).matches(&masked));
/// assert!(!TernaryKey::binary(0xAC17, 16).matches(&masked));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SearchKey {
    value: u128,
    dont_care: u128,
    bits: u32,
}

impl SearchKey {
    /// An exact-match search key.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds [`MAX_KEY_BITS`], or if `value` has
    /// bits set above `bits`.
    #[must_use]
    pub fn new(value: u128, bits: u32) -> Self {
        Self::with_mask(value, 0, bits)
    }

    /// A search key with don't-care positions (`dont_care` bit set ⇒ that
    /// position matches anything).
    ///
    /// # Panics
    ///
    /// Panics on an invalid width or on value/mask bits above `bits`.
    #[must_use]
    pub fn with_mask(value: u128, dont_care: u128, bits: u32) -> Self {
        check_width(bits);
        assert!(
            value & !low_mask(bits) == 0,
            "value has bits set above the declared width {bits}"
        );
        assert!(
            dont_care & !low_mask(bits) == 0,
            "mask has bits set above the declared width {bits}"
        );
        // Canonicalize: force value bits at don't-care positions to zero so
        // equal keys compare equal.
        Self {
            value: value & !dont_care,
            dont_care,
            bits,
        }
    }

    /// The key value (don't-care positions are zero).
    #[must_use]
    pub fn value(&self) -> u128 {
        self.value
    }

    /// The don't-care mask.
    #[must_use]
    pub fn dont_care(&self) -> u128 {
        self.dont_care
    }

    /// Key width in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Whether any position is don't-care.
    #[must_use]
    pub fn is_masked(&self) -> bool {
        self.dont_care != 0
    }
}

/// A stored record key: a value plus a ternary don't-care mask. With an
/// all-zero mask this is a plain binary key.
///
/// # Examples
///
/// An IPv4 `/16` prefix as 32 ternary symbols:
///
/// ```
/// use ca_ram_core::key::{SearchKey, TernaryKey};
///
/// let prefix = TernaryKey::ternary(0xC0A8_0000, 0xFFFF, 32); // 192.168/16
/// assert_eq!(prefix.care_count(), 16);
/// assert!(prefix.matches(&SearchKey::new(0xC0A8_1234, 32)));
/// assert!(!prefix.matches(&SearchKey::new(0xC0A9_0000, 32)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TernaryKey {
    value: u128,
    dont_care: u128,
    bits: u32,
}

impl TernaryKey {
    /// A binary (no don't-care) stored key.
    ///
    /// # Panics
    ///
    /// Panics on an invalid width or on value bits above `bits`.
    #[must_use]
    pub fn binary(value: u128, bits: u32) -> Self {
        Self::ternary(value, 0, bits)
    }

    /// A ternary stored key; a set bit in `dont_care` is the `X` symbol.
    ///
    /// # Panics
    ///
    /// Panics on an invalid width or on value/mask bits above `bits`.
    #[must_use]
    pub fn ternary(value: u128, dont_care: u128, bits: u32) -> Self {
        check_width(bits);
        assert!(
            value & !low_mask(bits) == 0,
            "value has bits set above the declared width {bits}"
        );
        assert!(
            dont_care & !low_mask(bits) == 0,
            "mask has bits set above the declared width {bits}"
        );
        Self {
            value: value & !dont_care,
            dont_care,
            bits,
        }
    }

    /// [`TernaryKey::ternary`] without the width checks, for decode paths
    /// whose inputs are bit-sliced from a stored row and therefore in
    /// range by construction. The canonical `value & !dont_care` form is
    /// still enforced (a stored value bit under a don't-care position is
    /// representational noise, not information).
    pub(crate) fn ternary_decoded(value: u128, dont_care: u128, bits: u32) -> Self {
        debug_assert!(bits > 0 && bits <= MAX_KEY_BITS);
        debug_assert!(value & !low_mask(bits) == 0);
        debug_assert!(dont_care & !low_mask(bits) == 0);
        Self {
            value: value & !dont_care,
            dont_care,
            bits,
        }
    }

    /// The key value (don't-care positions are zero).
    #[must_use]
    pub fn value(&self) -> u128 {
        self.value
    }

    /// The ternary don't-care mask.
    #[must_use]
    pub fn dont_care(&self) -> u128 {
        self.dont_care
    }

    /// Key width in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of *care* (non-`X`) positions. For an IP prefix this is the
    /// prefix length, which doubles as the LPM priority (Sec. 4.1).
    #[must_use]
    pub fn care_count(&self) -> u32 {
        self.bits - self.dont_care.count_ones()
    }

    /// Single-bit-extended comparison of Fig. 4(b), vectorized: true iff
    /// every position matches under the ternary + search-mask rules.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ — hardware compares aligned fields only.
    #[must_use]
    pub fn matches(&self, search: &SearchKey) -> bool {
        assert_eq!(
            self.bits, search.bits,
            "stored key ({}) and search key ({}) widths differ",
            self.bits, search.bits
        );
        let care = !(self.dont_care | search.dont_care) & low_mask(self.bits);
        (self.value ^ search.value) & care == 0
    }

    /// The exact-match search key that finds this stored key (don't-care
    /// positions zeroed).
    #[must_use]
    pub fn to_search_key(&self) -> SearchKey {
        SearchKey::with_mask(self.value, self.dont_care, self.bits)
    }
}

impl From<TernaryKey> for SearchKey {
    fn from(key: TernaryKey) -> Self {
        key.to_search_key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match() {
        let stored = TernaryKey::binary(0b1011, 4);
        assert!(stored.matches(&SearchKey::new(0b1011, 4)));
        assert!(!stored.matches(&SearchKey::new(0b1010, 4)));
    }

    #[test]
    fn ternary_stored_key_matches_paper_example() {
        // Sec. 2.2: stored "110XX" matches search keys 11000..11011.
        // Bits MSB-first "110XX" => value 0b11000, don't-care low 2 bits.
        let stored = TernaryKey::ternary(0b11000, 0b00011, 5);
        for low in 0..4u128 {
            assert!(stored.matches(&SearchKey::new(0b11000 | low, 5)));
        }
        assert!(!stored.matches(&SearchKey::new(0b10000, 5)));
        assert!(!stored.matches(&SearchKey::new(0b11100, 5)));
    }

    #[test]
    fn search_key_masking() {
        let stored = TernaryKey::binary(0b1010, 4);
        // Search "1 0 X 0" (X at bit 1): matches 1010 and 1000.
        let masked = SearchKey::with_mask(0b1000, 0b0010, 4);
        assert!(stored.matches(&masked));
        let other = TernaryKey::binary(0b1000, 4);
        assert!(other.matches(&masked));
        let non = TernaryKey::binary(0b0000, 4);
        assert!(!non.matches(&masked));
    }

    #[test]
    fn both_sides_masked() {
        let stored = TernaryKey::ternary(0b1100, 0b0011, 4);
        let search = SearchKey::with_mask(0b0000, 0b1100, 4);
        // Every position is don't-care on one side or the other.
        assert!(stored.matches(&search));
    }

    #[test]
    fn care_count_is_prefix_length() {
        // A /24 IPv4 prefix: 24 care bits, 8 don't-care bits.
        let prefix = TernaryKey::ternary(0xC0A8_0100, 0xFF, 32);
        assert_eq!(prefix.care_count(), 24);
        assert_eq!(TernaryKey::binary(0, 32).care_count(), 32);
    }

    #[test]
    fn canonical_value_at_dont_care_positions() {
        let a = TernaryKey::ternary(0b1111, 0b0011, 4);
        let b = TernaryKey::ternary(0b1100, 0b0011, 4);
        assert_eq!(a, b);
        assert_eq!(a.value(), 0b1100);
    }

    #[test]
    fn to_search_key_round_trip() {
        let stored = TernaryKey::ternary(0b1010_0000, 0b0000_1111, 8);
        assert!(stored.matches(&stored.to_search_key()));
        let via_from: SearchKey = stored.into();
        assert_eq!(via_from, stored.to_search_key());
    }

    #[test]
    fn full_width_keys() {
        let stored = TernaryKey::binary(u128::MAX, 128);
        assert!(stored.matches(&SearchKey::new(u128::MAX, 128)));
        assert!(!stored.matches(&SearchKey::new(u128::MAX - 1, 128)));
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn width_mismatch_rejected() {
        let stored = TernaryKey::binary(0, 8);
        let _ = stored.matches(&SearchKey::new(0, 16));
    }

    #[test]
    #[should_panic(expected = "key width must be in")]
    fn zero_width_rejected() {
        let _ = SearchKey::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "above the declared width")]
    fn oversized_value_rejected() {
        let _ = TernaryKey::binary(0x100, 8);
    }
}
