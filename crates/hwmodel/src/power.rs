//! Power model implementing the Sec. 3.4 equations.
//!
//! The paper decomposes per-search power as
//!
//! ```text
//! P_CA-RAM = P_hash + P_mem(w, n) + P_match(n) + P_encoder(w)
//! P_CAM    = P_searchline(w, n) + P_matchline(w, n) + P_encoder(w)
//! ```
//!
//! where `w` is the number of rows/entries and `n` the bits per row. The key
//! structural difference: a CA-RAM search activates **one** row (`O(n)`
//! circuit activity), while a CAM search drives every searchline and
//! matchline (`O(w·n)` activity). We express each term as an *energy per
//! search*; multiplying by the operating frequency gives power
//! ([`Picojoules::at_rate`]).
//!
//! Per-cell energies come from [`crate::cells::CellLibrary`] —
//! calibration anchors chosen so the model reproduces the paper's published
//! power ratios (Fig. 6(b): ~26× vs 16T SRAM TCAM, >7× vs 6T dynamic TCAM).

use crate::cells::CellLibrary;
use crate::geometry::{CaRamGeometry, CamGeometry};
use crate::units::{Megahertz, Milliwatts, Picojoules};

/// Fixed energy of one index-generator evaluation (`P_hash`), in femtojoules.
/// Bit selection is nearly free; the DJB string hash is computed off the
/// critical path at insert time, so a small constant covers both.
const HASH_ENERGY_FJ: f64 = 50.0;

/// Row-decoder energy per address bit, in femtojoules (`log2(w)` bits).
const DECODE_ENERGY_PER_ADDRESS_BIT_FJ: f64 = 20.0;

/// Match-processor comparison energy per row bit, in femtojoules
/// (`P_match(n)`): one XNOR + reduction contribution per fetched bit.
const MATCH_ENERGY_PER_BIT_FJ: f64 = 5.0;

/// Priority-encoder energy per input, in femtojoules. The CA-RAM encoder has
/// `P` inputs (one per match processor); the CAM encoder has `w` inputs.
const ENCODER_ENERGY_PER_INPUT_FJ: f64 = 0.05;

/// Per-search energy of a CA-RAM, broken into the Sec. 3.4 components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaRamSearchEnergy {
    /// `P_hash`: index-generator evaluation.
    pub hash: Picojoules,
    /// Row-decoder activity (part of `P_mem`).
    pub decode: Picojoules,
    /// `P_mem(w, n)`: one row activation — wordline, bitlines, sense.
    pub memory: Picojoules,
    /// `P_match(n)`: parallel candidate-key comparison.
    pub match_logic: Picojoules,
    /// `P_encoder(w)`: priority encoding over the match processors.
    pub encoder: Picojoules,
}

impl CaRamSearchEnergy {
    /// Total energy of one search.
    #[must_use]
    pub fn total(&self) -> Picojoules {
        self.hash + self.decode + self.memory + self.match_logic + self.encoder
    }
}

/// Per-search energy of a CAM/TCAM, broken into the Sec. 3.4 components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CamSearchEnergy {
    /// `P_searchline(w, n)`: driving the search key down every column.
    pub searchline: Picojoules,
    /// `P_matchline(w, n)`: precharging and evaluating every row matchline.
    pub matchline: Picojoules,
    /// `P_encoder(w)`: priority encoding over all entries.
    pub encoder: Picojoules,
}

impl CamSearchEnergy {
    /// Total energy of one search.
    #[must_use]
    pub fn total(&self) -> Picojoules {
        self.searchline + self.matchline + self.encoder
    }
}

/// DRAM retention interval for refresh pricing, in milliseconds
/// (Morishita's macro has a power-down retention mode; 64 ms is the
/// conventional figure).
const REFRESH_INTERVAL_MS: f64 = 64.0;

/// Fraction of the per-cell CAM search energy attributed to the searchlines;
/// the remainder goes to the matchlines. The split is reported for intuition
/// only — every comparison in the paper uses the total.
const CAM_SEARCHLINE_FRACTION: f64 = 0.45;

/// The power model: prices search operations on device geometries.
#[derive(Debug, Clone, Default)]
pub struct PowerModel {
    library: CellLibrary,
}

impl PowerModel {
    /// Model using the standard 130 nm calibration (see [`CellLibrary`]).
    #[must_use]
    pub fn new() -> Self {
        Self {
            library: CellLibrary::standard(),
        }
    }

    /// Model with a custom cell library.
    #[must_use]
    pub fn with_library(library: CellLibrary) -> Self {
        Self { library }
    }

    /// The cell library in use.
    #[must_use]
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// Energy of one CA-RAM search: one row activation in one slice plus
    /// match and encode. Independent of the number of slices — that is the
    /// point of hashing (Sec. 5.2: "a memory access is made on a single row
    /// most of the time").
    #[must_use]
    pub fn caram_search_energy(&self, geometry: &CaRamGeometry) -> CaRamSearchEnergy {
        let per_bit = self.library.get(geometry.storage).search_energy();
        let n = f64::from(geometry.row_bits);
        #[allow(clippy::cast_precision_loss)]
        let address_bits = (geometry.rows_per_slice as f64).log2().max(1.0);
        CaRamSearchEnergy {
            hash: Picojoules::new(HASH_ENERGY_FJ / 1e3),
            decode: Picojoules::new(address_bits * DECODE_ENERGY_PER_ADDRESS_BIT_FJ / 1e3),
            memory: (per_bit * n).to_picojoules(),
            match_logic: Picojoules::new(n * MATCH_ENERGY_PER_BIT_FJ / 1e3),
            encoder: Picojoules::new(
                f64::from(geometry.match_processors) * ENCODER_ENERGY_PER_INPUT_FJ / 1e3,
            ),
        }
    }

    /// Energy of one CA-RAM search on a *horizontally arranged* table:
    /// `active_slices` slices fetch their rows in parallel to form one wide
    /// logical bucket (Sec. 3.2), multiplying the memory and match energy.
    ///
    /// # Panics
    ///
    /// Panics if `active_slices` is zero or exceeds the geometry's slices.
    #[must_use]
    pub fn caram_search_energy_parallel(
        &self,
        geometry: &CaRamGeometry,
        active_slices: u32,
    ) -> CaRamSearchEnergy {
        assert!(
            active_slices > 0 && active_slices <= geometry.slices,
            "active slices must be in 1..={}",
            geometry.slices
        );
        let one = self.caram_search_energy(geometry);
        let k = f64::from(active_slices);
        CaRamSearchEnergy {
            hash: one.hash,
            decode: one.decode * k,
            memory: one.memory * k,
            match_logic: one.match_logic * k,
            encoder: one.encoder * k,
        }
    }

    /// Energy of one CAM/TCAM search: every cell participates (`O(w·n)`).
    #[must_use]
    pub fn cam_search_energy(&self, geometry: &CamGeometry) -> CamSearchEnergy {
        let per_cell = self.library.get(geometry.cell).search_energy();
        #[allow(clippy::cast_precision_loss)]
        let cells = geometry.total_cells() as f64;
        let array = (per_cell * cells).to_picojoules();
        #[allow(clippy::cast_precision_loss)]
        let entries = geometry.entries as f64;
        CamSearchEnergy {
            searchline: array * CAM_SEARCHLINE_FRACTION,
            matchline: array * (1.0 - CAM_SEARCHLINE_FRACTION),
            encoder: Picojoules::new(entries * ENCODER_ENERGY_PER_INPUT_FJ / 1e3),
        }
    }

    /// Standby power of a CA-RAM device: per-cell leakage plus, for DRAM
    /// storage, the refresh stream (every row rewritten once per
    /// `REFRESH_INTERVAL_MS`). This is what an *idle* search engine costs —
    /// where DRAM-based CA-RAM's advantage over SRAM-heavy CAMs is largest.
    #[must_use]
    pub fn caram_standby_power(&self, geometry: &CaRamGeometry) -> Milliwatts {
        let cell = self.library.get(geometry.storage);
        #[allow(clippy::cast_precision_loss)]
        let bits = geometry.total_bits() as f64;
        let leakage_mw = bits * cell.standby_nw() * 1e-6;
        let refresh_mw = if geometry.storage == crate::cells::CellKind::EmbeddedDram {
            // One row activation per row per refresh interval.
            let row_energy_pj = cell.search_energy().value() * f64::from(geometry.row_bits) / 1e3;
            #[allow(clippy::cast_precision_loss)]
            let rows = geometry.total_rows() as f64;
            // pJ per interval -> mW: pJ / ms = nW; /1e6 -> mW.
            rows * row_energy_pj / REFRESH_INTERVAL_MS / 1e6
        } else {
            0.0
        };
        Milliwatts::new(leakage_mw + refresh_mw)
    }

    /// Standby power of a CAM/TCAM device (pure leakage; dynamic TCAM
    /// refresh is folded into the per-cell figure).
    #[must_use]
    pub fn cam_standby_power(&self, geometry: &CamGeometry) -> Milliwatts {
        let cell = self.library.get(geometry.cell);
        #[allow(clippy::cast_precision_loss)]
        let cells = geometry.total_cells() as f64;
        Milliwatts::new(cells * cell.standby_nw() * 1e-6)
    }

    /// Operating power of a CA-RAM issuing one search per clock.
    #[must_use]
    pub fn caram_search_power(&self, geometry: &CaRamGeometry, clock: Megahertz) -> Milliwatts {
        self.caram_search_energy(geometry).total().at_rate(clock)
    }

    /// Operating power of a CAM issuing one search per clock.
    #[must_use]
    pub fn cam_search_power(&self, geometry: &CamGeometry, clock: Megahertz) -> Milliwatts {
        self.cam_search_energy(geometry).total().at_rate(clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellKind;

    /// The Fig. 6(b) configuration: 1 M ternary symbols of capacity.
    /// CA-RAM: 16 slices × 64 K cells (2 bits/cell), i.e. 256 rows × 512 bits
    /// per slice. TCAM: 16 K entries × 64 symbols.
    fn fig6_geometries() -> (CaRamGeometry, CamGeometry, CamGeometry) {
        let caram = CaRamGeometry::new(16, 256, 512, CellKind::EmbeddedDram, 8);
        let tcam16 = CamGeometry::new(16_384, 64, CellKind::TcamSram16T);
        let tcam6 = CamGeometry::new(16_384, 64, CellKind::TcamDynamic6T);
        (caram, tcam16, tcam6)
    }

    #[test]
    fn figure6b_power_ratios() {
        let m = PowerModel::new();
        let (caram, tcam16, tcam6) = fig6_geometries();
        // Device clocks as in the paper: 200 MHz CA-RAM, 143 MHz TCAM.
        let p_caram = m.caram_search_power(&caram, Megahertz::new(200.0));
        let p_t16 = m.cam_search_power(&tcam16, Megahertz::new(143.0));
        let p_t6 = m.cam_search_power(&tcam6, Megahertz::new(143.0));
        let r16 = p_t16.value() / p_caram.value();
        let r6 = p_t6.value() / p_caram.value();
        assert!(r16 > 26.0, "paper: >26x vs 16T SRAM TCAM, got {r16:.1}x");
        assert!(r6 > 7.0, "paper: >7x vs 6T dynamic TCAM, got {r6:.1}x");
        // Sanity bands: within 2x of the published ratios.
        assert!(r16 < 52.0, "ratio far above the published band: {r16:.1}x");
        assert!(r6 < 16.0, "ratio far above the published band: {r6:.1}x");
    }

    #[test]
    fn caram_energy_independent_of_slice_count() {
        let m = PowerModel::new();
        let one = CaRamGeometry::new(1, 256, 512, CellKind::EmbeddedDram, 8);
        let many = CaRamGeometry::new(16, 256, 512, CellKind::EmbeddedDram, 8);
        assert_eq!(
            m.caram_search_energy(&one).total(),
            m.caram_search_energy(&many).total()
        );
    }

    #[test]
    fn cam_energy_scales_with_entries() {
        let m = PowerModel::new();
        let small = CamGeometry::new(1_000, 64, CellKind::TcamDynamic6T);
        let big = CamGeometry::new(2_000, 64, CellKind::TcamDynamic6T);
        let e_small = m.cam_search_energy(&small).total();
        let e_big = m.cam_search_energy(&big).total();
        assert!((e_big.value() / e_small.value() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = PowerModel::new();
        let (caram, tcam16, _) = fig6_geometries();
        let e = m.caram_search_energy(&caram);
        let manual = e.hash + e.decode + e.memory + e.match_logic + e.encoder;
        assert!((e.total().value() - manual.value()).abs() < 1e-12);
        let c = m.cam_search_energy(&tcam16);
        let manual = c.searchline + c.matchline + c.encoder;
        assert!((c.total().value() - manual.value()).abs() < 1e-12);
    }

    #[test]
    fn memory_term_dominates_caram_search() {
        // The DRAM row activation is the dominant CA-RAM energy cost; the
        // decoupled match logic is cheap (that is the design's premise).
        let m = PowerModel::new();
        let (caram, _, _) = fig6_geometries();
        let e = m.caram_search_energy(&caram);
        assert!(e.memory.value() > 0.5 * e.total().value());
        assert!(e.match_logic.value() < e.memory.value());
    }

    #[test]
    fn standby_power_favors_dram_caram() {
        // Idle device: 1M-symbol TCAM leaks more than a DRAM CA-RAM of the
        // same capacity leaks + refreshes.
        let m = PowerModel::new();
        let (caram, tcam16, _) = fig6_geometries();
        let p_caram = m.caram_standby_power(&caram);
        let p_tcam = m.cam_standby_power(&tcam16);
        assert!(
            p_tcam.value() > 5.0 * p_caram.value(),
            "TCAM {p_tcam} vs CA-RAM {p_caram}"
        );
        // And refresh is nonzero for DRAM but absent for SRAM storage.
        let sram = CaRamGeometry::new(16, 256, 512, CellKind::Sram6T, 8);
        let p_sram = m.caram_standby_power(&sram);
        assert!(
            p_sram.value() > p_caram.value(),
            "SRAM leaks more than DRAM refreshes"
        );
    }

    #[test]
    fn standby_scales_with_capacity() {
        let m = PowerModel::new();
        let one = CaRamGeometry::new(1, 256, 512, CellKind::EmbeddedDram, 8);
        let four = CaRamGeometry::new(4, 256, 512, CellKind::EmbeddedDram, 8);
        let r = m.caram_standby_power(&four).value() / m.caram_standby_power(&one).value();
        assert!((r - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sram_caram_cheaper_per_search_than_dram_caram() {
        let m = PowerModel::new();
        let dram = CaRamGeometry::new(1, 256, 512, CellKind::EmbeddedDram, 8);
        let sram = CaRamGeometry::new(1, 256, 512, CellKind::Sram6T, 8);
        assert!(
            m.caram_search_energy(&sram).total().value()
                < m.caram_search_energy(&dram).total().value()
        );
    }
}
